"""Multiprocessing shard executor for whole-campaign studies.

A rotated Zeek archive is embarrassingly parallel across months. This
module fans the per-month shards out over worker processes, runs every
registered analysis as a partial aggregate in each worker, and merges
the partials chronologically in the parent — producing tables that are
byte-identical to a sequential run over the concatenated logs.

Two passes are required because the §3.2 interception filter is a
*global* decision: an issuer is flagged by the number of distinct
domains it contradicts across the whole campaign, not within one month.

- **Phase A (scan)**: each worker reads its shard (TSV reader +
  :class:`~repro.zeek.ingest.ErrorPolicy` from the fault-tolerant
  ingestion layer) and returns a mergeable
  :class:`~repro.core.enrich.InterceptionScan`. The parent merges the
  scans and finalizes the global :class:`InterceptionReport`.
- **Phase B (analyze)**: the report is broadcast back; each worker
  enriches its shard under the global report and folds it into one
  partial per registered analysis. The parent merges shard partials in
  chronological order.

Both phases are dispatched through the
:class:`~repro.core.supervisor.ShardSupervisor` rather than a bare
``Pool.map``: shard attempts are retried with backoff, hung workers are
killed on a wall-clock timeout, a failed worker is always recycled
before its shard is retried, and shards that exhaust their budget are
quarantined — aborting under :attr:`DegradePolicy.STRICT` or completing
the campaign from the surviving months under
:attr:`DegradePolicy.PARTIAL`, with the loss accounted for in a
:class:`~repro.core.supervisor.RunHealth` report on the result. The
``jobs <= 1`` path routes through the *same* supervisor inline, so the
0/1/N byte-identical equivalence properties extend to the failure
paths.

With a ``resume_dir``, every completed shard's scan and merged partials
are spilled to a crash-safe campaign manifest as soon as they arrive
(pickled, like the partial states embedded in streaming snapshot v2);
a rerun pointed at the same directory skips the finished shards — the
update/merge/finalize protocol makes the spilled partials trivially
re-mergeable, so a resumed campaign is byte-identical to an
uninterrupted one.

Workers cache the parsed shard between phases, so each file is read at
most twice (once when phase B lands on a different worker than phase A).
The x509 stream is broadcast to every shard — fuid references may cross
a month boundary and the certificate log is tiny next to ssl.log.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pickle
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core import metrics, protocol, tracing
from repro.core.dataset import MtlsDataset
from repro.core.durable import durable_write, sweep_orphans
from repro.core.enrich import (
    AssociationRules,
    CtLookup,
    Enricher,
    InterceptionReport,
    InterceptionScan,
)
from repro.core.pipeline import BatchFeed, Pipeline
from repro.core.report import Table
from repro.core.supervisor import (
    DegradePolicy,
    RetryPolicy,
    RunHealth,
    ShardSupervisor,
)
from repro.zeek.files import TsvDirectorySource
from repro.zeek.ingest import (
    _UNSET_ARG,
    ErrorPolicy,
    FastPath,
    IngestOptions,
    IngestReport,
    RecordSource,
    resolve_ingest_options,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.faults import WorkerFaultPlan
    from repro.trust.store import TrustBundle


@dataclass(frozen=True)
class ShardSpec:
    """One unit of parallel work: a month of ssl.log plus the full
    (deduplicated-on-load) x509 stream."""

    month: str
    ssl_paths: tuple[str, ...]
    x509_paths: tuple[str, ...]

    @classmethod
    def from_discovery(
        cls, triple: tuple[str, list[Path], list[Path]]
    ) -> "ShardSpec":
        month, ssl_paths, x509_paths = triple
        return cls(
            month=month,
            ssl_paths=tuple(str(p) for p in ssl_paths),
            x509_paths=tuple(str(p) for p in x509_paths),
        )


@dataclass(frozen=True)
class _ExecutorConfig:
    """Shipped to each worker process exactly once (at spawn)."""

    bundle: object
    ct_log: object | None
    rules: AssociationRules
    filter_interception: bool
    min_interception_domains: int
    on_error: ErrorPolicy
    names: tuple[str, ...] | None
    #: Fast-path mode (stored as the enum's string value so the config
    #: pickles compactly to workers). Byte-identical either way.
    fast_path: str = FastPath.AUTO.value
    #: Intra-shard pipelining mode (string value, like ``fast_path``):
    #: stream decoded ssl batches into scan/enrich/analyze instead of
    #: loading a whole month first. Byte-identical either way.
    pipeline: str = Pipeline.AUTO.value
    #: Process-level fault injection (tests / chaos drills only).
    fault_plan: object | None = None
    #: JSONL trace sink every worker configures for itself (optional).
    trace_path: str | None = None
    #: Where shard records come from; bound per run (the executor is
    #: source-agnostic until :meth:`ShardExecutor.run_source`).
    source: RecordSource | None = None

    def ingest_options(self) -> IngestOptions:
        return IngestOptions(on_error=self.on_error, fast_path=self.fast_path)


@dataclass
class _ScanOutcome:
    """Phase-A result: the mergeable scan plus the worker's metrics
    snapshot for this shard task."""

    scan: InterceptionScan
    metrics: dict | None = None


@dataclass
class _ShardOutcome:
    month: str
    partials: dict[str, protocol.AnalysisPartial]
    ssl_report: IngestReport
    x509_report: IngestReport
    dangling_fuid_refs: int
    #: Worker-side MetricsRegistry snapshot for the analyze task
    #: (``state_dict()`` form — JSON/pickle safe).
    metrics: dict | None = None


@dataclass
class CampaignResult:
    """Merged output of a (possibly parallel, possibly degraded) run."""

    months: tuple[str, ...]
    partials: dict[str, protocol.AnalysisPartial]
    interception: InterceptionReport
    ingest: IngestReport
    dangling_fuid_refs: int
    jobs: int = 1
    #: Supervision report: attempts, retries, quarantined months,
    #: coverage. ``None`` only on results built by very old callers.
    health: RunHealth | None = None
    #: Merged campaign metrics: per-shard worker registries + parent
    #: phase timers + supervisor accounting. Counters and histograms
    #: are deterministic across job counts; timers/gauges are not.
    metrics: metrics.MetricsRegistry | None = None

    def result(self, name: str):
        """The rich result object of one analysis (legacy shape)."""
        try:
            partial = self.partials[name]
        except KeyError:
            known = ", ".join(self.partials)
            raise KeyError(
                f"no analysis {name!r} in this run (have: {known})"
            ) from None
        return partial.result()

    def table(self, name: str) -> Table:
        try:
            partial = self.partials[name]
        except KeyError:
            known = ", ".join(self.partials)
            raise KeyError(f"no analysis {name!r} in this run (have: {known})") from None
        return partial.finalize()

    def tables(self) -> list[Table]:
        """Every analysis rendered, in registry (paper) order."""
        return [partial.finalize() for partial in self.partials.values()]


# ---------------------------------------------------------------------------
# Per-shard work (runs in workers; also called inline when jobs == 1)
# ---------------------------------------------------------------------------


def _make_enricher(config: _ExecutorConfig) -> Enricher:
    return Enricher(
        bundle=config.bundle,
        ct_log=config.ct_log,
        rules=config.rules,
        filter_interception=config.filter_interception,
        min_interception_domains=config.min_interception_domains,
        fact_cache=FastPath.coerce(config.fast_path).enabled,
    )


def _load_shard(config: _ExecutorConfig, cache: dict, month: str):
    triple = cache.get(month)
    if triple is None:
        with tracing.span("shard.read", month=month):
            shard = config.source.read_month(month, config.ingest_options())
            triple = (
                MtlsDataset(shard.ssl, shard.x509),
                shard.ssl_report,
                shard.x509_report,
            )
        cache[month] = triple
    return triple


def _pipeline_active(config: _ExecutorConfig) -> bool:
    """Whether this worker may stream shards batch by batch: pipelining
    is requested and the bound source supports ``stream_month`` (the
    columnar store maps whole shards from disk — nothing to overlap)."""
    return (
        Pipeline.coerce(config.pipeline).enabled
        and hasattr(config.source, "stream_month")
    )


class _ShardStream:
    """One pipelined shard load: the ssl stream decodes on a feeder
    thread while this thread loads x509, joins, and hands new
    connections to the consuming phase batch by batch.

    The serial path ts-sorts each month before processing; rotated
    archives are written in ts order, so arrival order normally *is*
    sorted order and the incremental results are byte-identical. A
    violation of that assumption is detected record by record: the
    stream stops yielding, the remainder is drained, and the dataset is
    rebuilt from the ts-sorted records — the caller discards its
    incremental state and recomputes, exactly like a serial run.
    """

    def __init__(self, config: _ExecutorConfig, month: str) -> None:
        stream = config.source.stream_month(month, config.ingest_options())
        self._stream = stream
        self._feed = BatchFeed(stream.ssl_batches())
        try:
            self._x509 = stream.read_x509()
        except Exception:
            # ssl-error-wins: the serial path reads ssl.log before
            # x509.log, so a concurrent ssl failure takes precedence
            # over this x509 one.
            ssl_error = self._feed.drain_error()
            if ssl_error is not None:
                raise ssl_error from None
            raise
        self.dataset = MtlsDataset((), self._x509)
        self.ordered = True
        self.batches = 0

    def connections(self):
        """Yield lists of newly joined ConnViews, batch by batch."""
        dataset = self.dataset
        all_ssl: list = []
        last_ts = None
        try:
            for batch in self._feed:
                self.batches += 1
                all_ssl.extend(batch)
                if self.ordered:
                    for record in batch:
                        if last_ts is not None and record.ts < last_ts:
                            self.ordered = False
                            break
                        last_ts = record.ts
                if self.ordered:
                    yield dataset.extend_ssl(batch)
        finally:
            self._feed.close()
        if not self.ordered:
            all_ssl.sort(key=lambda r: r.ts)
            self.dataset = MtlsDataset(all_ssl, self._x509)

    def triple(self):
        """The finished shard in ``_load_shard``'s cache-entry shape."""
        return (
            self.dataset, self._stream.ssl_report, self._stream.x509_report
        )


def _scan_shard(
    config: _ExecutorConfig, cache: dict, month: str
) -> _ScanOutcome:
    registry = metrics.MetricsRegistry()
    with metrics.scoped(registry):
        with tracing.span("shard.scan", month=month):
            scan = None
            if month not in cache and _pipeline_active(config):
                with tracing.span("shard.stream", month=month):
                    stream = _ShardStream(config, month)
                    scan = _make_enricher(config).new_scan()
                    for conns in stream.connections():
                        for conn in conns:
                            scan.observe(conn)
                cache[month] = stream.triple()
                # Phase A reads every month exactly once at any job
                # count, so these stay deterministic across jobs.
                registry.inc("pipeline.shards", 1)
                registry.inc("pipeline.batches", stream.batches)
                if not stream.ordered:
                    # The incremental observations ran in arrival order;
                    # redo them over the rebuilt (sorted) dataset with a
                    # fresh scan so cache stats match the serial path.
                    registry.inc("pipeline.fallbacks", 1)
                    scan = None
            dataset, _, _ = _load_shard(config, cache, month)
            if scan is None:
                scan = _make_enricher(config).new_scan()
                for conn in dataset.connections:
                    scan.observe(conn)
            registry.inc("scan.connections_observed", len(dataset.connections))
            registry.inc("scan.shards", 1)
            if scan.fact_cache is not None:
                registry.observe_cache(scan.fact_cache.stats, "certfacts.scan")
    return _ScanOutcome(scan=scan, metrics=registry.state_dict())


def _pipelined_analysis(
    config: _ExecutorConfig,
    cache: dict,
    month: str,
    report: InterceptionReport,
):
    """Overlapped phase-B analysis: enrich + update partials per batch.

    Returns ``(partials, enriched_count, fact_cache)``, or ``None`` when
    the stream was out of ts order — the shard is then cached in its
    rebuilt (sorted) form and the caller reruns the serial body over it.

    Per-batch interleaving of ``update`` and ``update_raw`` is safe
    because no registered analysis consumes both streams (pinned by
    tests/core/test_pipeline.py): each partial sees its own stream in
    exactly the serial order. Deliberately emits no ``pipeline.*``
    counters: phase B only streams on a cache miss, which depends on
    worker placement, and analyze counters must stay deterministic
    across job counts.
    """
    with tracing.span("shard.stream", month=month):
        stream = _ShardStream(config, month)
        enricher = _make_enricher(config)
        context = protocol.AnalysisContext(
            bundle=config.bundle, rules=config.rules, interception=report,
        )
        partials = protocol.create_partials(config.names, context)
        updaters = list(partials.values())
        raw_updaters = [
            partials[name] for name in partials
            if protocol.get_analysis(name).needs_raw
        ]
        excluded_fuids: set[str] = set()
        if config.filter_interception and report.excluded_fingerprints:
            excluded_fuids = stream.dataset.fuids_of(
                report.excluded_fingerprints
            )
        label = enricher.label
        enriched_count = 0
        for conns in stream.connections():
            for conn in conns:
                if excluded_fuids and not (
                    excluded_fuids.isdisjoint(conn.ssl.cert_chain_fuids)
                    and excluded_fuids.isdisjoint(
                        conn.ssl.client_cert_chain_fuids
                    )
                ):
                    continue
                enriched = label(conn)
                for partial in updaters:
                    partial.update(enriched)
                enriched_count += 1
            if raw_updaters:
                for conn in conns:
                    for partial in raw_updaters:
                        partial.update_raw(conn)
    cache[month] = stream.triple()
    if not stream.ordered:
        return None
    return partials, enriched_count, enricher.fact_cache


def _analyze_shard(
    config: _ExecutorConfig,
    cache: dict,
    month: str,
    report: InterceptionReport,
) -> _ShardOutcome:
    registry = metrics.MetricsRegistry()
    with metrics.scoped(registry):
        streamed = None
        if month not in cache and _pipeline_active(config):
            streamed = _pipelined_analysis(config, cache, month, report)
        if streamed is not None:
            partials, enriched_count, fact_cache = streamed
            dataset, ssl_report, x509_report = cache[month]
        else:
            dataset, ssl_report, x509_report = _load_shard(config, cache, month)
            enricher = _make_enricher(config)
            with tracing.span("shard.enrich", month=month):
                enriched = enricher.enrich_with_report(dataset, report)
            context = protocol.AnalysisContext(
                bundle=config.bundle, rules=config.rules, interception=report,
            )
            with tracing.span("shard.analyze", month=month):
                partials = protocol.run_analyses(
                    enriched, config.names, raw=dataset, context=context,
                )
            enriched_count = len(enriched.connections)
            fact_cache = enricher.fact_cache
        registry.inc("analyze.shards", 1)
        registry.inc("analyze.connections_enriched", enriched_count)
        registry.inc("analyze.connections_raw", len(dataset.connections))
        if fact_cache is not None:
            registry.observe_cache(fact_cache.stats, "certfacts.enrich")
        registry.observe(
            "shard.connections", enriched_count,
            edges=metrics.COUNT_EDGES,
        )
    return _ShardOutcome(
        month=month,
        partials=partials,
        ssl_report=ssl_report,
        x509_report=x509_report,
        dangling_fuid_refs=dataset.dangling_fuid_refs,
        metrics=registry.state_dict(),
    )


def _supervised_worker(config: _ExecutorConfig, conn) -> None:
    """Worker loop: serve ``(kind, key, attempt, payload)`` requests.

    One request at a time over a private duplex pipe; the parsed-shard
    cache persists across requests (phase A → phase B) but dies with
    the process — which is exactly why the supervisor recycles us after
    any failure.
    """
    protocol.load_default_analyses()
    tracing.configure(config.trace_path)
    cache: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        kind, key, attempt, payload = message
        try:
            if config.fault_plan is not None:
                config.fault_plan.apply(key, kind, attempt)
            if kind == "scan":
                result = _scan_shard(config, cache, payload)
            else:
                month, report = payload
                result = _analyze_shard(config, cache, month, report)
        except Exception as exc:
            try:
                conn.send((key, "error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send((key, "ok", result))
        except (BrokenPipeError, OSError):
            break


# ---------------------------------------------------------------------------
# Crash-safe campaign manifest
# ---------------------------------------------------------------------------

#: Manifest schema tag; bump on incompatible layout changes.
#: v2: scan spills hold a ``_ScanOutcome`` (scan + metrics snapshot)
#: and shard outcomes embed their worker metrics, so a resumed
#: campaign's merged metrics equal an uninterrupted run's.
MANIFEST_FORMAT = "campaign-manifest/v2"


class CampaignManifest:
    """Crash-safe record of a campaign's completed shards.

    Layout under the run directory::

        manifest.json        index: config/report fingerprints, spills
        scan.<month>.pkl     phase-A _ScanOutcome, one per month
        outcome.<month>.pkl  phase-B merged partials, one per month

    Every spill is written through :mod:`repro.core.durable` (temp file
    + fsync + atomic rename + directory fsync) and the manifest index
    is rewritten after each one, so a parent crash — or power cut — at
    any instant leaves a directory a rerun can load: finished shards
    are skipped, everything else re-runs. Orphaned temp files from a
    killed writer are swept at open. Phase-B outcomes additionally
    record the fingerprint of the global interception report they were
    computed under — if a resumed run merges to a *different* report
    (e.g. because a previously failing shard now contributes its scan),
    the stale outcomes are discarded instead of silently merged.
    """

    def __init__(self, directory: Path | str, config_fingerprint: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # One writer (the campaign parent) owns a run directory at a
        # time; anything *.tmp here is a dead writer's leftover.
        sweep_orphans(self.directory)
        self.config_fingerprint = config_fingerprint
        self.path = self.directory / "manifest.json"
        self._scans: dict[str, str] = {}
        self._outcomes: dict[str, str] = {}
        self._report_fingerprint: str | None = None
        if self.path.exists():
            self._load_index()

    def _load_index(self) -> None:
        index = json.loads(self.path.read_text(encoding="utf-8"))
        found = index.get("format")
        if found != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported campaign manifest format {found!r} in "
                f"{self.path} (expected {MANIFEST_FORMAT!r})"
            )
        if index.get("config") != self.config_fingerprint:
            raise ValueError(
                f"resume directory {self.directory} belongs to a different "
                "campaign (shard list or executor configuration changed); "
                "point --resume at a fresh directory"
            )
        self._scans = dict(index.get("scans", {}))
        self._outcomes = dict(index.get("outcomes", {}))
        self._report_fingerprint = index.get("report")

    def _write_index(self) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "config": self.config_fingerprint,
            "report": self._report_fingerprint,
            "scans": self._scans,
            "outcomes": self._outcomes,
        }
        durable_write(
            self.path, json.dumps(payload, indent=2).encode("utf-8")
        )

    def _spill(self, filename: str, obj) -> None:
        durable_write(
            self.directory / filename,
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def _load(self, filename: str):
        try:
            with (self.directory / filename).open("rb") as source:
                return pickle.load(source)
        except Exception:
            # A torn spill (crash mid-rename window, disk fault) is not
            # fatal: the shard simply re-runs.
            return None

    # Phase A -------------------------------------------------------------------

    def spill_scan(self, month: str, scan: _ScanOutcome) -> None:
        filename = f"scan.{month}.pkl"
        self._spill(filename, scan)
        self._scans[month] = filename
        self._write_index()

    def load_scans(self, months: list[str]) -> dict[str, _ScanOutcome]:
        loaded: dict[str, _ScanOutcome] = {}
        for month in months:
            filename = self._scans.get(month)
            if filename is None:
                continue
            scan = self._load(filename)
            if isinstance(scan, _ScanOutcome):
                loaded[month] = scan
        return loaded

    # Phase B -------------------------------------------------------------------

    def set_report_fingerprint(self, fingerprint: str) -> None:
        """Bind phase-B spills to the global report they were built
        under; a changed report invalidates every recorded outcome."""
        if self._report_fingerprint != fingerprint:
            self._report_fingerprint = fingerprint
            self._outcomes = {}
            self._write_index()

    def spill_outcome(self, month: str, outcome: _ShardOutcome) -> None:
        filename = f"outcome.{month}.pkl"
        self._spill(filename, outcome)
        self._outcomes[month] = filename
        self._write_index()

    def load_outcomes(
        self, months: list[str], report_fingerprint: str
    ) -> dict[str, _ShardOutcome]:
        if self._report_fingerprint != report_fingerprint:
            return {}
        loaded: dict[str, _ShardOutcome] = {}
        for month in months:
            filename = self._outcomes.get(month)
            if filename is None:
                continue
            outcome = self._load(filename)
            if outcome is not None:
                loaded[month] = outcome
        return loaded


def _report_fingerprint(report: InterceptionReport) -> str:
    digest = hashlib.sha256()
    digest.update(
        json.dumps(
            [
                sorted(report.flagged_issuers),
                sorted(report.excluded_fingerprints),
                report.total_certificates,
            ]
        ).encode("utf-8")
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fan per-month shards out over supervised processes and merge.

    ``jobs <= 1`` runs every shard inline in the current process through
    the *same* supervisor code path, which is what makes the
    0/1/N-worker equivalence tests meaningful.

    ``retry``/``degrade`` control the supervision layer (see
    :mod:`repro.core.supervisor`); ``fault_plan`` injects deterministic
    worker faults (:class:`~repro.netsim.faults.WorkerFaultPlan`) for
    tests and chaos drills.
    """

    def __init__(
        self,
        bundle,
        ct_log=None,
        *,
        options: IngestOptions | None = None,
        rules: AssociationRules | None = None,
        filter_interception: bool = True,
        min_interception_domains: int = 5,
        on_error: object = _UNSET_ARG,
        names: tuple[str, ...] | None = None,
        jobs: int = 1,
        retry: RetryPolicy | None = None,
        degrade: DegradePolicy | str = DegradePolicy.STRICT,
        fault_plan=None,
        trace_path: str | Path | None = None,
        fast_path: object = _UNSET_ARG,
        pipeline: Pipeline | str | bool | None = Pipeline.AUTO,
    ) -> None:
        opts = resolve_ingest_options(
            options, caller="ShardExecutor",
            on_error=on_error, fast_path=fast_path,
        )
        if trace_path is None:
            # Inherit the process's configured sink so `tracing.configure`
            # in the driver propagates into worker processes.
            trace_path = tracing.sink_path()
        self.config = _ExecutorConfig(
            bundle=bundle,
            ct_log=ct_log,
            rules=rules or AssociationRules(),
            filter_interception=filter_interception,
            min_interception_domains=min_interception_domains,
            on_error=opts.on_error,
            names=tuple(names) if names is not None else None,
            fast_path=opts.fast_path.value,
            pipeline=Pipeline.coerce(pipeline).value,
            fault_plan=fault_plan,
            trace_path=str(trace_path) if trace_path is not None else None,
        )
        self.jobs = jobs
        self.retry = retry or RetryPolicy()
        self.degrade = DegradePolicy.coerce(degrade)

    def run_directory(
        self,
        directory: Path | str,
        *,
        resume_dir: Path | str | None = None,
        store: Path | str | None = None,
    ) -> CampaignResult:
        """Analyze a rotated-log directory (``ssl.YYYY-MM.log[.gz]``).

        With ``store``, the directory is packed into (or served from) a
        columnar store at that path: the first run parses TSV once and
        writes the store; every later run maps the columns straight from
        disk. Results are byte-identical either way.
        """
        if store is not None:
            from repro.store import ensure_store

            source = ensure_store(
                directory, store, options=self.config.ingest_options()
            )
        else:
            source = TsvDirectorySource(directory)
        return self.run_source(source, resume_dir=resume_dir)

    def run(
        self,
        shards: list[ShardSpec],
        *,
        resume_dir: Path | str | None = None,
    ) -> CampaignResult:
        """Legacy entry point: explicit :class:`ShardSpec` lists.

        Kept for pre-``RecordSource`` callers; wraps the specs in a
        :class:`~repro.zeek.files.TsvDirectorySource` and delegates to
        :meth:`run_source`.
        """
        if not shards:
            raise ValueError("no shards to analyze")
        specs = sorted(shards, key=lambda s: s.month)
        source = TsvDirectorySource.from_shards(
            (s.month, s.ssl_paths, s.x509_paths) for s in specs
        )
        return self.run_source(source, resume_dir=resume_dir)

    def run_source(
        self,
        source: RecordSource,
        *,
        resume_dir: Path | str | None = None,
    ) -> CampaignResult:
        """Analyze every shard served by a :class:`RecordSource`."""
        months = sorted(source.months())
        if not months:
            raise ValueError("no shards to analyze")
        self.config = replace(self.config, source=source)
        jobs = max(1, min(self.jobs, len(months)))
        manifest = (
            CampaignManifest(resume_dir, self._config_fingerprint(source, months))
            if resume_dir is not None else None
        )

        spill_phase_b = False

        def on_result(kind: str, key: str, result) -> None:
            if manifest is None:
                return
            if kind == "scan":
                manifest.spill_scan(key, result)
            elif spill_phase_b:
                manifest.spill_outcome(key, result)

        supervisor = ShardSupervisor(
            jobs=jobs,
            retry=self.retry,
            degrade=self.degrade,
            worker_factory=self._worker_factory,
            inline_handlers=self._inline_handlers(),
            on_result=on_result,
        )
        run_metrics = metrics.MetricsRegistry()
        try:
            with metrics.scoped(run_metrics):
                resumed_scans = (
                    manifest.load_scans(months) if manifest is not None else {}
                )
                for month in resumed_scans:
                    supervisor.note_resumed(month, "scan")
                with tracing.span("campaign.scan"):
                    scans = supervisor.run_phase(
                        "scan",
                        [
                            (month, month)
                            for month in months
                            if month not in resumed_scans
                        ],
                    )
                scans.update(resumed_scans)
                surviving = [m for m in months if m in scans]
                if not surviving:
                    raise RuntimeError(
                        "every shard was quarantined during the scan phase; "
                        "nothing to analyze "
                        f"({supervisor.health.summary()})"
                    )
                report = self._merge_scans(
                    [scans[m].scan for m in surviving]
                )
                fingerprint = _report_fingerprint(report)
                resumed_outcomes: dict[str, _ShardOutcome] = {}
                if manifest is not None:
                    resumed_outcomes = manifest.load_outcomes(
                        months, fingerprint
                    )
                    manifest.set_report_fingerprint(fingerprint)
                for month in resumed_outcomes:
                    supervisor.note_resumed(month, "analyze")
                spill_phase_b = True
                with tracing.span("campaign.analyze"):
                    outcomes = supervisor.run_phase(
                        "analyze",
                        [
                            (month, (month, report))
                            for month in surviving
                            if month not in resumed_outcomes
                        ],
                    )
                outcomes.update(resumed_outcomes)
        finally:
            supervisor.close()
        completed = [m for m in surviving if m in outcomes]
        if not completed:
            raise RuntimeError(
                "every surviving shard was quarantined during the analyze "
                f"phase ({supervisor.health.summary()})"
            )
        for month in surviving:
            run_metrics.merge_state(scans[month].metrics)
        run_metrics.observe_run_health(supervisor.health)
        with metrics.scoped(run_metrics), tracing.span("campaign.merge"):
            return self._merge_outcomes(
                completed,
                report,
                [outcomes[m] for m in completed],
                jobs,
                supervisor.health,
                run_metrics,
            )

    # Supervision plumbing ------------------------------------------------------

    def _worker_factory(self, conn):
        context = multiprocessing.get_context()
        return context.Process(
            target=_supervised_worker,
            args=(self.config, conn),
            daemon=True,
        )

    def _inline_handlers(self):
        """The jobs=1 executors: same shard functions, same fault hook.

        The cache mimics a worker's shard cache; a retry drops the
        failed month's entry — the inline analogue of recycling the
        worker process, so a half-built cache cannot poison the retry.
        """
        config = self.config
        cache: dict = {}

        def scan(month: str, attempt: int) -> InterceptionScan:
            if attempt > 1:
                cache.pop(month, None)
            if config.fault_plan is not None:
                config.fault_plan.apply(month, "scan", attempt, inline=True)
            return _scan_shard(config, cache, month)

        def analyze(payload, attempt: int) -> _ShardOutcome:
            month, report = payload
            if attempt > 1:
                cache.pop(month, None)
            if config.fault_plan is not None:
                config.fault_plan.apply(month, "analyze", attempt, inline=True)
            return _analyze_shard(config, cache, month, report)

        return {"scan": scan, "analyze": analyze}

    def _config_fingerprint(
        self, source: RecordSource, months: list[str]
    ) -> str:
        """Identity of (source, shard list, configuration) for resume.

        The trust bundle is part of the identity; the CT log is not
        hashable in general and is assumed stable across a resume — as
        is the log content behind the source. ``fast_path`` and
        ``pipeline`` are deliberately *excluded*: the fast/batch
        decoders and the pipelined loader are byte-identical to the
        reference path by contract, so a campaign may resume across a
        ``--fast-path`` or ``--pipeline`` flip without invalidating
        spilled shards.
        """
        bundle = self.config.bundle
        payload = {
            "source": source.identity(),
            "months": list(months),
            "on_error": self.config.on_error.value,
            "filter_interception": self.config.filter_interception,
            "min_interception_domains": self.config.min_interception_domains,
            "names": list(self.config.names) if self.config.names else None,
            "bundle": [
                sorted(getattr(bundle, "subject_dns", ()) or ()),
                sorted(getattr(bundle, "organizations", ()) or ()),
            ],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    def _merge_scans(self, scans: list[InterceptionScan]) -> InterceptionReport:
        # Merge into a fresh scan: the per-shard scans may be cached in
        # a resume manifest (or re-merged on retry) and must survive
        # merging untouched.
        merged = InterceptionScan(self.config.bundle, self.config.ct_log)
        for scan in scans:
            merged.merge(scan)
        return merged.finalize(self.config.min_interception_domains)

    def _merge_outcomes(
        self,
        months: list[str],
        report: InterceptionReport,
        outcomes: list[_ShardOutcome],
        jobs: int,
        health: RunHealth | None = None,
        run_metrics: "metrics.MetricsRegistry | None" = None,
    ) -> CampaignResult:
        # Chronological merge: outcomes arrive in spec (month) order.
        partials = outcomes[0].partials
        for outcome in outcomes[1:]:
            protocol.merge_partials(partials, outcome.partials)
        ingest = IngestReport()
        for outcome in outcomes:
            ingest.merge(outcome.ssl_report)
        # x509 is broadcast to every shard; count its ingestion once.
        ingest.merge(outcomes[0].x509_report)
        dangling = sum(o.dangling_fuid_refs for o in outcomes)
        if run_metrics is not None:
            for outcome in outcomes:
                run_metrics.merge_state(outcome.metrics)
            # Ingest counters derive from the per-shard reports (not from
            # live reader hooks) so they are identical at any job count —
            # a shard may be *parsed* twice when phase B lands on a
            # different worker, but its report is captured exactly once.
            for outcome in outcomes:
                run_metrics.observe_ingest(outcome.ssl_report, "ssl")
            run_metrics.observe_ingest(outcomes[0].x509_report, "x509")
            run_metrics.inc("campaign.dangling_fuid_refs", dangling)
        return CampaignResult(
            months=tuple(months),
            partials=partials,
            interception=report,
            ingest=ingest,
            dangling_fuid_refs=dangling,
            jobs=jobs,
            health=health,
            metrics=run_metrics,
        )


def analyze_directory(
    directory: Path | str,
    *legacy_positional,
    bundle: "TrustBundle | None" = None,
    ct_log: CtLookup | None = None,
    options: IngestOptions | None = None,
    store: Path | str | None = None,
    rules: AssociationRules | None = None,
    filter_interception: bool = True,
    min_interception_domains: int = 5,
    on_error: object = _UNSET_ARG,
    names: tuple[str, ...] | None = None,
    jobs: int = 1,
    retry: RetryPolicy | None = None,
    degrade: DegradePolicy | str = DegradePolicy.STRICT,
    fault_plan: "WorkerFaultPlan | None" = None,
    resume_dir: Path | str | None = None,
    trace_path: str | Path | None = None,
    fast_path: object = _UNSET_ARG,
    pipeline: Pipeline | str | bool | None = Pipeline.AUTO,
) -> CampaignResult:
    """One-call sharded analysis of a rotated Zeek archive.

    ``bundle``/``ct_log`` are keyword-only and typed; the historical
    positional form (``analyze_directory(dir, bundle, ct_log)``) still
    works through a deprecation shim. With ``store``, the archive is
    packed into a columnar store on first use and mapped from disk on
    every later run (byte-identical results).
    """
    if legacy_positional:
        if len(legacy_positional) > 2:
            raise TypeError(
                "analyze_directory takes at most three positional "
                "arguments (directory, bundle, ct_log)"
            )
        if bundle is not None or (len(legacy_positional) > 1 and ct_log is not None):
            raise TypeError(
                "analyze_directory: bundle/ct_log passed both positionally "
                "and by keyword"
            )
        warnings.warn(
            "analyze_directory: positional bundle/ct_log are deprecated; "
            "pass them as keywords",
            DeprecationWarning,
            stacklevel=2,
        )
        bundle = legacy_positional[0]
        if len(legacy_positional) > 1:
            ct_log = legacy_positional[1]
    if bundle is None:
        raise TypeError("analyze_directory: a trust bundle is required")
    opts = resolve_ingest_options(
        options, caller="analyze_directory",
        on_error=on_error, fast_path=fast_path,
    )
    executor = ShardExecutor(
        bundle,
        ct_log,
        options=opts,
        rules=rules,
        filter_interception=filter_interception,
        min_interception_domains=min_interception_domains,
        names=names,
        jobs=jobs,
        retry=retry,
        degrade=degrade,
        fault_plan=fault_plan,
        trace_path=trace_path,
        pipeline=pipeline,
    )
    return executor.run_directory(directory, resume_dir=resume_dir, store=store)
