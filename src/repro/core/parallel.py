"""Multiprocessing shard executor for whole-campaign studies.

A rotated Zeek archive is embarrassingly parallel across months. This
module fans the per-month shards out over worker processes, runs every
registered analysis as a partial aggregate in each worker, and merges
the partials chronologically in the parent — producing tables that are
byte-identical to a sequential run over the concatenated logs.

Two passes are required because the §3.2 interception filter is a
*global* decision: an issuer is flagged by the number of distinct
domains it contradicts across the whole campaign, not within one month.

- **Phase A (scan)**: each worker reads its shard (TSV reader +
  :class:`~repro.zeek.ingest.ErrorPolicy` from the fault-tolerant
  ingestion layer) and returns a mergeable
  :class:`~repro.core.enrich.InterceptionScan`. The parent merges the
  scans and finalizes the global :class:`InterceptionReport`.
- **Phase B (analyze)**: the report is broadcast back; each worker
  enriches its shard under the global report and folds it into one
  partial per registered analysis. The parent merges shard partials in
  chronological order.

Workers cache the parsed shard between phases, so each file is read at
most twice (once when phase B lands on a different worker than phase A).
The x509 stream is broadcast to every shard — fuid references may cross
a month boundary and the certificate log is tiny next to ssl.log.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path

from repro.core import protocol
from repro.core.dataset import MtlsDataset
from repro.core.enrich import (
    AssociationRules,
    Enricher,
    InterceptionReport,
    InterceptionScan,
)
from repro.core.report import Table
from repro.zeek.files import _read_many, discover_shards
from repro.zeek.ingest import ErrorPolicy, IngestReport
from repro.zeek.tsv import read_ssl_log, read_x509_log


@dataclass(frozen=True)
class ShardSpec:
    """One unit of parallel work: a month of ssl.log plus the full
    (deduplicated-on-load) x509 stream."""

    month: str
    ssl_paths: tuple[str, ...]
    x509_paths: tuple[str, ...]

    @classmethod
    def from_discovery(
        cls, triple: tuple[str, list[Path], list[Path]]
    ) -> "ShardSpec":
        month, ssl_paths, x509_paths = triple
        return cls(
            month=month,
            ssl_paths=tuple(str(p) for p in ssl_paths),
            x509_paths=tuple(str(p) for p in x509_paths),
        )


@dataclass(frozen=True)
class _ExecutorConfig:
    """Shipped to each worker process exactly once (Pool initializer)."""

    bundle: object
    ct_log: object | None
    rules: AssociationRules
    filter_interception: bool
    min_interception_domains: int
    on_error: ErrorPolicy
    names: tuple[str, ...] | None


@dataclass
class _ShardOutcome:
    month: str
    partials: dict[str, protocol.AnalysisPartial]
    ssl_report: IngestReport
    x509_report: IngestReport
    dangling_fuid_refs: int


@dataclass
class CampaignResult:
    """Merged output of a (possibly parallel) campaign analysis."""

    months: tuple[str, ...]
    partials: dict[str, protocol.AnalysisPartial]
    interception: InterceptionReport
    ingest: IngestReport
    dangling_fuid_refs: int
    jobs: int = 1

    def result(self, name: str):
        """The rich result object of one analysis (legacy shape)."""
        return self.partials[name].result()

    def table(self, name: str) -> Table:
        try:
            partial = self.partials[name]
        except KeyError:
            known = ", ".join(self.partials)
            raise KeyError(f"no analysis {name!r} in this run (have: {known})") from None
        return partial.finalize()

    def tables(self) -> list[Table]:
        """Every analysis rendered, in registry (paper) order."""
        return [partial.finalize() for partial in self.partials.values()]


# ---------------------------------------------------------------------------
# Per-shard work (runs in workers; also called inline when jobs == 1)
# ---------------------------------------------------------------------------


def _make_enricher(config: _ExecutorConfig) -> Enricher:
    return Enricher(
        bundle=config.bundle,
        ct_log=config.ct_log,
        rules=config.rules,
        filter_interception=config.filter_interception,
        min_interception_domains=config.min_interception_domains,
    )


def _load_shard(config: _ExecutorConfig, cache: dict, spec: ShardSpec):
    triple = cache.get(spec.month)
    if triple is None:
        ssl_report = IngestReport()
        x509_report = IngestReport()
        ssl = _read_many(
            [Path(p) for p in spec.ssl_paths], read_ssl_log,
            config.on_error, ssl_report,
        )
        x509 = _read_many(
            [Path(p) for p in spec.x509_paths], read_x509_log,
            config.on_error, x509_report,
        )
        ssl.sort(key=lambda r: r.ts)
        x509.sort(key=lambda r: r.ts)
        triple = (MtlsDataset(ssl, x509), ssl_report, x509_report)
        cache[spec.month] = triple
    return triple


def _scan_shard(
    config: _ExecutorConfig, cache: dict, spec: ShardSpec
) -> InterceptionScan:
    dataset, _, _ = _load_shard(config, cache, spec)
    scan = _make_enricher(config).new_scan()
    for conn in dataset.connections:
        scan.observe(conn)
    return scan


def _analyze_shard(
    config: _ExecutorConfig,
    cache: dict,
    spec: ShardSpec,
    report: InterceptionReport,
) -> _ShardOutcome:
    dataset, ssl_report, x509_report = _load_shard(config, cache, spec)
    enricher = _make_enricher(config)
    enriched = enricher.enrich_with_report(dataset, report)
    context = protocol.AnalysisContext(
        bundle=config.bundle, rules=config.rules, interception=report,
    )
    partials = protocol.run_analyses(
        enriched, config.names, raw=dataset, context=context,
    )
    return _ShardOutcome(
        month=spec.month,
        partials=partials,
        ssl_report=ssl_report,
        x509_report=x509_report,
        dangling_fuid_refs=dataset.dangling_fuid_refs,
    )


# Worker-process globals, set once by the Pool initializer.
_WORKER_STATE: dict = {}


def _worker_init(config: _ExecutorConfig) -> None:
    protocol.load_default_analyses()
    _WORKER_STATE["config"] = config
    _WORKER_STATE["cache"] = {}


def _worker_scan(spec: ShardSpec) -> InterceptionScan:
    return _scan_shard(_WORKER_STATE["config"], _WORKER_STATE["cache"], spec)


def _worker_analyze(payload: tuple[ShardSpec, InterceptionReport]) -> _ShardOutcome:
    spec, report = payload
    return _analyze_shard(
        _WORKER_STATE["config"], _WORKER_STATE["cache"], spec, report
    )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fan per-month shards out over processes and merge the partials.

    ``jobs <= 1`` runs every shard inline in the current process through
    the *same* code path, which is what makes the 0/1/N-worker
    equivalence tests meaningful.
    """

    def __init__(
        self,
        bundle,
        ct_log=None,
        *,
        rules: AssociationRules | None = None,
        filter_interception: bool = True,
        min_interception_domains: int = 5,
        on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
        names: tuple[str, ...] | None = None,
        jobs: int = 1,
    ) -> None:
        self.config = _ExecutorConfig(
            bundle=bundle,
            ct_log=ct_log,
            rules=rules or AssociationRules(),
            filter_interception=filter_interception,
            min_interception_domains=min_interception_domains,
            on_error=ErrorPolicy.coerce(on_error),
            names=tuple(names) if names is not None else None,
        )
        self.jobs = jobs

    def run_directory(self, directory: Path | str) -> CampaignResult:
        """Analyze a rotated-log directory (``ssl.YYYY-MM.log[.gz]``)."""
        shards = [ShardSpec.from_discovery(t) for t in discover_shards(directory)]
        return self.run(shards)

    def run(self, shards: list[ShardSpec]) -> CampaignResult:
        if not shards:
            raise ValueError("no shards to analyze")
        specs = sorted(shards, key=lambda s: s.month)
        jobs = max(1, min(self.jobs, len(specs)))
        if jobs == 1:
            cache: dict = {}
            scans = [_scan_shard(self.config, cache, spec) for spec in specs]
            report = self._merge_scans(scans)
            outcomes = [
                _analyze_shard(self.config, cache, spec, report) for spec in specs
            ]
        else:
            with multiprocessing.Pool(
                processes=jobs, initializer=_worker_init, initargs=(self.config,)
            ) as pool:
                scans = pool.map(_worker_scan, specs)
                report = self._merge_scans(scans)
                outcomes = pool.map(
                    _worker_analyze, [(spec, report) for spec in specs]
                )
        return self._merge_outcomes(specs, report, outcomes, jobs)

    def _merge_scans(self, scans: list[InterceptionScan]) -> InterceptionReport:
        merged = scans[0]
        for scan in scans[1:]:
            merged.merge(scan)
        return merged.finalize(self.config.min_interception_domains)

    def _merge_outcomes(
        self,
        specs: list[ShardSpec],
        report: InterceptionReport,
        outcomes: list[_ShardOutcome],
        jobs: int,
    ) -> CampaignResult:
        # Chronological merge: outcomes arrive in spec (month) order.
        partials = outcomes[0].partials
        for outcome in outcomes[1:]:
            protocol.merge_partials(partials, outcome.partials)
        ingest = IngestReport()
        for outcome in outcomes:
            ingest.merge(outcome.ssl_report)
        # x509 is broadcast to every shard; count its ingestion once.
        ingest.merge(outcomes[0].x509_report)
        dangling = sum(o.dangling_fuid_refs for o in outcomes)
        return CampaignResult(
            months=tuple(spec.month for spec in specs),
            partials=partials,
            interception=report,
            ingest=ingest,
            dangling_fuid_refs=dangling,
            jobs=jobs,
        )


def analyze_directory(
    directory: Path | str,
    bundle,
    ct_log=None,
    *,
    rules: AssociationRules | None = None,
    filter_interception: bool = True,
    min_interception_domains: int = 5,
    on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
    names: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> CampaignResult:
    """One-call sharded analysis of a rotated Zeek archive."""
    executor = ShardExecutor(
        bundle,
        ct_log,
        rules=rules,
        filter_interception=filter_interception,
        min_interception_domains=min_interception_domains,
        on_error=on_error,
        names=names,
        jobs=jobs,
    )
    return executor.run_directory(directory)
