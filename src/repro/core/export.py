"""Machine-readable export of study results.

Renders the whole study (or any `Table`) as JSON so results can be
diffed across runs, plotted externally, or archived — the
privacy-preserving "intermediate data" sharing the paper's artifact
statement aspires to.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.report import Table


def table_to_dict(table: Table) -> dict[str, Any]:
    """One table as {title, headers, rows, notes} with stringified cells."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[str(cell) for cell in row] for row in table.rows],
        "notes": list(table.notes),
    }


def study_to_dict(study) -> dict[str, Any]:
    """Every artifact of a `CampusStudy` keyed by table title."""
    result = study.run()
    payload: dict[str, Any] = {
        "config": {
            "seed": study.config.seed,
            "months": study.config.months,
            "connections_per_month": study.config.connections_per_month,
        },
        "summary": {
            "connections": len(result.dataset),
            "mutual_connections": len(result.dataset.mutual_connections),
            "unique_certificates": len(result.enriched.profiles),
            "interception_issuers_flagged": len(
                result.enriched.interception.flagged_issuers
            ),
            "interception_certificates_excluded": len(
                result.enriched.interception.excluded_fingerprints
            ),
        },
        "tables": {},
    }
    for table in study.all_tables():
        payload["tables"][table.title] = table_to_dict(table)
    return payload


def study_to_json(study, indent: int = 2) -> str:
    """The full study as a JSON document."""
    return json.dumps(study_to_dict(study), indent=indent, sort_keys=True)


def export_tables_dict(source, names=None) -> dict[str, Any]:
    """Registry-keyed export of rendered analyses.

    ``source`` is anything with a ``table(name) -> Table`` method —
    a :class:`~repro.core.study.CampusStudy` or a
    :class:`~repro.core.parallel.CampaignResult`. ``names`` defaults to
    every registered analysis, in paper order. Each entry carries the
    registry name and the dotted legacy function it replaced, so
    exports stay diffable across the API migration.
    """
    from repro.core import protocol

    selected = tuple(names) if names is not None else protocol.analysis_names()
    analyses: dict[str, Any] = {}
    for name in selected:
        entry = protocol.get_analysis(name)
        analyses[name] = {
            "analysis": name,
            "legacy": entry.legacy,
            **table_to_dict(source.table(name)),
        }
    return {"analyses": analyses, "order": list(selected)}


def export_tables_json(source, names=None, indent: int = 2) -> str:
    """JSON form of :func:`export_tables_dict`."""
    return json.dumps(
        export_tables_dict(source, names), indent=indent, sort_keys=True
    )
