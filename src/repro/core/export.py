"""Machine-readable export of study results.

Renders the whole study (or any `Table`) as JSON so results can be
diffed across runs, plotted externally, or archived — the
privacy-preserving "intermediate data" sharing the paper's artifact
statement aspires to.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.report import Table


def table_to_dict(table: Table) -> dict[str, Any]:
    """One table as {title, headers, rows, notes} with stringified cells."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[str(cell) for cell in row] for row in table.rows],
        "notes": list(table.notes),
    }


def study_to_dict(study) -> dict[str, Any]:
    """Every artifact of a `CampusStudy` keyed by table title."""
    result = study.run()
    payload: dict[str, Any] = {
        "config": {
            "seed": study.config.seed,
            "months": study.config.months,
            "connections_per_month": study.config.connections_per_month,
        },
        "summary": {
            "connections": len(result.dataset),
            "mutual_connections": len(result.dataset.mutual_connections),
            "unique_certificates": len(result.enriched.profiles),
            "interception_issuers_flagged": len(
                result.enriched.interception.flagged_issuers
            ),
            "interception_certificates_excluded": len(
                result.enriched.interception.excluded_fingerprints
            ),
        },
        "tables": {},
    }
    for table in study.all_tables():
        payload["tables"][table.title] = table_to_dict(table)
    return payload


def study_to_json(study, indent: int = 2) -> str:
    """The full study as a JSON document."""
    return json.dumps(study_to_dict(study), indent=indent, sort_keys=True)
