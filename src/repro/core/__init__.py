"""The paper's measurement pipeline.

Consumes linked ssl.log / x509.log streams (from `repro.zeek`) and
reproduces every analysis in the paper:

- `dataset`    — join the logs, dedup leaf certificates (§3.2)
- `enrich`     — mutual/direction/public-private labels, interception
                 filtering against CT (§3.2)
- `prevalence` — Figure 1 and Table 1
- `services`   — Table 2
- `issuers`    — issuer categories, Table 3, Figure 2
- `dummy`      — Table 4, Table 10, the §5.1.2 serial collisions
- `sharing`    — Table 5 and Table 6
- `validity`   — Figure 3 / Tables 11-12, Figure 4, Figure 5
- `cnsan`      — §6: Tables 7, 8, 9, 13, 14
- `report`     — plain-text table rendering
- `study`      — one-call orchestration for examples and benches
"""

from repro.core.dataset import CertProfile, ConnView, MtlsDataset
from repro.core.enrich import AssociationRules, EnrichedDataset, Enricher, InterceptionReport
from repro.core.report import Table

__all__ = [
    "CertProfile",
    "ConnView",
    "MtlsDataset",
    "AssociationRules",
    "EnrichedDataset",
    "Enricher",
    "InterceptionReport",
    "Table",
]
