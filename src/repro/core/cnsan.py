"""§6: what is inside CN and SAN? (Tables 7, 8, 9, 13, 14)

Implements the information-type classifier of §6.1.1 — regex types
(domain, IP, MAC, SIP, email, campus user account, localhost), the NER
substitute for personal names and org/product strings, and the random-
string sub-classification of 'unidentified' values — then the counting
tables over mutual, shared, and non-mutual certificate populations.
"""

from __future__ import annotations

import ipaddress
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.core import protocol
from repro.core.dataset import CertProfile, ProfileStore
from repro.core.enrich import EnrichedConn, EnrichedDataset
from repro.core.report import Table, percentage
from repro.text.domains import is_domain_like
from repro.text.ner import EntityLabel, NerClassifier
from repro.text.randomness import looks_random, random_string_shape
from repro.trust import TrustBundle
from repro.zeek import X509Record

#: The information types of §6.1.1, in classification priority order.
INFO_TYPES = (
    "Domain", "IP", "MAC", "SIP", "Email", "UserAccount",
    "PersonalName", "OrgProduct", "Localhost", "Unidentified",
)

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2}[:-]){5}[0-9A-Fa-f]{2}$")
_SIP_RE = re.compile(r"^sips?:", re.IGNORECASE)
_EMAIL_RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")
_USER_ACCOUNT_RE = re.compile(r"^[a-z]{2,3}\d[a-z]{2,3}$")
_IPV4_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


class CnSanClassifier:
    """Classifies one CN or SAN value into an information type.

    `campus_issuer_markers` gates the UserAccount type: the paper only
    counts university-format IDs when the issuer is a campus-managed CA.
    """

    def __init__(
        self,
        ner: NerClassifier | None = None,
        campus_issuer_markers: tuple[str, ...] = ("university",),
    ) -> None:
        self.ner = ner or NerClassifier()
        self.campus_issuer_markers = tuple(m.lower() for m in campus_issuer_markers)

    def _issuer_is_campus(self, issuer_org: str | None, issuer_cn: str | None) -> bool:
        for text in (issuer_org, issuer_cn):
            if text and any(marker in text.lower() for marker in self.campus_issuer_markers):
                return True
        return False

    def classify(
        self,
        value: str,
        issuer_org: str | None = None,
        issuer_cn: str | None = None,
    ) -> str:
        value = value.strip()
        if not value:
            return "Unidentified"
        lowered = value.lower()
        if lowered in ("localhost", "localhost.localdomain") or lowered.startswith(
            "localhost."
        ):
            return "Localhost"
        if _SIP_RE.match(value):
            return "SIP"
        if _MAC_RE.match(value):
            return "MAC"
        if _IPV4_RE.match(value) or _maybe_ip(value):
            return "IP"
        if _EMAIL_RE.match(value):
            return "Email"
        if _USER_ACCOUNT_RE.match(value) and self._issuer_is_campus(issuer_org, issuer_cn):
            return "UserAccount"
        if is_domain_like(value):
            return "Domain"
        entity = self.ner.classify(value)
        if entity.label is EntityLabel.PERSON:
            return "PersonalName"
        if entity.label in (EntityLabel.ORG, EntityLabel.PRODUCT):
            return "OrgProduct"
        return "Unidentified"


def _maybe_ip(value: str) -> bool:
    try:
        ipaddress.ip_address(value)
        return True
    except ValueError:
        return False


# ---------------------------------------------------------------------------
# Population selection
# ---------------------------------------------------------------------------


def _group_of(bundle: TrustBundle, profile: CertProfile) -> tuple[str, str]:
    role = "Server" if profile.primary_role == "server" else "Client"
    record = profile.record
    public = bundle.knows_issuer_dn(record.issuer) or bundle.knows_organization(
        record.issuer_org
    )
    kind = "Public" if public else "Private"
    return role, kind


def _select_mutual(profiles: dict[str, CertProfile]) -> list[CertProfile]:
    return [
        p for p in profiles.values() if p.used_in_mutual and not p.shared_roles
    ]


def _select_shared(profiles: dict[str, CertProfile]) -> list[CertProfile]:
    return [p for p in profiles.values() if p.used_in_mutual and p.shared_roles]


def _select_non_mutual_server(profiles: dict[str, CertProfile]) -> list[CertProfile]:
    return [
        p for p in profiles.values() if p.used_as_server and not p.used_in_mutual
    ]


def _select_used_in_mutual(profiles: dict[str, CertProfile]) -> list[CertProfile]:
    return [p for p in profiles.values() if p.used_in_mutual]


def mutual_population(enriched: EnrichedDataset) -> list[CertProfile]:
    """Certificates used in mutual TLS, excluding shared-role certs
    (those get Table 13)."""
    return _select_mutual(enriched.profiles)


def shared_population(enriched: EnrichedDataset) -> list[CertProfile]:
    """Certificates presented by both servers and clients (§6.3.5)."""
    return _select_shared(enriched.profiles)


def non_mutual_server_population(enriched: EnrichedDataset) -> list[CertProfile]:
    """Server certificates never seen in a mutual connection (§6.3.6)."""
    return _select_non_mutual_server(enriched.profiles)


# ---------------------------------------------------------------------------
# Table 7 (and 13a/14a): CN/SAN utilization
# ---------------------------------------------------------------------------


@dataclass
class UtilizationRow:
    group: str
    total: int
    non_empty_cn: int
    non_empty_san: int


def utilization_table(
    enriched: EnrichedDataset,
    population: list[CertProfile] | None = None,
    split_roles: bool = True,
) -> list[UtilizationRow]:
    """Counts of certificates with non-empty CN / SAN DNS values."""
    population = mutual_population(enriched) if population is None else population
    return _count_utilization(population, enriched.bundle, split_roles)


def _count_utilization(
    population: list[CertProfile], bundle: TrustBundle, split_roles: bool
) -> list[UtilizationRow]:
    counts: dict[str, list[int]] = {}

    def bump(group: str, has_cn: bool, has_san: bool) -> None:
        row = counts.setdefault(group, [0, 0, 0])
        row[0] += 1
        if has_cn:
            row[1] += 1
        if has_san:
            row[2] += 1

    for profile in population:
        role, kind = _group_of(bundle, profile)
        has_cn = bool(profile.record.subject_cn)
        has_san = bool(profile.record.san_dns)
        if split_roles:
            bump(f"{role} certs.", has_cn, has_san)
            bump(f"{role} certs. / {kind} CA", has_cn, has_san)
        else:
            bump("Certificates", has_cn, has_san)
            bump(f"Certificates / {kind} CA", has_cn, has_san)
    return [
        UtilizationRow(group=group, total=row[0], non_empty_cn=row[1], non_empty_san=row[2])
        for group, row in sorted(counts.items())
    ]


def render_utilization(rows: list[UtilizationRow], title: str) -> Table:
    table = Table(title, ["Group", "Total", "CN non-empty", "CN %", "SAN non-empty", "SAN %"])
    for row in rows:
        table.add_row(
            row.group, row.total,
            row.non_empty_cn, percentage(row.non_empty_cn, row.total),
            row.non_empty_san, percentage(row.non_empty_san, row.total),
        )
    return table


# ---------------------------------------------------------------------------
# Table 8 (and 13b/14b): information types
# ---------------------------------------------------------------------------


@dataclass
class InfoTypeMatrix:
    """type counts per (group, field) — the cells of Table 8.

    For SAN, a certificate is counted once per distinct type present
    among its entries (so column percentages can exceed 100%)."""

    counts: dict[tuple[str, str], Counter] = field(default_factory=dict)
    group_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def cell(self, group: str, fieldname: str, info_type: str) -> int:
        return self.counts.get((group, fieldname), Counter())[info_type]

    def total(self, group: str, fieldname: str) -> int:
        return self.group_totals.get((group, fieldname), 0)


def information_types(
    enriched: EnrichedDataset,
    population: list[CertProfile] | None = None,
    classifier: CnSanClassifier | None = None,
    split_roles: bool = True,
) -> InfoTypeMatrix:
    """Classify CN and SAN contents for the population (Table 8)."""
    population = mutual_population(enriched) if population is None else population
    return _count_information_types(
        population, enriched.bundle, classifier, split_roles
    )


def _count_information_types(
    population: list[CertProfile],
    bundle: TrustBundle,
    classifier: CnSanClassifier | None,
    split_roles: bool,
) -> InfoTypeMatrix:
    classifier = classifier or CnSanClassifier()
    matrix = InfoTypeMatrix()

    def bump(group: str, fieldname: str, info_type: str) -> None:
        key = (group, fieldname)
        matrix.counts.setdefault(key, Counter())[info_type] += 1

    def bump_total(group: str, fieldname: str) -> None:
        key = (group, fieldname)
        matrix.group_totals[key] = matrix.group_totals.get(key, 0) + 1

    for profile in population:
        record = profile.record
        role, kind = _group_of(bundle, profile)
        group = f"{role}/{kind}" if split_roles else kind
        cn = record.subject_cn
        if cn:
            bump_total(group, "CN")
            bump(group, "CN", classifier.classify(cn, record.issuer_org, record.issuer_cn))
        if record.san_dns:
            bump_total(group, "SAN")
            types_present = {
                classifier.classify(value, record.issuer_org, record.issuer_cn)
                for value in record.san_dns
            }
            for info_type in types_present:
                bump(group, "SAN", info_type)
    return matrix


def render_information_types(matrix: InfoTypeMatrix, title: str) -> Table:
    groups = sorted({group for group, _field in matrix.counts})
    headers = ["Information type"]
    for group in groups:
        headers.extend([f"{group} CN", f"{group} SAN"])
    table = Table(title, headers)
    for info_type in INFO_TYPES:
        cells: list[object] = [info_type]
        for group in groups:
            for fieldname in ("CN", "SAN"):
                count = matrix.cell(group, fieldname, info_type)
                total = matrix.total(group, fieldname)
                cells.append(f"{count} ({percentage(count, total)}%)" if total else "-")
        table.add_row(*cells)
    return table


# ---------------------------------------------------------------------------
# §6.1.2: usage of the explicit SAN types (IP / email / URI vs DNS)
# ---------------------------------------------------------------------------


@dataclass
class SanTypeUsage:
    """How often each explicit SAN type is populated, and whether its
    entries match the declared type (§6.1.2: 99% empty; correct when
    used — unlike SAN DNS, which carries free text)."""

    population: int = 0
    with_dns: int = 0
    with_ip: int = 0
    with_email: int = 0
    with_uri: int = 0
    ip_entries: int = 0
    ip_entries_valid: int = 0
    email_entries: int = 0
    email_entries_valid: int = 0
    dns_entries: int = 0
    dns_entries_domainlike: int = 0


def san_type_usage(
    enriched: EnrichedDataset, population: list[CertProfile] | None = None
) -> SanTypeUsage:
    """Measure explicit-SAN-type utilization and type conformance."""
    from repro.text.domains import is_domain_like

    population = (
        _select_used_in_mutual(enriched.profiles)
        if population is None else population
    )
    return _count_san_type_usage(population)


def _count_san_type_usage(population: list[CertProfile]) -> SanTypeUsage:
    usage = SanTypeUsage(population=len(population))
    for profile in population:
        record = profile.record
        if record.san_dns:
            usage.with_dns += 1
            usage.dns_entries += len(record.san_dns)
            usage.dns_entries_domainlike += sum(
                1 for value in record.san_dns if is_domain_like(value)
            )
        if record.san_ip:
            usage.with_ip += 1
            usage.ip_entries += len(record.san_ip)
            usage.ip_entries_valid += sum(
                1 for value in record.san_ip if _maybe_ip(value)
            )
        if record.san_email:
            usage.with_email += 1
            usage.email_entries += len(record.san_email)
            usage.email_entries_valid += sum(
                1 for value in record.san_email if _EMAIL_RE.match(value)
            )
        if record.san_uri:
            usage.with_uri += 1
    return usage


def render_san_type_usage(usage: SanTypeUsage) -> Table:
    table = Table(
        "§6.1.2: explicit SAN type utilization and conformance",
        ["SAN type", "Certs using it", "% of population",
         "Entries", "Type-conformant entries"],
    )
    table.add_row("DNS", usage.with_dns, percentage(usage.with_dns, usage.population),
                  usage.dns_entries, usage.dns_entries_domainlike)
    table.add_row("IP", usage.with_ip, percentage(usage.with_ip, usage.population),
                  usage.ip_entries, usage.ip_entries_valid)
    table.add_row("Email", usage.with_email,
                  percentage(usage.with_email, usage.population),
                  usage.email_entries, usage.email_entries_valid)
    table.add_row("URI", usage.with_uri, percentage(usage.with_uri, usage.population),
                  "-", "-")
    table.add_note("paper: 99% of IP/URI/email SAN types are empty; when "
                   "used they match their type — SAN DNS does not")
    return table


# ---------------------------------------------------------------------------
# Table 9: unidentified sub-classification
# ---------------------------------------------------------------------------


@dataclass
class UnidentifiedBreakdown:
    group: str
    fieldname: str
    total: int = 0
    non_random: int = 0
    random_by_issuer: int = 0
    random_len8: int = 0
    random_len32: int = 0
    random_len36: int = 0
    random_other: int = 0


def unidentified_breakdown(
    enriched: EnrichedDataset,
    population: list[CertProfile] | None = None,
    classifier: CnSanClassifier | None = None,
) -> list[UnidentifiedBreakdown]:
    """Table 9: split Unidentified CN/SAN values into non-random strings
    and random strings keyed by issuer recognizability or length."""
    population = mutual_population(enriched) if population is None else population
    return _count_unidentified(population, enriched.bundle, classifier)


def _count_unidentified(
    population: list[CertProfile],
    bundle: TrustBundle,
    classifier: CnSanClassifier | None = None,
) -> list[UnidentifiedBreakdown]:
    classifier = classifier or CnSanClassifier()
    rows: dict[tuple[str, str], UnidentifiedBreakdown] = {}

    def bucket(group: str, fieldname: str) -> UnidentifiedBreakdown:
        key = (group, fieldname)
        if key not in rows:
            rows[key] = UnidentifiedBreakdown(group=group, fieldname=fieldname)
        return rows[key]

    def account(group: str, fieldname: str, value: str, record: X509Record) -> None:
        row = bucket(group, fieldname)
        row.total += 1
        if not looks_random(value):
            row.non_random += 1
            return
        issuer_text = f"{record.issuer_cn or ''} {record.issuer_org or ''}".strip()
        if issuer_text and any(
            marker in issuer_text for marker in
            ("Azure Sphere", "Apple iPhone Device", "University", "AT&T", "Red Hat",
             "Samsung")
        ):
            row.random_by_issuer += 1
            return
        shape = random_string_shape(value)
        if shape == "len8":
            row.random_len8 += 1
        elif shape == "len32":
            row.random_len32 += 1
        elif shape in ("len36", "uuid"):
            row.random_len36 += 1
        else:
            row.random_other += 1

    for profile in population:
        record = profile.record
        role, kind = _group_of(bundle, profile)
        group = f"{role}/{kind}"
        cn = record.subject_cn
        if cn and classifier.classify(cn, record.issuer_org, record.issuer_cn) == "Unidentified":
            account(group, "CN", cn, record)
        for value in record.san_dns:
            if classifier.classify(value, record.issuer_org, record.issuer_cn) == "Unidentified":
                account(group, "SAN", value, record)
    return sorted(rows.values(), key=lambda r: (r.group, r.fieldname))


def render_unidentified_breakdown(rows: list[UnidentifiedBreakdown]) -> Table:
    table = Table(
        "Table 9: unidentified CN/SAN values — non-random vs random shapes",
        ["Group", "Field", "Total", "Non-random", "Random by issuer",
         "len=8", "len=32", "len=36/UUID", "Other"],
    )
    for row in rows:
        table.add_row(
            row.group, row.fieldname, row.total, row.non_random,
            row.random_by_issuer, row.random_len8, row.random_len32,
            row.random_len36, row.random_other,
        )
    return table


# ---------------------------------------------------------------------------
# Registry partials: Tables 7, 8, 9, 13a/b, 14a/b and the SAN-type usage
# ---------------------------------------------------------------------------


class PopulationPartial(protocol.AnalysisPartial):
    """Base for §6 analyses: rebuild the certificate-profile population
    shard by shard, then select and count at finalize time.

    Subclasses set ``selector`` (profiles dict → population list) and
    override :meth:`result` / :meth:`finalize`.
    """

    def __init__(self, context: protocol.AnalysisContext) -> None:
        self._bundle = context.bundle
        self.store = ProfileStore()

    def update(self, conn: EnrichedConn) -> None:
        self.store.observe(conn.view)

    def merge(self, other: "PopulationPartial") -> None:
        self.store.merge(other.store)

    def population(self) -> list[CertProfile]:
        raise NotImplementedError


class Table7Partial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_mutual(self.store.profiles)

    def result(self) -> list[UtilizationRow]:
        return _count_utilization(self.population(), self._bundle, split_roles=True)

    def finalize(self) -> Table:
        return render_utilization(
            self.result(), "Table 7: non-empty CN/SAN in mutual-TLS certificates"
        )


class Table8Partial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_mutual(self.store.profiles)

    def result(self) -> InfoTypeMatrix:
        return _count_information_types(
            self.population(), self._bundle, None, split_roles=True
        )

    def finalize(self) -> Table:
        return render_information_types(
            self.result(), "Table 8: information types in CN and SAN (mutual TLS)"
        )


class Table9Partial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_mutual(self.store.profiles)

    def result(self) -> list[UnidentifiedBreakdown]:
        return _count_unidentified(self.population(), self._bundle)

    def finalize(self) -> Table:
        return render_unidentified_breakdown(self.result())


class Table13aPartial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_shared(self.store.profiles)

    def result(self) -> list[UtilizationRow]:
        return _count_utilization(self.population(), self._bundle, split_roles=False)

    def finalize(self) -> Table:
        return render_utilization(
            self.result(), "Table 13a: CN/SAN utilization in shared certificates"
        )


class Table13bPartial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_shared(self.store.profiles)

    def result(self) -> InfoTypeMatrix:
        return _count_information_types(
            self.population(), self._bundle, None, split_roles=False
        )

    def finalize(self) -> Table:
        return render_information_types(
            self.result(), "Table 13b: information types in shared certificates"
        )


class Table14aPartial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_non_mutual_server(self.store.profiles)

    def result(self) -> list[UtilizationRow]:
        return _count_utilization(self.population(), self._bundle, split_roles=False)

    def finalize(self) -> Table:
        return render_utilization(
            self.result(), "Table 14a: CN/SAN utilization, non-mutual server certs"
        )


class Table14bPartial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_non_mutual_server(self.store.profiles)

    def result(self) -> InfoTypeMatrix:
        return _count_information_types(
            self.population(), self._bundle, None, split_roles=False
        )

    def finalize(self) -> Table:
        return render_information_types(
            self.result(), "Table 14b: information types, non-mutual server certs"
        )


class SanTypesPartial(PopulationPartial):
    def population(self) -> list[CertProfile]:
        return _select_used_in_mutual(self.store.profiles)

    def result(self) -> SanTypeUsage:
        return _count_san_type_usage(self.population())

    def finalize(self) -> Table:
        return render_san_type_usage(self.result())


protocol.register(protocol.Analysis(
    name="table7",
    title="Table 7: non-empty CN/SAN in mutual-TLS certificates",
    factory=Table7Partial,
    legacy="repro.core.cnsan.utilization_table",
))
protocol.register(protocol.Analysis(
    name="table8",
    title="Table 8: information types in CN and SAN (mutual TLS)",
    factory=Table8Partial,
    legacy="repro.core.cnsan.information_types",
))
protocol.register(protocol.Analysis(
    name="table9",
    title="Table 9: unidentified CN/SAN values — non-random vs random shapes",
    factory=Table9Partial,
    legacy="repro.core.cnsan.unidentified_breakdown",
))
protocol.register(protocol.Analysis(
    name="table13a",
    title="Table 13a: CN/SAN utilization in shared certificates",
    factory=Table13aPartial,
    legacy="repro.core.cnsan.utilization_table",
))
protocol.register(protocol.Analysis(
    name="table13b",
    title="Table 13b: information types in shared certificates",
    factory=Table13bPartial,
    legacy="repro.core.cnsan.information_types",
))
protocol.register(protocol.Analysis(
    name="table14a",
    title="Table 14a: CN/SAN utilization, non-mutual server certs",
    factory=Table14aPartial,
    legacy="repro.core.cnsan.utilization_table",
))
protocol.register(protocol.Analysis(
    name="table14b",
    title="Table 14b: information types, non-mutual server certs",
    factory=Table14bPartial,
    legacy="repro.core.cnsan.information_types",
))
protocol.register(protocol.Analysis(
    name="san-types",
    title="§6.1.2: explicit SAN type utilization and conformance",
    factory=SanTypesPartial,
    legacy="repro.core.cnsan.san_type_usage",
))
