"""Always-on live analysis: rotation-safe tailing of a hot Zeek log dir.

The batch pipeline reads a *finished* rotated archive; the paper's
measurement ran for 23 months against logs that were still being
written. This module provides the pieces of `repro serve`, a daemon that
follows the live ``ssl.log``/``x509.log`` of a directory while Zeek (or
the fault-injecting :class:`~repro.netsim.faults.LiveLogWriter`) keeps
rotating, truncating, and appending to them:

- :class:`LogTailer` — one live log stream, consumed exactly once. The
  tailer keeps the file descriptor open so a rename (rotation) can be
  drained to EOF from the old fd; it detects rotation by inode change on
  the path, truncation by size regression on the same inode, and never
  loses or re-reads a byte across either. Rotated files it did not
  watch being born are read whole, once. Mid-write reads are safe: raw
  bytes are buffered up to the last newline, so an unterminated trailing
  line (or a split multi-byte character) waits for its completion.
- :class:`AdmissionController` — bounded memory under burst overload:
  hot tables switch to reservoir sampling and carry an explicit
  offered/admitted correction factor; cold tables stay exact.
- :class:`LiveAnalysisEngine` — the incremental twin of the batch
  pipeline: feeds the :class:`~repro.core.streaming.StreamingAnalyzer`
  (retaining x509 records per live fuid), rebuilds each established
  connection's :class:`~repro.core.dataset.ConnView`, labels it through
  the same :class:`~repro.core.enrich.Enricher` path, and updates every
  registry partial. Because partials are deterministic independent of
  update/merge order (the :mod:`repro.core.protocol` contract), live
  arrival order is irrelevant: with sampling disabled the rendered
  tables are byte-identical to a batch ``analyze`` of the same rows.
- :class:`LiveTailDaemon` — the poll loop, scheduled checkpoints
  (aggregates *and* tailer cursors in one atomic document, so a SIGKILL
  rolls both back together — exactly-once resume), and graceful
  shutdown (final drain + final checkpoint).
"""

from __future__ import annotations

import base64
import os
import pickle
import random
import threading
import time
import zlib
from pathlib import Path
from typing import Iterable

from repro.core import tracing
from repro.core.dataset import ConnView
from repro.core.durable import sweep_orphans
from repro.core.locks import FileLock, LockTimeout
from repro.core.enrich import AssociationRules, Enricher
from repro.core.protocol import (
    AnalysisContext,
    create_partials,
    get_analysis,
    load_default_analyses,
)
from repro.core.streaming import StreamingAnalyzer, load_checkpoint_json
from repro.trust import TrustBundle
from repro.zeek import (
    ErrorPolicy,
    FastPath,
    IngestOptions,
    IngestReport,
    SslRecord,
    TailDecoder,
)

#: Top-level checkpoint key carrying the daemon's own state next to the
#: streaming snapshot (`StreamingAnalyzer.from_snapshot` ignores it).
LIVETAIL_STATE_KEY = "livetail"
LIVETAIL_STATE_FORMAT = "livetail/v1"

#: Tables that switch to reservoir sampling under overload by default:
#: the per-connection distribution tables, whose exact update cost is
#: proportional to the row flood. Identity-level tables (unique
#: certificates, issuers) stay exact — their state is bounded by the
#: number of distinct certificates, not connections.
DEFAULT_HOT_TABLES: tuple[str, ...] = ("table2", "table3", "table4", "figure2")

_CHUNK = 1 << 16
#: Bound on rotation-race resolution rounds within one poll; leftover
#: work simply carries into the next poll.
_MAX_SYNC_ROUNDS = 64


def _b64e(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _b64d(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


class LogTailer:
    """Tail one live Zeek log (``<kind>.log``) in a rotating directory.

    Exactly-once consumption across faults:

    - **Rotation** (the path's inode changes / the path vanishes): the
      old instance is drained to EOF through the still-open fd, its
      decoder finished, and its rotated name — located by inode — marked
      processed so it is never read again.
    - **Truncation in place** (same inode, size below our offset — the
      copytruncate idiom): the cut instance is parked as a
      *continuation* keyed by a CRC fingerprint of the bytes already
      consumed; when the copied-aside file appears, its matching prefix
      is skipped and only the remainder is decoded, through the parked
      decoder. A plain destructive truncation simply never matches and
      the live file restarts as a new instance either way.
    - **Mid-write reads**: bytes are buffered up to the last newline;
      an unterminated tail (even a split multi-byte character) is
      decoded only once completed — or flushed through the batch
      truncated-final-line path when the instance truly ends.

    The complete cursor state is JSON-serializable (`state_dict` /
    `load_state`); a restored tailer re-attaches to the live file only
    when inode *and* consumed-prefix CRC still match, and otherwise
    parks the old instance as a continuation — so a crash between
    checkpoint and restart moves no byte twice.
    """

    def __init__(
        self,
        directory: Path | str,
        kind: str,
        *,
        report: IngestReport | None = None,
        on_error: ErrorPolicy | str = ErrorPolicy.SKIP,
        fast_path: FastPath | str | bool = FastPath.AUTO,
    ) -> None:
        self.directory = Path(directory)
        self.kind = kind
        self.live_path = self.directory / f"{kind}.log"
        self.report = report if report is not None else IngestReport()
        self.on_error = ErrorPolicy.coerce(on_error)
        self.fast_path = FastPath.coerce(fast_path)
        #: Rotated filenames fully consumed — never read twice.
        self.processed: set[str] = set()
        self.rotations_seen = 0
        self.truncations_seen = 0
        self._fh = None
        self._dev: int | None = None
        self._ino: int | None = None
        self._offset = 0
        self._crc = 0
        self._buffer = b""
        self._decoder: TailDecoder | None = None
        #: Cut instances whose remaining bytes may still appear as a
        #: rotated file; see the class docstring.
        self._continuations: list[dict] = []

    # ------------------------------------------------------------------ helpers

    def _new_decoder(self, path: Path, *, count_file: bool = True) -> TailDecoder:
        return TailDecoder(
            self.kind, on_error=self.on_error, report=self.report,
            path=str(path), fast_path=self.fast_path, count_file=count_file,
        )

    def _ingest(self, data: bytes, records: list) -> None:
        if not data:
            return
        self._offset += len(data)
        self._crc = zlib.crc32(data, self._crc)
        self._buffer += data
        cut = self._buffer.rfind(b"\n")
        if cut < 0:
            return
        complete = self._buffer[: cut + 1]
        self._buffer = self._buffer[cut + 1:]
        records.extend(self._decoder.feed(complete.decode("utf-8")))

    def _drain_fh(self, records: list) -> None:
        while True:
            chunk = self._fh.read(_CHUNK)
            if not chunk:
                return
            self._ingest(chunk, records)

    def _finish_instance(self, records: list) -> None:
        """The open instance ended: flush the byte buffer (unterminated
        tail → batch truncated-final-line semantics) and finish."""
        if self._buffer:
            records.extend(
                self._decoder.feed(self._buffer.decode("utf-8", "replace"))
            )
            self._buffer = b""
        records.extend(self._decoder.finish())

    def _close_fh(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._fh = None
        self._dev = self._ino = None
        self._offset = 0
        self._crc = 0
        self._buffer = b""
        self._decoder = None

    def _open_live(self) -> bool:
        try:
            fh = open(self.live_path, "rb")
        except FileNotFoundError:
            return False
        st = os.fstat(fh.fileno())
        self._fh = fh
        self._dev, self._ino = st.st_dev, st.st_ino
        self._offset = 0
        self._crc = 0
        self._buffer = b""
        self._decoder = self._new_decoder(self.live_path)
        return True

    def _find_by_inode(self, dev: int, ino: int) -> str | None:
        for path in self.directory.glob(f"{self.kind}.*.log"):
            if path.name in self.processed:
                continue
            try:
                st = path.stat()
            except FileNotFoundError:
                continue
            if (st.st_dev, st.st_ino) == (dev, ino):
                return path.name
        return None

    # ------------------------------------------------------------------- events

    def _handle_rotation(self, records: list) -> None:
        self._drain_fh(records)
        name = self._find_by_inode(self._dev, self._ino)
        self._finish_instance(records)
        if name is not None:
            self.processed.add(name)
        else:
            # Rename not visible yet; the fingerprint recognizes (and
            # skips) the file when it appears.
            self._continuations.append({
                "nbytes": self._offset, "crc": self._crc,
                "buffer": b"", "decoder": None,
            })
        self._close_fh()
        self.rotations_seen += 1

    def _handle_truncation(self) -> None:
        self._continuations.append({
            "nbytes": self._offset, "crc": self._crc,
            "buffer": self._buffer, "decoder": self._decoder,
        })
        self.truncations_seen += 1
        self._fh.seek(0)
        self._offset = 0
        self._crc = 0
        self._buffer = b""
        self._decoder = self._new_decoder(self.live_path)

    def _match_continuation(self, data: bytes) -> dict | None:
        for entry in self._continuations:
            n = entry["nbytes"]
            if len(data) >= n and zlib.crc32(data[:n]) == entry["crc"]:
                return entry
        return None

    def _consume_rotated(self, records: list) -> None:
        if (
            self._fh is not None
            and os.fstat(self._fh.fileno()).st_size < self._offset
        ):
            # Register an in-place truncation *before* scanning rotated
            # candidates: the copied-aside file (copytruncate writes it
            # after truncating) must meet its continuation entry, never
            # be mistaken for an unseen file and re-read.
            self._handle_truncation()
        for path in sorted(self.directory.glob(f"{self.kind}.*.log")):
            if path.name in self.processed:
                continue
            try:
                st = path.stat()
            except FileNotFoundError:
                continue
            if (
                self._fh is not None
                and (st.st_dev, st.st_ino) == (self._dev, self._ino)
            ):
                # The current live instance mid-rename; drained via fd.
                continue
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                continue
            entry = self._match_continuation(data)
            if entry is not None:
                self._continuations.remove(entry)
                decoder = entry["decoder"]
                if decoder is not None:
                    text = (entry["buffer"] + data[entry["nbytes"]:]).decode(
                        "utf-8", "replace"
                    )
                    if text:
                        records.extend(decoder.feed(text))
                    records.extend(decoder.finish())
            else:
                # A rotated file this tailer never watched (pre-existing
                # or rotated between polls): read whole, exactly once.
                decoder = self._new_decoder(path)
                text = data.decode("utf-8", "replace")
                if text:
                    records.extend(decoder.feed(text))
                records.extend(decoder.finish())
            self.processed.add(path.name)

    def _step_live(self, records: list) -> bool:
        """Advance the live file one step; True when the view is stable
        (the open fd is still ``<kind>.log``, drained to EOF)."""
        try:
            st = os.stat(self.live_path)
        except FileNotFoundError:
            st = None
        if self._fh is None:
            if st is None:
                return True
            if not self._open_live():
                return False
            self._drain_fh(records)
            return False  # verify no rotation raced the open
        if st is None or (st.st_dev, st.st_ino) != (self._dev, self._ino):
            self._handle_rotation(records)
            return False
        if os.fstat(self._fh.fileno()).st_size < self._offset:
            self._handle_truncation()
        self._drain_fh(records)
        try:
            st = os.stat(self.live_path)
        except FileNotFoundError:
            return False
        return (st.st_dev, st.st_ino) == (self._dev, self._ino)

    # --------------------------------------------------------------------- API

    def poll(self) -> list:
        """One sweep: consume newly rotated files and new live bytes.
        Loops until the directory view is stable, so a rotation racing
        the poll is resolved within the same call."""
        records: list = []
        for _ in range(_MAX_SYNC_ROUNDS):
            self._consume_rotated(records)
            if self._step_live(records):
                break
        return records

    def close(self) -> None:
        """Release the fd *without* finishing the live decoder — the
        file is still live; a resumed tailer continues exactly here."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        live = None
        if self._decoder is not None:
            live = {
                "dev": self._dev, "ino": self._ino,
                "offset": self._offset, "crc": self._crc,
                "buffer_b64": _b64e(self._buffer),
                "decoder": self._decoder.state_dict(),
            }
        return {
            "kind": self.kind,
            "processed": sorted(self.processed),
            "rotations_seen": self.rotations_seen,
            "truncations_seen": self.truncations_seen,
            "live": live,
            "continuations": [
                {
                    "nbytes": e["nbytes"], "crc": e["crc"],
                    "buffer_b64": _b64e(e["buffer"]),
                    "decoder": (
                        e["decoder"].state_dict()
                        if e["decoder"] is not None else None
                    ),
                }
                for e in self._continuations
            ],
        }

    def _restore_decoder(self, state: dict | None) -> TailDecoder | None:
        if state is None:
            return None
        decoder = self._new_decoder(self.live_path, count_file=False)
        decoder.load_state(state)
        return decoder

    def load_state(self, state: dict) -> None:
        if state.get("kind") != self.kind:
            raise ValueError(
                f"tailer state is for kind {state.get('kind')!r}, not {self.kind!r}"
            )
        self.processed = set(state["processed"])
        self.rotations_seen = state["rotations_seen"]
        self.truncations_seen = state["truncations_seen"]
        self._continuations = [
            {
                "nbytes": e["nbytes"], "crc": e["crc"],
                "buffer": _b64d(e["buffer_b64"]),
                "decoder": self._restore_decoder(e["decoder"]),
            }
            for e in state["continuations"]
        ]
        live = state["live"]
        if live is None:
            return
        decoder = self._restore_decoder(live["decoder"])
        buffer = _b64d(live["buffer_b64"])
        try:
            fh = open(self.live_path, "rb")
        except FileNotFoundError:
            fh = None
        if fh is not None:
            st = os.fstat(fh.fileno())
            attach = False
            if (
                (st.st_dev, st.st_ino) == (live["dev"], live["ino"])
                and st.st_size >= live["offset"]
            ):
                prefix = fh.read(live["offset"])
                attach = (
                    len(prefix) == live["offset"]
                    and zlib.crc32(prefix) == live["crc"]
                )
            if attach:
                self._fh = fh
                self._dev, self._ino = live["dev"], live["ino"]
                self._offset = live["offset"]
                self._crc = live["crc"]
                self._buffer = buffer
                self._decoder = decoder
                return
            fh.close()
        # The instance we were mid-reading moved on while the daemon was
        # down; pick it up from the recorded offset when its rotated
        # file is recognized.
        if decoder is not None and not decoder.finished:
            self._continuations.append({
                "nbytes": live["offset"], "crc": live["crc"],
                "buffer": buffer, "decoder": decoder,
            })


class AdmissionController:
    """Bounded memory under burst overload via per-table sampling.

    In EXACT mode every established connection updates every partial.
    When one poll batch exceeds ``high_watermark`` established rows, the
    controller opens a *sampling window*: hot tables stop receiving
    per-row updates and instead a bounded uniform reservoir (Algorithm
    R) of ``(view, enriched)`` pairs accumulates; cold tables stay
    exact. A batch at/below ``low_watermark`` closes the window — the
    reservoir is folded into the hot partials and offered/admitted
    counts committed. A hot table that ever sampled is permanently
    flagged, with ``correction = offered / admitted``: the factor its
    per-connection counts were scaled down by (its identity-level
    statements remain exact for the sampled subset).

    ``high_watermark=0`` (the default) disables the controller — a pure
    pass-through, keeping live results byte-identical to batch.
    """

    def __init__(
        self,
        *,
        high_watermark: int = 0,
        low_watermark: int | None = None,
        reservoir_size: int = 4096,
        hot_tables: Iterable[str] = DEFAULT_HOT_TABLES,
        seed: int = 2024,
    ) -> None:
        if high_watermark < 0:
            raise ValueError("high_watermark must be >= 0")
        self.high_watermark = high_watermark
        self.low_watermark = (
            low_watermark if low_watermark is not None else high_watermark // 2
        )
        if self.low_watermark > high_watermark:
            raise ValueError("low_watermark must not exceed high_watermark")
        self.reservoir_size = reservoir_size
        self.hot_tables = tuple(hot_tables)
        self.sampling = False
        self.windows = 0
        self.reservoir: list = []
        self.window_offered = 0
        self.offered: dict[str, int] = {}
        self.admitted: dict[str, int] = {}
        self.sampled_tables: set[str] = set()
        self._rng = random.Random(seed)

    @property
    def enabled(self) -> bool:
        return self.high_watermark > 0

    def observe_batch(self, rows: int) -> str | None:
        """Mode transition for a poll batch of ``rows`` established
        connections: ``"enter"``, ``"exit"`` (caller must fold
        :meth:`close_window`), or None."""
        if not self.enabled:
            return None
        if not self.sampling and rows > self.high_watermark:
            self.sampling = True
            self.windows += 1
            self.sampled_tables.update(self.hot_tables)
            return "enter"
        if self.sampling and rows <= self.low_watermark:
            return "exit"
        return None

    def offer(self, item) -> bool:
        """Offer one (view, enriched) pair to the open window's
        reservoir; True when it was admitted."""
        self.window_offered += 1
        if len(self.reservoir) < self.reservoir_size:
            self.reservoir.append(item)
            return True
        slot = self._rng.randrange(self.window_offered)
        if slot < self.reservoir_size:
            self.reservoir[slot] = item
            return True
        return False

    def close_window(self) -> list:
        """Commit the window: returns the admitted items for folding
        into the hot partials and resets to EXACT mode."""
        items = self.reservoir
        for name in self.hot_tables:
            self.offered[name] = self.offered.get(name, 0) + self.window_offered
            self.admitted[name] = self.admitted.get(name, 0) + len(items)
        self.reservoir = []
        self.window_offered = 0
        self.sampling = False
        return items

    def table_stats(self, name: str, *, include_open_window: bool = False) -> dict | None:
        """Sampling status for one table (None when it never sampled)."""
        if name not in self.sampled_tables:
            return None
        offered = self.offered.get(name, 0)
        admitted = self.admitted.get(name, 0)
        if include_open_window and self.sampling and name in self.hot_tables:
            offered += self.window_offered
            admitted += len(self.reservoir)
        correction = offered / admitted if admitted else float(offered or 1)
        return {
            "sampled": True,
            "offered": offered,
            "admitted": admitted,
            "correction": correction,
        }


class LiveAnalysisEngine:
    """The incremental twin of the batch pipeline (module docstring)."""

    def __init__(
        self,
        bundle: TrustBundle,
        *,
        rules: AssociationRules | None = None,
        max_fuid_map: int | None = None,
        fast_path: FastPath | str | bool = FastPath.AUTO,
        min_interception_domains: int = 5,
        admission: AdmissionController | None = None,
    ) -> None:
        load_default_analyses()
        self.bundle = bundle
        self.analyzer = StreamingAnalyzer(
            bundle,
            options=IngestOptions(fast_path=FastPath.coerce(fast_path)),
            max_fuid_map=max_fuid_map,
            keep_records=True,
        )
        self.metrics = self.analyzer.metrics
        self.enricher = self._make_enricher(rules, min_interception_domains)
        self.context = AnalysisContext(bundle=bundle, rules=self.enricher.rules)
        self.partials = create_partials(None, self.context)
        self._raw_names = frozenset(
            name for name in self.partials if get_analysis(name).needs_raw
        )
        self.scan = self.enricher.new_scan()
        self.ssl_report = IngestReport()
        self.x509_report = IngestReport()
        self.admission = admission or AdmissionController()
        self._rebind_tables()

    def _make_enricher(
        self, rules: AssociationRules | None, min_interception_domains: int
    ) -> Enricher:
        # No CT log: the live filter only tracks fingerprints (an empty
        # interception report), exactly like a batch `analyze` without
        # --ct — which is what the equivalence contract compares against.
        cache = self.analyzer._fact_cache
        return Enricher(
            self.bundle, ct_log=None, rules=rules,
            min_interception_domains=min_interception_domains,
            fact_cache=cache if cache is not None else False,
        )

    def _rebind_tables(self) -> None:
        self._hot = tuple(
            n for n in self.admission.hot_tables if n in self.partials
        )
        hot = set(self._hot)
        self._cold = tuple(n for n in self.partials if n not in hot)
        self._all = tuple(self.partials)

    # ------------------------------------------------------------------ feeding

    def _update(self, names: Iterable[str], view: ConnView, enriched) -> None:
        for name in names:
            partial = self.partials[name]
            partial.update(enriched)
            if name in self._raw_names:
                partial.update_raw(view)

    def feed(
        self, ssl_records: list[SslRecord], x509_records: list
    ) -> None:
        """Fold one poll batch in (x509 first — Zeek write ordering
        guarantees any referenced certificate row is durable before the
        ssl row referencing it)."""
        self.analyzer.add_x509(x509_records)
        established = [r for r in ssl_records if r.established]
        transition = self.admission.observe_batch(len(established))
        if transition == "enter":
            self.metrics.inc("livetail.admission.windows")
        elif transition == "exit":
            self._fold_window()
        self.analyzer.add_ssl(ssl_records)
        sampling = self.admission.sampling
        for row in established:
            view = ConnView(
                ssl=row,
                server_leaf=self.analyzer.x509_for_fuid(row.server_leaf_fuid),
                client_leaf=self.analyzer.x509_for_fuid(row.client_leaf_fuid),
            )
            self.scan.observe(view)
            enriched = self.enricher.label(view)
            if sampling:
                self._update(self._cold, view, enriched)
                self.admission.offer((view, enriched))
            else:
                self._update(self._all, view, enriched)
        if sampling:
            self.metrics.inc("livetail.admission.deferred", len(established))

    def _fold_window(self) -> None:
        folded = self.admission.close_window()
        for view, enriched in folded:
            self._update(self._hot, view, enriched)
        self.metrics.inc("livetail.admission.folded", len(folded))

    # ------------------------------------------------------------------ queries

    def interception_report(self):
        return self.scan.finalize(self.enricher.min_interception_domains)

    def tables(self) -> dict[str, dict]:
        """Render every registry table with its sampling status.

        While a sampling window is open, hot tables render from a deep
        copy folded with the current reservoir — the committed partials
        stay sample-free until the window actually closes.
        """
        inter = self.partials.get("interception")
        if inter is not None:
            # The partial captured the (empty) report at construction;
            # refresh it from the live scan at query time.
            inter.report = self.interception_report()
        overlay: dict = {}
        if self.admission.sampling and self.admission.reservoir:
            copies = pickle.loads(
                pickle.dumps({n: self.partials[n] for n in self._hot})
            )
            for view, enriched in self.admission.reservoir:
                for name, partial in copies.items():
                    partial.update(enriched)
                    if name in self._raw_names:
                        partial.update_raw(view)
            overlay = copies
        out: dict[str, dict] = {}
        for name in self.partials:
            partial = overlay.get(name, self.partials[name])
            out[name] = {
                "table": partial.finalize(),
                "sampling": self.admission.table_stats(
                    name, include_open_window=True
                ),
            }
        return out

    def publish_sampling_metrics(self) -> None:
        """Mirror per-table sampling status into the metrics registry
        (gauges: the stats are cumulative absolutes, not deltas)."""
        for name in sorted(self.admission.sampled_tables):
            stats = self.admission.table_stats(name, include_open_window=True)
            if stats is None:
                continue
            prefix = f"livetail.sampled.{name}"
            self.metrics.set_gauge(f"{prefix}.offered", stats["offered"])
            self.metrics.set_gauge(f"{prefix}.admitted", stats["admitted"])
            self.metrics.set_gauge(f"{prefix}.correction", stats["correction"])

    # ------------------------------------------------------------- persistence

    def state_extra(self, tailer_states: dict) -> dict:
        """The daemon-side state that rides along inside the streaming
        checkpoint document (one atomic write covers both)."""
        blob = pickle.dumps({
            "partials": self.partials,
            "scan": self.scan,
            "ssl_report": self.ssl_report,
            "x509_report": self.x509_report,
            "admission": self.admission,
        })
        return {
            LIVETAIL_STATE_KEY: {
                "format": LIVETAIL_STATE_FORMAT,
                "tailers": tailer_states,
                "state_b64": _b64e(blob),
            }
        }

    def checkpoint(self, path: Path | str, tailer_states: dict) -> Path:
        self.publish_sampling_metrics()
        return self.analyzer.write_checkpoint(
            path, extra=self.state_extra(tailer_states)
        )

    def load_extra(self, extra: dict) -> None:
        found = extra.get("format")
        if found != LIVETAIL_STATE_FORMAT:
            raise ValueError(
                f"unsupported livetail state format {found!r} "
                f"(expected {LIVETAIL_STATE_FORMAT!r})"
            )
        state = pickle.loads(_b64d(extra["state_b64"]))
        self.partials = state["partials"]
        self.scan = state["scan"]
        # The scan's fact cache is process-local acceleration state,
        # nulled on pickling; reattach the (restored) shared one.
        self.scan.fact_cache = self.enricher.fact_cache
        self.ssl_report = state["ssl_report"]
        self.x509_report = state["x509_report"]
        self.admission = state["admission"]
        self._rebind_tables()

    @classmethod
    def from_checkpoint_doc(
        cls,
        bundle: TrustBundle,
        document: dict,
        *,
        rules: AssociationRules | None = None,
        min_interception_domains: int = 5,
        admission: AdmissionController | None = None,
    ) -> "LiveAnalysisEngine":
        """Rebuild a live engine from a checkpoint document (aggregates,
        partials, scan, reports, and admission state all roll back to
        the same instant; the tailer cursors under ``"tailers"`` are the
        daemon's to restore)."""
        engine = cls.__new__(cls)
        load_default_analyses()
        engine.bundle = bundle
        engine.analyzer = StreamingAnalyzer.from_snapshot(bundle, document)
        engine.analyzer.keep_records = True
        engine.metrics = engine.analyzer.metrics
        engine.enricher = engine._make_enricher(rules, min_interception_domains)
        engine.context = AnalysisContext(
            bundle=bundle, rules=engine.enricher.rules
        )
        engine.partials = create_partials(None, engine.context)
        engine._raw_names = frozenset(
            name for name in engine.partials if get_analysis(name).needs_raw
        )
        engine.scan = engine.enricher.new_scan()
        engine.ssl_report = IngestReport()
        engine.x509_report = IngestReport()
        engine.admission = admission or AdmissionController()
        extra = document.get(LIVETAIL_STATE_KEY)
        if extra is not None:
            engine.load_extra(extra)
        engine._rebind_tables()
        return engine


class LiveTailDaemon:
    """The `repro serve` poll loop: tailers → engine → checkpoints.

    All mutation happens under ``lock`` (the HTTP server's query threads
    take the same lock), and a checkpoint captures aggregates and tailer
    cursors in one atomic document — a SIGKILL at any instant rolls the
    whole daemon back to the last checkpoint on ``--resume``, and the
    tailers then re-consume exactly the bytes that came after it.
    """

    def __init__(
        self,
        directory: Path | str,
        bundle: TrustBundle,
        *,
        checkpoint_path: Path | str,
        checkpoint_interval: float = 30.0,
        poll_interval: float = 0.05,
        on_error: ErrorPolicy | str = ErrorPolicy.SKIP,
        fast_path: FastPath | str | bool = FastPath.AUTO,
        max_fuid_map: int | None = None,
        rules: AssociationRules | None = None,
        min_interception_domains: int = 5,
        admission: AdmissionController | None = None,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.checkpoint_path = Path(checkpoint_path)
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        # Exactly one daemon may own a checkpoint file: two `repro
        # serve` instances alternating checkpoints would each roll the
        # other's state back. Advisory, non-blocking, dies with us.
        self._checkpoint_lock = FileLock(
            self.checkpoint_path.with_suffix(self.checkpoint_path.suffix + ".lock")
        )
        try:
            self._checkpoint_lock.acquire(exclusive=True, timeout=0, op="serve")
        except LockTimeout as exc:
            raise RuntimeError(
                f"refusing to serve: another daemon owns "
                f"{self.checkpoint_path} ({exc})"
            ) from None
        # A killed daemon's half-written checkpoint temps. The prefix
        # confines the sweep to this checkpoint's own temp files — the
        # live log directory may share this path, and its writers use
        # .tmp siblings of their own.
        sweep_orphans(
            self.checkpoint_path.parent, prefix=self.checkpoint_path.name
        )
        self.checkpoint_interval = checkpoint_interval
        self.poll_interval = poll_interval
        self.lock = threading.RLock()
        self.stop_event = threading.Event()
        self.polls = 0
        self.checkpoints_written = 0
        self.resumed = False
        document = None
        if resume:
            try:
                document, used_prev = load_checkpoint_json(self.checkpoint_path)
            except (OSError, ValueError):
                document = None  # no usable checkpoint: fresh start
                used_prev = False
        if document is not None:
            self.engine = LiveAnalysisEngine.from_checkpoint_doc(
                bundle, document, rules=rules,
                min_interception_domains=min_interception_domains,
                admission=admission,
            )
            if used_prev:
                self.engine.metrics.inc("streaming.checkpoint_fallbacks")
            self.resumed = True
        else:
            self.engine = LiveAnalysisEngine(
                bundle, rules=rules, max_fuid_map=max_fuid_map,
                fast_path=fast_path,
                min_interception_domains=min_interception_domains,
                admission=admission,
            )
        self.ssl_tailer = LogTailer(
            self.directory, "ssl", report=self.engine.ssl_report,
            on_error=on_error, fast_path=fast_path,
        )
        self.x509_tailer = LogTailer(
            self.directory, "x509", report=self.engine.x509_report,
            on_error=on_error, fast_path=fast_path,
        )
        if document is not None:
            tailers = document[LIVETAIL_STATE_KEY]["tailers"]
            self.ssl_tailer.load_state(tailers["ssl"])
            self.x509_tailer.load_state(tailers["x509"])
        self.started = time.monotonic()
        self._last_checkpoint = time.monotonic()

    # --------------------------------------------------------------------- ops

    def poll_once(self) -> int:
        """One full sweep of both streams. The ssl stream is snapshotted
        *before* x509: any x509 row an already-captured ssl row
        references was durable before that ssl row was written, so the
        later x509 read always covers it."""
        with self.lock:
            ssl_records = self.ssl_tailer.poll()
            x509_records = self.x509_tailer.poll()
            self.engine.feed(ssl_records, x509_records)
            self.polls += 1
            moved = len(ssl_records) + len(x509_records)
            if moved:
                self.engine.metrics.inc("livetail.records", moved)
        return moved

    def checkpoint(self) -> Path:
        with self.lock, tracing.span("livetail.checkpoint"):
            self.engine.metrics.set_gauge("livetail.polls", self.polls)
            path = self.engine.checkpoint(
                self.checkpoint_path,
                {
                    "ssl": self.ssl_tailer.state_dict(),
                    "x509": self.x509_tailer.state_dict(),
                },
            )
            self.checkpoints_written += 1
            self._last_checkpoint = time.monotonic()
        return path

    def run(self) -> None:
        """Poll until stopped; on stop, drain what is on disk and write
        the final checkpoint (the graceful-shutdown contract)."""
        while not self.stop_event.is_set():
            self.poll_once()
            if time.monotonic() - self._last_checkpoint >= self.checkpoint_interval:
                self.checkpoint()
            self.stop_event.wait(self.poll_interval)
        self.poll_once()
        self.checkpoint()
        self.close()

    def stop(self) -> None:
        self.stop_event.set()

    def close(self) -> None:
        with self.lock:
            self.ssl_tailer.close()
            self.x509_tailer.close()
        self._checkpoint_lock.release()

    # ----------------------------------------------------------------- queries

    def health(self) -> dict:
        with self.lock:
            admission = self.engine.admission
            return {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self.started, 3),
                "polls": self.polls,
                "rows": {
                    "ssl": self.engine.ssl_report.rows_ok,
                    "x509": self.engine.x509_report.rows_ok,
                },
                "connections_seen": self.engine.analyzer.connections_seen,
                "rotations": {
                    "ssl": self.ssl_tailer.rotations_seen,
                    "x509": self.x509_tailer.rotations_seen,
                },
                "truncations": {
                    "ssl": self.ssl_tailer.truncations_seen,
                    "x509": self.x509_tailer.truncations_seen,
                },
                "sampling": admission.sampling,
                "sampled_tables": sorted(admission.sampled_tables),
                "checkpoints_written": self.checkpoints_written,
                "checkpoint_path": str(self.checkpoint_path),
                "resumed": self.resumed,
            }

    def ingest_summary(self) -> dict:
        with self.lock:
            return {
                "ssl": self.engine.ssl_report.to_dict(),
                "x509": self.engine.x509_report.to_dict(),
            }
