"""Enrichment: direction, public/private, associations, interception.

Implements §3.2's methodology on top of the joined dataset:

- *inbound/outbound* from the responder address vs. the campus prefixes;
- *public vs private CA* from the trust-store DN bundle;
- *server association* categories for inbound traffic (Table 3);
- the *interception filter*: server leaves whose issuer is in no trust
  store are checked against CT; issuers that contradict the CT-logged
  issuer for the domain are flagged and all their certificates excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.core.dataset import CertProfile, ConnView, MtlsDataset
from repro.netsim.network import AddressSpace
from repro.text.domains import extract_domain
from repro.trust import TrustBundle
from repro.x509.facts import CertFactCache, CertFacts
from repro.zeek import X509Record


class CtLookup(Protocol):
    """What the interception filter needs from a CT log."""

    def knows_domain(self, domain: str) -> bool: ...

    def issuers_for(self, domain: str) -> list[str]: ...


@dataclass(frozen=True)
class AssociationRules:
    """How inbound SNIs map onto server-association categories.

    Defaults match the simulated campus; a deployment would fill these
    with its own domains (the paper's authors did the equivalent
    manually for their university).
    """

    campus_sld: str = "university.edu"
    health_marker: str = "health"
    vpn_marker: str = "vpn"
    local_org_slds: frozenset[str] = frozenset({"localorg.org", "localclinic.org"})
    globus_sni: str = "FXP DCAU Cert"
    globus_issuer_org: str = "Globus Online"

    def classify(self, conn: ConnView) -> str:
        sni = conn.sni
        if sni == self.globus_sni:
            return "Globus"
        if not sni:
            issuer_org = conn.server_leaf.issuer_org if conn.server_leaf else None
            if issuer_org == self.globus_issuer_org:
                return "Globus"
            return "Unknown"
        parts = extract_domain(sni)
        if parts.registrable == self.campus_sld:
            subdomain = parts.subdomain
            if self.health_marker in subdomain.split("."):
                return "University Health"
            if self.vpn_marker in subdomain.split("."):
                return "University VPN"
            return "University Server"
        if parts.registrable in self.local_org_slds:
            return "Local Organization"
        if parts.registrable:
            return "Third Party Service"
        return "Unknown"


@dataclass
class EnrichedConn:
    """A connection with its §3.2 labels."""

    view: ConnView
    direction: str  # 'inbound' or 'outbound'
    server_public: bool | None  # None when no server cert was observed
    client_public: bool | None
    association: str | None  # inbound only

    @property
    def is_mutual(self) -> bool:
        return self.view.is_mutual


@dataclass
class InterceptionReport:
    """Outcome of the interception filter (§3.2)."""

    flagged_issuers: set[str]
    excluded_fingerprints: set[str]
    total_certificates: int

    @property
    def excluded_fraction(self) -> float:
        if not self.total_certificates:
            return 0.0
        return len(self.excluded_fingerprints) / self.total_certificates


@dataclass
class EnrichedDataset:
    """The fully labeled dataset all downstream analyses consume."""

    dataset: MtlsDataset
    connections: list[EnrichedConn]
    profiles: dict[str, CertProfile]
    bundle: TrustBundle
    interception: InterceptionReport
    rules: AssociationRules

    @property
    def mutual(self) -> list[EnrichedConn]:
        return [c for c in self.connections if c.is_mutual]

    def is_public_record(self, record: X509Record) -> bool:
        return _is_public(record, self.bundle)

    def mutual_profiles(self) -> dict[str, CertProfile]:
        return {fp: p for fp, p in self.profiles.items() if p.used_in_mutual}


def _is_public(record: X509Record, bundle: TrustBundle) -> bool:
    """The paper's public-CA predicate at log level: the issuer DN or
    issuer organization appears in at least one major trust store."""
    if bundle.knows_issuer_dn(record.issuer):
        return True
    return bundle.knows_organization(record.issuer_org)


def derive_cert_facts(record: X509Record, bundle: TrustBundle) -> CertFacts:
    """All per-certificate derivations the pipeline consults repeatedly,
    computed once: the reference functions are called verbatim, so cached
    answers are identical to uncached ones by construction."""
    # Lazy import: repro.core.issuers imports this module for the
    # enriched-dataset types, so the dummy-organization table cannot be
    # imported at module level.
    from repro.core.dummy import _is_dummy_org

    issuer_org = record.issuer_org
    return CertFacts(
        fingerprint=record.fingerprint,
        is_public=_is_public(record, bundle),
        issuer_org=issuer_org,
        issuer_cn=record.issuer_cn,
        subject_cn=record.subject_cn,
        subject_org=record.subject_org,
        dummy_issuer=_is_dummy_org(issuer_org),
        validity_days=record.validity_days,
        inverted_validity=record.has_inverted_validity,
        san_dns=record.san_dns,
    )


def new_fact_cache(
    bundle: TrustBundle, max_entries: int | None = None
) -> CertFactCache:
    """A fact cache bound to one trust bundle (caches are never shared
    across bundles — the bundle is part of every derived answer)."""
    def derive(record: X509Record) -> CertFacts:
        return derive_cert_facts(record, bundle)

    if max_entries is None:
        return CertFactCache(derive)
    return CertFactCache(derive, max_entries=max_entries)


class InterceptionScan:
    """Mergeable state behind the §3.2 interception filter.

    One scan per shard: :meth:`observe` folds in a raw connection view,
    :meth:`merge` combines shards, :meth:`finalize` applies the global
    distinct-domain threshold. The threshold must only run on the fully
    merged scan — a per-shard cut would miss issuers whose contradicting
    domains are spread across months.
    """

    def __init__(
        self,
        bundle: TrustBundle,
        ct_log: CtLookup | None,
        fact_cache: CertFactCache | None = None,
    ) -> None:
        self.bundle = bundle
        self.ct_log = ct_log
        #: Optional fact cache (usually the owning Enricher's): trades a
        #: per-connection public-CA derivation for a per-certificate one.
        self.fact_cache = fact_cache
        #: issuer DN → distinct SNI domains contradicting CT
        self.mismatched_domains: dict[str, set[str]] = {}
        #: issuer DN → leaf fingerprints presented under it (either side)
        self.issuer_fingerprints: dict[str, set[str]] = {}
        #: all distinct leaf fingerprints observed
        self.fingerprints: set[str] = set()

    def __getstate__(self) -> dict:
        # Scan outcomes ride pickled manifest spills; the cache is
        # process-local acceleration state, never part of the result.
        state = dict(self.__dict__)
        state["fact_cache"] = None
        return state

    def _leaf_public(self, leaf: X509Record) -> bool:
        if self.fact_cache is not None:
            return self.fact_cache.get(leaf.fingerprint, leaf).is_public
        return _is_public(leaf, self.bundle)

    def observe(self, conn: ConnView) -> None:
        for leaf in (conn.server_leaf, conn.client_leaf):
            if leaf is None:
                continue
            self.fingerprints.add(leaf.fingerprint)
            self.issuer_fingerprints.setdefault(leaf.issuer, set()).add(
                leaf.fingerprint
            )
        leaf = conn.server_leaf
        if leaf is None or not conn.sni or self.ct_log is None:
            return
        # Step 1: issuer not found in major trust stores.
        if self._leaf_public(leaf):
            return
        # Step 2: CT knows the domain under a different issuer.
        domain = conn.sni.lower()
        if not self.ct_log.knows_domain(domain):
            return
        if leaf.issuer not in self.ct_log.issuers_for(domain):
            self.mismatched_domains.setdefault(leaf.issuer, set()).add(domain)

    def merge(self, other: "InterceptionScan") -> None:
        for issuer, domains in other.mismatched_domains.items():
            self.mismatched_domains.setdefault(issuer, set()).update(domains)
        for issuer, fps in other.issuer_fingerprints.items():
            self.issuer_fingerprints.setdefault(issuer, set()).update(fps)
        self.fingerprints |= other.fingerprints

    def finalize(self, min_interception_domains: int) -> InterceptionReport:
        # Step 3 (the paper's manual investigation): keep only issuers
        # contradicting CT across enough distinct domains.
        flagged = {
            issuer
            for issuer, domains in self.mismatched_domains.items()
            if len(domains) >= min_interception_domains
        }
        excluded: set[str] = set()
        for issuer in flagged:
            excluded |= self.issuer_fingerprints.get(issuer, set())
        return InterceptionReport(
            flagged_issuers=flagged,
            excluded_fingerprints=excluded,
            total_certificates=len(self.fingerprints),
        )


def render_interception_summary(report: InterceptionReport) -> "Table":
    from repro.core.report import Table

    table = Table(
        "§3.2: TLS interception filter",
        ["Flagged issuers", "Excluded certificates", "Excluded fraction"],
    )
    table.add_row(
        len(report.flagged_issuers),
        len(report.excluded_fingerprints),
        f"{100 * report.excluded_fraction:.2f}% (paper: 8.4%)",
    )
    return table


class Enricher:
    """Runs the §3.2 pipeline: interception filter + labels."""

    def __init__(
        self,
        bundle: TrustBundle,
        ct_log: CtLookup | None = None,
        is_internal: Callable[[str], bool] | None = None,
        rules: AssociationRules | None = None,
        filter_interception: bool = True,
        min_interception_domains: int = 5,
        fact_cache: CertFactCache | bool | None = True,
    ) -> None:
        self.bundle = bundle
        self.ct_log = ct_log
        self.is_internal = is_internal or AddressSpace().is_internal
        self.rules = rules or AssociationRules()
        self.filter_interception = filter_interception
        #: Stand-in for the paper's manual investigation step: an issuer
        #: is only deemed an interception CA when it contradicts CT for
        #: at least this many distinct domains. A middlebox impersonates
        #: many domains; a misconfigured endpoint only its own few.
        self.min_interception_domains = min_interception_domains
        #: Per-certificate fact cache: ``True`` (default) builds one
        #: bound to this bundle, ``False``/``None`` disables it (the
        #: reference per-connection path), or pass a cache to share one
        #: across enrichers. Cached and uncached labels are identical —
        #: pinned by tests/differential/test_certfact_cache.py.
        if fact_cache is True:
            self.fact_cache: CertFactCache | None = new_fact_cache(bundle)
        elif fact_cache is False or fact_cache is None:
            self.fact_cache = None
        else:
            self.fact_cache = fact_cache

    def enrich(self, dataset: MtlsDataset) -> EnrichedDataset:
        report = self._interception_report(dataset)
        return self.enrich_with_report(dataset, report)

    def enrich_with_report(
        self, dataset: MtlsDataset, report: InterceptionReport
    ) -> EnrichedDataset:
        """Label a dataset under a precomputed (e.g. globally merged)
        interception report — the shard-worker entry point."""
        if self.filter_interception and report.excluded_fingerprints:
            dataset = dataset.without_fingerprints(report.excluded_fingerprints)
        connections = [self._label(conn) for conn in dataset.connections]
        return EnrichedDataset(
            dataset=dataset,
            connections=connections,
            profiles=dataset.certificate_profiles(),
            bundle=self.bundle,
            interception=report,
            rules=self.rules,
        )

    def _is_public(self, record: X509Record) -> bool:
        if self.fact_cache is not None:
            return self.fact_cache.get(record.fingerprint, record).is_public
        return _is_public(record, self.bundle)

    def label(self, conn: ConnView) -> EnrichedConn:
        """Label one raw connection view — the incremental entry point
        (same path batch enrichment takes per connection)."""
        return self._label(conn)

    def _label(self, conn: ConnView) -> EnrichedConn:
        direction = "inbound" if self.is_internal(conn.ssl.id_resp_h) else "outbound"
        server_public = (
            None if conn.server_leaf is None
            else self._is_public(conn.server_leaf)
        )
        client_public = (
            None if conn.client_leaf is None
            else self._is_public(conn.client_leaf)
        )
        association = self.rules.classify(conn) if direction == "inbound" else None
        return EnrichedConn(
            view=conn,
            direction=direction,
            server_public=server_public,
            client_public=client_public,
            association=association,
        )

    def _interception_report(self, dataset: MtlsDataset) -> InterceptionReport:
        """§3.2: flag issuers that present certificates contradicting the
        CT-logged issuer of the requested domain."""
        scan = self.new_scan()
        for conn in dataset.connections:
            scan.observe(conn)
        return scan.finalize(self.min_interception_domains)

    def new_scan(self) -> InterceptionScan:
        """A fresh per-shard interception scan with this enricher's
        trust bundle, CT log (no CT when the filter is disabled), and
        fact cache — scan and labeling share one cache, so a
        certificate's facts are derived once across both passes."""
        ct_log = self.ct_log if self.filter_interception else None
        return InterceptionScan(self.bundle, ct_log, fact_cache=self.fact_cache)
