"""Plain-text table rendering for analysis outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A monospace table with a title, headers, and stringable rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def percentage(numerator: float, denominator: float, digits: int = 2) -> str:
    """'12.34' style percentage cell; '-' when the denominator is zero."""
    if not denominator:
        return "-"
    return f"{100.0 * numerator / denominator:.{digits}f}"


def fmt_count(value: int) -> str:
    return f"{value:,}"


def render_ingest_health(report, *, dangling_fuid_refs: int | None = None) -> Table:
    """Ingest-health section: what fraction of the input survived.

    ``report`` is an :class:`repro.zeek.ingest.IngestReport` (duck-typed
    to keep this module free of zeek imports)."""
    table = Table("Ingest health", ["Metric", "Value"])
    table.add_row("Files read", fmt_count(report.files_read))
    table.add_row("Rows ingested", fmt_count(report.rows_ok))
    table.add_row("Rows dropped", fmt_count(report.rows_dropped))
    table.add_row("Drop rate (%)", f"{100.0 * report.drop_rate:.3f}")
    table.add_row("Header recoveries", fmt_count(report.header_recoveries))
    table.add_row("Truncated final lines", fmt_count(report.truncated_final_lines))
    table.add_row("Files missing #close", fmt_count(report.files_missing_close))
    table.add_row("Quarantined lines", fmt_count(len(report.quarantined)))
    if dangling_fuid_refs is not None:
        table.add_row("Dangling fuid references", fmt_count(dangling_fuid_refs))
    for category in sorted(report.dropped_by_category):
        table.add_row(
            f"  dropped: {category}",
            fmt_count(report.dropped_by_category[category]),
        )
    if report.issues_truncated:
        table.add_note("issue list capped; counters remain exact")
    if report.clean:
        table.add_note("clean ingest: every input row was consumed")
    return table


def render_run_health(health) -> Table:
    """Run-health section: what the supervision layer saw and lost.

    ``health`` is a :class:`repro.core.supervisor.RunHealth` (duck-typed
    to keep this module free of supervisor imports)."""
    table = Table("Run health", ["Metric", "Value"])
    table.add_row("Months total", fmt_count(health.total_shards))
    table.add_row("Months completed", fmt_count(len(health.completed_months)))
    table.add_row(
        "Months resumed from manifest", fmt_count(len(health.resumed_months))
    )
    table.add_row(
        "Shard phases reused from manifest",
        fmt_count(
            sum(len(s.resumed_phases) for s in health.shards.values())
        ),
    )
    quarantined = health.quarantined_months
    table.add_row(
        "Months quarantined",
        ", ".join(quarantined) if quarantined else "0",
    )
    table.add_row("Retried attempts", fmt_count(health.total_retries))
    table.add_row("Coverage (%)", f"{100.0 * health.coverage:.2f}")
    table.add_row("Worker processes", fmt_count(health.jobs))
    table.add_row("Degrade policy", health.degrade.value)
    for key in sorted(health.shards):
        shard = health.shards[key]
        if not shard.failures:
            continue
        table.add_row(
            f"  {key} ({shard.state.value})",
            f"{shard.attempts} attempts; last failure: {shard.failures[-1]}",
        )
    if health.degraded:
        table.add_note(
            "degraded coverage: quarantined months are absent from every table"
        )
    elif health.clean:
        table.add_note("clean run: every shard completed on its first attempt")
    return table


def render_fsck(result) -> Table:
    """Store-integrity section for ``repro fsck``.

    ``result`` is a :class:`repro.store.fsck.FsckResult` (duck-typed to
    keep this module free of store imports)."""
    table = Table("Store integrity", ["File", "Status", "Detail"])
    for finding in result.findings:
        table.add_row(finding.file, finding.status, finding.detail or "-")
    counts = result.counts()
    summary = ", ".join(
        f"{counts[status]} {status}"
        for status in ("ok", "repaired", "damaged", "missing", "unverifiable")
        if counts.get(status)
    )
    table.add_note(f"{len(result.findings)} file(s): {summary or 'none'}")
    if result.quarantined:
        table.add_note(
            "damaged originals moved to quarantine/: "
            + ", ".join(result.quarantined)
        )
    if result.unrepaired:
        table.add_note(
            "unrepairable (source missing, changed, or rebuild mismatch): "
            + ", ".join(result.unrepaired)
        )
    if result.unverifiable:
        table.add_note(
            "legacy v1 store cannot detect corruption; repack to upgrade"
        )
    if result.ok and not result.unverifiable:
        table.add_note("store verified: every file matches its checksums")
    return table


def render_run_metrics(registry) -> Table:
    """Run-metrics section: counters/gauges/histograms/timers from a
    :class:`repro.core.metrics.MetricsRegistry` (duck-typed — only its
    ``render()`` is used, keeping this module dependency-free)."""
    return registry.render()
