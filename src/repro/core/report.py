"""Plain-text table rendering for analysis outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A monospace table with a title, headers, and stringable rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def percentage(numerator: float, denominator: float, digits: int = 2) -> str:
    """'12.34' style percentage cell; '-' when the denominator is zero."""
    if not denominator:
        return "-"
    return f"{100.0 * numerator / denominator:.{digits}f}"


def fmt_count(value: int) -> str:
    return f"{value:,}"
