"""Certificate validity analyses: Figures 3-5, Tables 11-12 (§5.3)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core import protocol
from repro.core.enrich import EnrichedConn, EnrichedDataset
from repro.core.issuers import categorize_issuer
from repro.core.report import Table
from repro.text.domains import extract_domain
from repro.zeek import X509Record

# ---------------------------------------------------------------------------
# Figure 3 / Tables 11-12: incorrect (inverted) dates
# ---------------------------------------------------------------------------


@dataclass
class IncorrectDateRow:
    """One detected inverted-validity cohort (grouped by issuer + side)."""

    issuer_org: str
    side: str  # 'server' / 'client'
    slds: set[str] = field(default_factory=set)
    not_before_years: set[int] = field(default_factory=set)
    not_after_years: set[int] = field(default_factory=set)
    fingerprints: set[str] = field(default_factory=set)
    clients: set[str] = field(default_factory=set)
    first_seen: object = None
    last_seen: object = None

    @property
    def activity_days(self) -> float:
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        return (self.last_seen - self.first_seen).total_seconds() / 86400.0

    def merge(self, other: "IncorrectDateRow") -> None:
        self.slds |= other.slds
        self.not_before_years |= other.not_before_years
        self.not_after_years |= other.not_after_years
        self.fingerprints |= other.fingerprints
        self.clients |= other.clients
        if other.first_seen is not None and (
            self.first_seen is None or other.first_seen < self.first_seen
        ):
            self.first_seen = other.first_seen
        if other.last_seen is not None and (
            self.last_seen is None or other.last_seen > self.last_seen
        ):
            self.last_seen = other.last_seen


class Figure3Partial(protocol.AnalysisPartial):
    """Inverted-validity certificates in mutual TLS (Figure 3)."""

    def __init__(self, context: protocol.AnalysisContext) -> None:
        self.rows: dict[tuple[str, str], IncorrectDateRow] = {}

    def update(self, conn: EnrichedConn) -> None:
        if not conn.is_mutual:
            return
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else "(missing SNI)"
        for side, leaf in (("server", conn.view.server_leaf),
                           ("client", conn.view.client_leaf)):
            if leaf is None:
                continue
            if leaf.not_valid_before < leaf.not_valid_after:
                continue
            key = (leaf.issuer_org or "(missing)", side)
            row = self.rows.get(key)
            if row is None:
                row = IncorrectDateRow(issuer_org=key[0], side=side)
                self.rows[key] = row
            row.slds.add(sld)
            row.not_before_years.add(leaf.not_valid_before.year)
            row.not_after_years.add(leaf.not_valid_after.year)
            row.fingerprints.add(leaf.fingerprint)
            row.clients.add(conn.view.ssl.id_orig_h)
            ts = conn.view.ts
            if row.first_seen is None or ts < row.first_seen:
                row.first_seen = ts
            if row.last_seen is None or ts > row.last_seen:
                row.last_seen = ts

    def merge(self, other: "Figure3Partial") -> None:
        for key, theirs in other.rows.items():
            mine = self.rows.get(key)
            if mine is None:
                mine = IncorrectDateRow(issuer_org=theirs.issuer_org, side=theirs.side)
                self.rows[key] = mine
            mine.merge(theirs)

    def result(self) -> list[IncorrectDateRow]:
        return sorted(
            self.rows.values(),
            key=lambda r: (-len(r.clients), r.issuer_org, r.side),
        )

    def finalize(self) -> Table:
        return render_incorrect_dates(self.result())


protocol.register(protocol.Analysis(
    name="figure3",
    title="Tables 11-12 / Figure 3: certificates with inverted validity dates",
    factory=Figure3Partial,
    legacy="repro.core.validity.incorrect_dates",
))


def incorrect_dates(enriched: EnrichedDataset) -> list[IncorrectDateRow]:
    """Certificates whose notBefore does not precede notAfter, seen in
    established mutual-TLS connections (Figure 3, Tables 11-12).

    Certificates whose two timestamps are identical are included, as in
    the paper (the ayoba.me row)."""
    partial = Figure3Partial(protocol.AnalysisContext.from_enriched(enriched))
    return protocol.feed(partial, enriched).result()


def incorrect_dates_both_endpoints(enriched: EnrichedDataset) -> list[IncorrectDateRow]:
    """Table 12: connections where BOTH endpoints present inverted-date
    certificates (idrive.com and the SDS missing-SNI cohort)."""
    rows: dict[str, IncorrectDateRow] = {}
    for conn in enriched.mutual:
        server_leaf, client_leaf = conn.view.server_leaf, conn.view.client_leaf
        if server_leaf is None or client_leaf is None:
            continue
        if server_leaf.not_valid_before < server_leaf.not_valid_after:
            continue
        if client_leaf.not_valid_before < client_leaf.not_valid_after:
            continue
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else "(missing SNI)"
        key = f"{sld}|{server_leaf.issuer_org}|{client_leaf.issuer_org}"
        row = rows.get(key)
        if row is None:
            row = IncorrectDateRow(
                issuer_org=server_leaf.issuer_org or "(missing)", side="both"
            )
            rows[key] = row
        row.slds.add(sld)
        row.fingerprints.add(server_leaf.fingerprint)
        row.fingerprints.add(client_leaf.fingerprint)
        row.clients.add(conn.view.ssl.id_orig_h)
        ts = conn.view.ts
        if row.first_seen is None or ts < row.first_seen:
            row.first_seen = ts
        if row.last_seen is None or ts > row.last_seen:
            row.last_seen = ts
    return sorted(rows.values(), key=lambda r: -len(r.clients))


def render_incorrect_dates(rows: list[IncorrectDateRow]) -> Table:
    table = Table(
        "Tables 11-12 / Figure 3: certificates with inverted validity dates",
        ["Issuer org", "Side", "SLDs", "notBefore years", "notAfter years",
         "#certs", "#clients", "Activity (days)"],
    )
    for row in rows:
        table.add_row(
            row.issuer_org, row.side,
            ", ".join(sorted(row.slds)[:3]),
            ", ".join(str(y) for y in sorted(row.not_before_years)[:3]),
            ", ".join(str(y) for y in sorted(row.not_after_years)[:3]),
            len(row.fingerprints), len(row.clients), f"{row.activity_days:.0f}",
        )
    return table


# ---------------------------------------------------------------------------
# Figure 4: validity periods
# ---------------------------------------------------------------------------


@dataclass
class ValidityPeriodStats:
    """Validity-period distribution of client certificates (Figure 4)."""

    #: issuer category → list of validity periods in days
    periods_by_category: dict[str, list[float]]
    extreme_certificates: int  # 10k-40k days
    extreme_public: int
    extreme_private: int
    longest_days: float
    longest_issuer_org: str | None
    longest_slds: set[str]

    def category_median(self, category: str) -> float:
        values = sorted(self.periods_by_category.get(category, ()))
        if not values:
            return 0.0
        return values[len(values) // 2]


class Figure4Partial(protocol.AnalysisPartial):
    """Validity periods of client certificates in mutual TLS (Figure 4).

    Keeps one record per client-certificate fingerprint; all statistics
    (including the longest-validity election, tie-broken by fingerprint)
    are computed at finalize time so shard splits cannot reorder them.
    """

    def __init__(
        self, context: protocol.AnalysisContext, direction: str | None = None
    ) -> None:
        self._bundle = context.bundle
        self.direction = direction
        self.records: dict[str, X509Record] = {}
        self.slds: dict[str, set[str]] = {}

    def update(self, conn: EnrichedConn) -> None:
        if not conn.is_mutual:
            return
        if self.direction is not None and conn.direction != self.direction:
            return
        leaf = conn.view.client_leaf
        if leaf is None or leaf.has_inverted_validity:
            return
        self.records.setdefault(leaf.fingerprint, leaf)
        slds = self.slds.setdefault(leaf.fingerprint, set())
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else ""
        if sld:
            slds.add(sld)

    def merge(self, other: "Figure4Partial") -> None:
        for fingerprint, record in other.records.items():
            self.records.setdefault(fingerprint, record)
        for fingerprint, slds in other.slds.items():
            mine = self.slds.setdefault(fingerprint, set())
            mine |= slds

    def result(self) -> ValidityPeriodStats:
        periods: dict[str, list[float]] = {}
        extreme = extreme_public = extreme_private = 0
        longest = 0.0
        longest_org: str | None = None
        longest_fp: str | None = None
        for fingerprint in sorted(self.records):
            leaf = self.records[fingerprint]
            category = categorize_issuer(leaf, self._bundle)
            periods.setdefault(category, []).append(leaf.validity_days)
            if 10_000 <= leaf.validity_days <= 40_000:
                extreme += 1
                if category == "Public":
                    extreme_public += 1
                else:
                    extreme_private += 1
            if leaf.validity_days > longest:
                longest = leaf.validity_days
                longest_org = leaf.issuer_org
                longest_fp = fingerprint
        return ValidityPeriodStats(
            periods_by_category=periods,
            extreme_certificates=extreme,
            extreme_public=extreme_public,
            extreme_private=extreme_private,
            longest_days=longest,
            longest_issuer_org=longest_org,
            longest_slds=self.slds.get(longest_fp, set()) if longest_fp else set(),
        )

    def finalize(self) -> Table:
        return render_validity_periods(self.result())


protocol.register(protocol.Analysis(
    name="figure4",
    title="Figure 4: client-certificate validity periods by issuer category",
    factory=Figure4Partial,
    legacy="repro.core.validity.validity_periods",
))


def validity_periods(
    enriched: EnrichedDataset, direction: str | None = None
) -> ValidityPeriodStats:
    """Figure 4: validity periods of client certificates used in mutual
    TLS, excluding inverted-date certificates, by issuer category."""
    partial = Figure4Partial(
        protocol.AnalysisContext.from_enriched(enriched), direction
    )
    return protocol.feed(partial, enriched).result()


def render_validity_periods(stats: ValidityPeriodStats) -> Table:
    table = Table(
        "Figure 4: client-certificate validity periods by issuer category",
        ["Issuer category", "#certs", "Median days", "Max days"],
    )
    for category, values in sorted(
        stats.periods_by_category.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        table.add_row(
            category, len(values),
            f"{sorted(values)[len(values) // 2]:.0f}",
            f"{max(values):.0f}",
        )
    table.add_note(
        f"certificates with 10k-40k-day validity: {stats.extreme_certificates} "
        f"({stats.extreme_public} public / {stats.extreme_private} private)"
    )
    table.add_note(
        f"longest validity: {stats.longest_days:.0f} days, issuer "
        f"{stats.longest_issuer_org!r}, SLDs {sorted(stats.longest_slds)}"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 5: expired certificates still in use
# ---------------------------------------------------------------------------


@dataclass
class ExpiredUsage:
    """One expired client certificate observed in established connections."""

    fingerprint: str
    issuer_org: str | None
    public: bool
    days_expired_at_first_use: float
    activity_days: float
    direction: str
    associations: set[str] = field(default_factory=set)
    slds: set[str] = field(default_factory=set)


@dataclass
class ExpiredReport:
    inbound: list[ExpiredUsage]
    outbound: list[ExpiredUsage]

    def inbound_association_shares(self) -> dict[str, float]:
        counter: Counter = Counter()
        for usage in self.inbound:
            for association in usage.associations or {"Unknown"}:
                counter[association] += 1
        total = sum(counter.values())
        return {k: v / total for k, v in counter.items()} if total else {}

    def outbound_cluster(
        self, min_days: float = 700.0
    ) -> list[ExpiredUsage]:
        """The Figure 5b cluster: public-CA certs long expired at first use."""
        return [
            u for u in self.outbound
            if u.public and u.days_expired_at_first_use >= min_days
        ]


@dataclass
class _ExpiredState:
    """Per-fingerprint partial state behind one ExpiredUsage."""

    issuer_org: str | None
    public: bool
    #: (ts, uid) of the earliest expired use — elects direction and
    #: days_expired_at_first_use deterministically under any shard split.
    witness: tuple
    direction: str
    days_expired: float
    associations: set[str] = field(default_factory=set)
    slds: set[str] = field(default_factory=set)


class Figure5Partial(protocol.AnalysisPartial):
    """Expired client certificates in established mutual TLS (Figure 5)."""

    def __init__(self, context: protocol.AnalysisContext) -> None:
        self._bundle = context.bundle
        self.expired: dict[str, _ExpiredState] = {}
        #: fingerprint → [first_seen, last_seen] over ALL connections the
        #: certificate appears in (either side) — the profile activity span.
        self.activity: dict[str, list] = {}

    def update(self, conn: EnrichedConn) -> None:
        ts = conn.view.ts
        for leaf in (conn.view.server_leaf, conn.view.client_leaf):
            if leaf is None:
                continue
            span = self.activity.get(leaf.fingerprint)
            if span is None:
                self.activity[leaf.fingerprint] = [ts, ts]
            else:
                if ts < span[0]:
                    span[0] = ts
                if ts > span[1]:
                    span[1] = ts
        if not conn.is_mutual:
            return
        leaf = conn.view.client_leaf
        if leaf is None or leaf.has_inverted_validity:
            return
        if not leaf.expired_at(ts):
            return
        fp = leaf.fingerprint
        mark = (ts, conn.view.ssl.uid)
        state = self.expired.get(fp)
        if state is None:
            state = _ExpiredState(
                issuer_org=leaf.issuer_org,
                public=self._is_public(leaf),
                witness=mark,
                direction=conn.direction,
                days_expired=leaf.days_expired(ts),
            )
            self.expired[fp] = state
        elif mark < state.witness:
            state.witness = mark
            state.direction = conn.direction
            state.days_expired = leaf.days_expired(ts)
        if conn.direction == "inbound" and conn.association:
            state.associations.add(conn.association)
        sni = conn.view.sni
        if sni:
            sld = extract_domain(sni).registrable
            if sld:
                state.slds.add(sld)

    def _is_public(self, record: X509Record) -> bool:
        if self._bundle.knows_issuer_dn(record.issuer):
            return True
        return self._bundle.knows_organization(record.issuer_org)

    def merge(self, other: "Figure5Partial") -> None:
        for fingerprint, span in other.activity.items():
            mine = self.activity.get(fingerprint)
            if mine is None:
                self.activity[fingerprint] = list(span)
            else:
                if span[0] < mine[0]:
                    mine[0] = span[0]
                if span[1] > mine[1]:
                    mine[1] = span[1]
        for fp, theirs in other.expired.items():
            state = self.expired.get(fp)
            if state is None:
                state = _ExpiredState(
                    issuer_org=theirs.issuer_org, public=theirs.public,
                    witness=theirs.witness, direction=theirs.direction,
                    days_expired=theirs.days_expired,
                )
                self.expired[fp] = state
            elif theirs.witness < state.witness:
                state.witness = theirs.witness
                state.direction = theirs.direction
                state.days_expired = theirs.days_expired
            state.associations |= theirs.associations
            state.slds |= theirs.slds

    def result(self) -> ExpiredReport:
        usages = []
        for fp, state in sorted(
            self.expired.items(), key=lambda item: (item[1].witness, item[0])
        ):
            span = self.activity.get(fp)
            activity_days = (
                (span[1] - span[0]).total_seconds() / 86400.0 if span else 0.0
            )
            usages.append(
                ExpiredUsage(
                    fingerprint=fp,
                    issuer_org=state.issuer_org,
                    public=state.public,
                    days_expired_at_first_use=state.days_expired,
                    activity_days=activity_days,
                    direction=state.direction,
                    associations=state.associations,
                    slds=state.slds,
                )
            )
        return ExpiredReport(
            inbound=[u for u in usages if u.direction == "inbound"],
            outbound=[u for u in usages if u.direction == "outbound"],
        )

    def finalize(self) -> Table:
        return render_expired_report(self.result())


protocol.register(protocol.Analysis(
    name="figure5",
    title="Figure 5: expired client certificates in established mutual TLS",
    factory=Figure5Partial,
    legacy="repro.core.validity.expired_certificates",
))


def expired_certificates(enriched: EnrichedDataset) -> ExpiredReport:
    """Figure 5: client certificates presented in established connections
    after their notAfter, with duration-of-activity tracking."""
    partial = Figure5Partial(protocol.AnalysisContext.from_enriched(enriched))
    return protocol.feed(partial, enriched).result()


def render_expired_report(report: ExpiredReport) -> Table:
    table = Table(
        "Figure 5: expired client certificates in established mutual TLS",
        ["Direction", "#certs", "Public", "Private",
         "Median days expired", "Max days expired"],
    )
    for direction, usages in (("inbound", report.inbound), ("outbound", report.outbound)):
        if not usages:
            table.add_row(direction, 0, 0, 0, "-", "-")
            continue
        days = sorted(u.days_expired_at_first_use for u in usages)
        table.add_row(
            direction, len(usages),
            sum(1 for u in usages if u.public),
            sum(1 for u in usages if not u.public),
            f"{days[len(days) // 2]:.0f}", f"{days[-1]:.0f}",
        )
    shares = report.inbound_association_shares()
    if shares:
        ranked = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))
        table.add_note(
            "inbound associations: "
            + ", ".join(f"{k} {100 * v:.1f}%" for k, v in ranked[:4])
        )
    cluster = report.outbound_cluster()
    if cluster:
        apple = sum(1 for u in cluster if (u.issuer_org or "").startswith("Apple"))
        table.add_note(
            f"outbound long-expired public cluster: {len(cluster)} certs, "
            f"{apple} issued by Apple"
        )
    return table
