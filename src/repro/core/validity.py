"""Certificate validity analyses: Figures 3-5, Tables 11-12 (§5.3)."""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass, field

from repro.core.enrich import EnrichedDataset
from repro.core.issuers import categorize_issuer
from repro.core.report import Table
from repro.text.domains import extract_domain

# ---------------------------------------------------------------------------
# Figure 3 / Tables 11-12: incorrect (inverted) dates
# ---------------------------------------------------------------------------


@dataclass
class IncorrectDateRow:
    """One detected inverted-validity cohort (grouped by issuer + side)."""

    issuer_org: str
    side: str  # 'server' / 'client'
    slds: set[str] = field(default_factory=set)
    not_before_years: set[int] = field(default_factory=set)
    not_after_years: set[int] = field(default_factory=set)
    fingerprints: set[str] = field(default_factory=set)
    clients: set[str] = field(default_factory=set)
    first_seen: object = None
    last_seen: object = None

    @property
    def activity_days(self) -> float:
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        return (self.last_seen - self.first_seen).total_seconds() / 86400.0


def incorrect_dates(enriched: EnrichedDataset) -> list[IncorrectDateRow]:
    """Certificates whose notBefore does not precede notAfter, seen in
    established mutual-TLS connections (Figure 3, Tables 11-12).

    Certificates whose two timestamps are identical are included, as in
    the paper (the ayoba.me row)."""
    rows: dict[tuple[str, str], IncorrectDateRow] = {}
    for conn in enriched.mutual:
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else "(missing SNI)"
        for side, leaf in (("server", conn.view.server_leaf),
                           ("client", conn.view.client_leaf)):
            if leaf is None:
                continue
            if leaf.not_valid_before < leaf.not_valid_after:
                continue
            key = (leaf.issuer_org or "(missing)", side)
            row = rows.get(key)
            if row is None:
                row = IncorrectDateRow(issuer_org=key[0], side=side)
                rows[key] = row
            row.slds.add(sld)
            row.not_before_years.add(leaf.not_valid_before.year)
            row.not_after_years.add(leaf.not_valid_after.year)
            row.fingerprints.add(leaf.fingerprint)
            row.clients.add(conn.view.ssl.id_orig_h)
            ts = conn.view.ts
            if row.first_seen is None or ts < row.first_seen:
                row.first_seen = ts
            if row.last_seen is None or ts > row.last_seen:
                row.last_seen = ts
    return sorted(rows.values(), key=lambda r: -len(r.clients))


def incorrect_dates_both_endpoints(enriched: EnrichedDataset) -> list[IncorrectDateRow]:
    """Table 12: connections where BOTH endpoints present inverted-date
    certificates (idrive.com and the SDS missing-SNI cohort)."""
    rows: dict[str, IncorrectDateRow] = {}
    for conn in enriched.mutual:
        server_leaf, client_leaf = conn.view.server_leaf, conn.view.client_leaf
        if server_leaf is None or client_leaf is None:
            continue
        if server_leaf.not_valid_before < server_leaf.not_valid_after:
            continue
        if client_leaf.not_valid_before < client_leaf.not_valid_after:
            continue
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else "(missing SNI)"
        key = f"{sld}|{server_leaf.issuer_org}|{client_leaf.issuer_org}"
        row = rows.get(key)
        if row is None:
            row = IncorrectDateRow(
                issuer_org=server_leaf.issuer_org or "(missing)", side="both"
            )
            rows[key] = row
        row.slds.add(sld)
        row.fingerprints.add(server_leaf.fingerprint)
        row.fingerprints.add(client_leaf.fingerprint)
        row.clients.add(conn.view.ssl.id_orig_h)
        ts = conn.view.ts
        if row.first_seen is None or ts < row.first_seen:
            row.first_seen = ts
        if row.last_seen is None or ts > row.last_seen:
            row.last_seen = ts
    return sorted(rows.values(), key=lambda r: -len(r.clients))


def render_incorrect_dates(rows: list[IncorrectDateRow]) -> Table:
    table = Table(
        "Tables 11-12 / Figure 3: certificates with inverted validity dates",
        ["Issuer org", "Side", "SLDs", "notBefore years", "notAfter years",
         "#certs", "#clients", "Activity (days)"],
    )
    for row in rows:
        table.add_row(
            row.issuer_org, row.side,
            ", ".join(sorted(row.slds)[:3]),
            ", ".join(str(y) for y in sorted(row.not_before_years)[:3]),
            ", ".join(str(y) for y in sorted(row.not_after_years)[:3]),
            len(row.fingerprints), len(row.clients), f"{row.activity_days:.0f}",
        )
    return table


# ---------------------------------------------------------------------------
# Figure 4: validity periods
# ---------------------------------------------------------------------------


@dataclass
class ValidityPeriodStats:
    """Validity-period distribution of client certificates (Figure 4)."""

    #: issuer category → list of validity periods in days
    periods_by_category: dict[str, list[float]]
    extreme_certificates: int  # 10k-40k days
    extreme_public: int
    extreme_private: int
    longest_days: float
    longest_issuer_org: str | None
    longest_slds: set[str]

    def category_median(self, category: str) -> float:
        values = sorted(self.periods_by_category.get(category, ()))
        if not values:
            return 0.0
        return values[len(values) // 2]


def validity_periods(
    enriched: EnrichedDataset, direction: str | None = None
) -> ValidityPeriodStats:
    """Figure 4: validity periods of client certificates used in mutual
    TLS, excluding inverted-date certificates, by issuer category."""
    periods: dict[str, list[float]] = {}
    extreme = extreme_public = extreme_private = 0
    longest = 0.0
    longest_org: str | None = None
    longest_fp: str | None = None
    client_slds: dict[str, set[str]] = {}
    for conn in enriched.mutual:
        if direction is not None and conn.direction != direction:
            continue
        leaf = conn.view.client_leaf
        if leaf is None or leaf.has_inverted_validity:
            continue
        sni = conn.view.sni
        sld = extract_domain(sni).registrable if sni else ""
        client_slds.setdefault(leaf.fingerprint, set())
        if sld:
            client_slds[leaf.fingerprint].add(sld)
    seen: set[str] = set()
    for conn in enriched.mutual:
        if direction is not None and conn.direction != direction:
            continue
        leaf = conn.view.client_leaf
        if leaf is None or leaf.has_inverted_validity or leaf.fingerprint in seen:
            continue
        seen.add(leaf.fingerprint)
        category = categorize_issuer(leaf, enriched.bundle)
        periods.setdefault(category, []).append(leaf.validity_days)
        if 10_000 <= leaf.validity_days <= 40_000:
            extreme += 1
            if category == "Public":
                extreme_public += 1
            else:
                extreme_private += 1
        if leaf.validity_days > longest:
            longest = leaf.validity_days
            longest_org = leaf.issuer_org
            longest_fp = leaf.fingerprint
    return ValidityPeriodStats(
        periods_by_category=periods,
        extreme_certificates=extreme,
        extreme_public=extreme_public,
        extreme_private=extreme_private,
        longest_days=longest,
        longest_issuer_org=longest_org,
        longest_slds=client_slds.get(longest_fp, set()) if longest_fp else set(),
    )


def render_validity_periods(stats: ValidityPeriodStats) -> Table:
    table = Table(
        "Figure 4: client-certificate validity periods by issuer category",
        ["Issuer category", "#certs", "Median days", "Max days"],
    )
    for category, values in sorted(
        stats.periods_by_category.items(), key=lambda kv: -len(kv[1])
    ):
        table.add_row(
            category, len(values),
            f"{sorted(values)[len(values) // 2]:.0f}",
            f"{max(values):.0f}",
        )
    table.add_note(
        f"certificates with 10k-40k-day validity: {stats.extreme_certificates} "
        f"({stats.extreme_public} public / {stats.extreme_private} private)"
    )
    table.add_note(
        f"longest validity: {stats.longest_days:.0f} days, issuer "
        f"{stats.longest_issuer_org!r}, SLDs {sorted(stats.longest_slds)}"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 5: expired certificates still in use
# ---------------------------------------------------------------------------


@dataclass
class ExpiredUsage:
    """One expired client certificate observed in established connections."""

    fingerprint: str
    issuer_org: str | None
    public: bool
    days_expired_at_first_use: float
    activity_days: float
    direction: str
    associations: set[str] = field(default_factory=set)
    slds: set[str] = field(default_factory=set)


@dataclass
class ExpiredReport:
    inbound: list[ExpiredUsage]
    outbound: list[ExpiredUsage]

    def inbound_association_shares(self) -> dict[str, float]:
        counter: Counter = Counter()
        for usage in self.inbound:
            for association in usage.associations or {"Unknown"}:
                counter[association] += 1
        total = sum(counter.values())
        return {k: v / total for k, v in counter.items()} if total else {}

    def outbound_cluster(
        self, min_days: float = 700.0
    ) -> list[ExpiredUsage]:
        """The Figure 5b cluster: public-CA certs long expired at first use."""
        return [
            u for u in self.outbound
            if u.public and u.days_expired_at_first_use >= min_days
        ]


def expired_certificates(enriched: EnrichedDataset) -> ExpiredReport:
    """Figure 5: client certificates presented in established connections
    after their notAfter, with duration-of-activity tracking."""
    usages: dict[str, ExpiredUsage] = {}
    firsts: dict[str, _dt.datetime] = {}
    for conn in enriched.mutual:
        leaf = conn.view.client_leaf
        if leaf is None or leaf.has_inverted_validity:
            continue
        if not leaf.expired_at(conn.view.ts):
            continue
        fp = leaf.fingerprint
        usage = usages.get(fp)
        profile = enriched.profiles.get(fp)
        if usage is None:
            usage = ExpiredUsage(
                fingerprint=fp,
                issuer_org=leaf.issuer_org,
                public=enriched.is_public_record(leaf),
                days_expired_at_first_use=0.0,
                activity_days=profile.activity_days if profile else 0.0,
                direction=conn.direction,
            )
            usages[fp] = usage
        if fp not in firsts or conn.view.ts < firsts[fp]:
            firsts[fp] = conn.view.ts
            usage.days_expired_at_first_use = leaf.days_expired(conn.view.ts)
        if conn.direction == "inbound" and conn.association:
            usage.associations.add(conn.association)
        sni = conn.view.sni
        if sni:
            sld = extract_domain(sni).registrable
            if sld:
                usage.slds.add(sld)
    inbound = [u for u in usages.values() if u.direction == "inbound"]
    outbound = [u for u in usages.values() if u.direction == "outbound"]
    return ExpiredReport(inbound=inbound, outbound=outbound)


def render_expired_report(report: ExpiredReport) -> Table:
    table = Table(
        "Figure 5: expired client certificates in established mutual TLS",
        ["Direction", "#certs", "Public", "Private",
         "Median days expired", "Max days expired"],
    )
    for direction, usages in (("inbound", report.inbound), ("outbound", report.outbound)):
        if not usages:
            table.add_row(direction, 0, 0, 0, "-", "-")
            continue
        days = sorted(u.days_expired_at_first_use for u in usages)
        table.add_row(
            direction, len(usages),
            sum(1 for u in usages if u.public),
            sum(1 for u in usages if not u.public),
            f"{days[len(days) // 2]:.0f}", f"{days[-1]:.0f}",
        )
    shares = report.inbound_association_shares()
    if shares:
        ranked = sorted(shares.items(), key=lambda kv: -kv[1])
        table.add_note(
            "inbound associations: "
            + ", ".join(f"{k} {100 * v:.1f}%" for k, v in ranked[:4])
        )
    cluster = report.outbound_cluster()
    if cluster:
        apple = sum(1 for u in cluster if (u.issuer_org or "").startswith("Apple"))
        table.add_note(
            f"outbound long-expired public cluster: {len(cluster)} certs, "
            f"{apple} issued by Apple"
        )
    return table
