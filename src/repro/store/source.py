"""``ColumnarStoreSource`` — the store-backed :class:`RecordSource`.

Column files are memory-mapped, never slurped: opening a store parses
one small JSON manifest plus one JSON header per table, and bytes are
only copied when a column is actually requested. Materialized record
lists and the (shard-broadcast) x509 stream are cached per process, so
an executor worker that analyzes several months parses the certificate
stream zero times and touches each ssl column exactly once.

Every ``read_month``/``read_all`` replays the verbatim ingest reports
recorded at pack time, which is what keeps ingest-health tables and
campaign metrics byte-identical to a TSV-backed run.
"""

from __future__ import annotations

import hashlib
import json
import mmap
from pathlib import Path

from repro.store.codec import CODEC_VERSION, ColumnTable, StoreFormatError
from repro.zeek.ingest import IngestOptions, IngestReport, ShardRecords
from repro.zeek.records import SslRecord, X509Record

_STORE_FORMAT = "columnar-store/v1"


class ColumnarStoreSource:
    """Serve shard records straight from a packed columnar store.

    Drop-in peer of :class:`~repro.zeek.files.TsvDirectorySource`: the
    executor, the streaming analyzer, and ``CampusStudy`` consume either
    through the same :class:`~repro.zeek.ingest.RecordSource` protocol.
    Pickles by store path only (mmaps and caches are per-process).
    """

    def __init__(self, store: Path | str) -> None:
        self.directory = str(store)
        manifest_path = Path(store) / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreFormatError(
                f"no columnar store at {store} (missing manifest.json); "
                "run `repro pack` or pass --store to create one"
            ) from None
        except ValueError as exc:
            raise StoreFormatError(f"corrupt store manifest: {exc}") from None
        if manifest.get("format") != _STORE_FORMAT:
            raise StoreFormatError(
                f"unsupported store format {manifest.get('format')!r} "
                f"(this build reads {_STORE_FORMAT!r}); repack the store"
            )
        if manifest.get("codec") != CODEC_VERSION:
            raise StoreFormatError(
                f"unsupported store codec {manifest.get('codec')!r} "
                f"(this build reads {CODEC_VERSION}); repack the store"
            )
        self.manifest = manifest
        self._months: tuple[str, ...] = tuple(manifest["months"])
        self._tables: dict[str, ColumnTable] = {}
        self._ssl_cache: dict[str, list[SslRecord]] = {}
        self._x509_cache: list[X509Record] | None = None

    # Pickling (executor workers get the path, re-open locally) ----------------

    def __getstate__(self) -> dict:
        return {"directory": self.directory}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["directory"])

    # Store identity -----------------------------------------------------------

    def matches(self, fingerprint: str, options: IngestOptions) -> bool:
        """Whether this store serves exactly that archive under that
        ingest policy (the ``ensure_store`` reuse check)."""
        return (
            self.manifest["source"]["fingerprint"] == fingerprint
            and self.manifest["options"] == options.identity()
        )

    def _check_options(self, options: IngestOptions) -> None:
        packed = self.manifest["options"]
        requested = options.identity()
        if packed != requested:
            raise StoreFormatError(
                f"store was packed under {packed} but the run requests "
                f"{requested}; repack the store (or let ensure_store do it)"
            )

    # Table access (used by the query engine as well) --------------------------

    def table(self, filename: str) -> ColumnTable:
        """Open (mmap) one column file, cached per process."""
        cached = self._tables.get(filename)
        if cached is not None:
            return cached
        path = Path(self.directory) / filename
        with path.open("rb") as handle:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        table = ColumnTable(buffer)
        self._tables[filename] = table
        return table

    def ssl_table(self, month: str) -> ColumnTable:
        """The raw ssl column table for one shard month."""
        try:
            meta = self.manifest["ssl_shards"][month]
        except KeyError:
            known = ", ".join(self._months)
            raise KeyError(f"no shard for month {month!r} (have: {known})") from None
        return self.table(meta["file"])

    def x509_tables(self) -> list[ColumnTable]:
        return [
            self.table(entry["file"]) for entry in self.manifest["x509"]["files"]
        ]

    # RecordSource protocol ----------------------------------------------------

    def months(self) -> tuple[str, ...]:
        return self._months

    def _ssl_records(self, month: str) -> list[SslRecord]:
        cached = self._ssl_cache.get(month)
        if cached is None:
            cached = self._ssl_cache[month] = self.ssl_table(month).records()
        return cached

    def _x509_records(self) -> list[X509Record]:
        if self._x509_cache is None:
            records: list[X509Record] = []
            # Partitions are stored in calendar order over a globally
            # ts-sorted stream, so concatenation *is* the sorted stream.
            for table in self.x509_tables():
                records.extend(table.records())
            self._x509_cache = records
        return self._x509_cache

    def _ssl_report(self, month: str) -> IngestReport:
        return IngestReport.from_dict(
            self.manifest["ssl_shards"][month]["report"]
        )

    def _x509_report(self) -> IngestReport:
        state = self.manifest["x509"]["report"]
        return IngestReport.from_dict(state) if state else IngestReport()

    def read_month(self, month: str, options: IngestOptions) -> ShardRecords:
        self._check_options(options)
        if month not in self.manifest["ssl_shards"]:
            known = ", ".join(self._months)
            raise KeyError(f"no shard for month {month!r} (have: {known})")
        return ShardRecords(
            month=month,
            ssl=list(self._ssl_records(month)),
            x509=list(self._x509_records()),
            ssl_report=self._ssl_report(month),
            x509_report=self._x509_report(),
        )

    def read_all(
        self, options: IngestOptions
    ) -> tuple[list[SslRecord], list[X509Record], IngestReport]:
        self._check_options(options)
        ssl: list[SslRecord] = []
        report = options.report if options.report is not None else IngestReport()
        for month in self._months:
            ssl.extend(self._ssl_records(month))
            report.merge(self._ssl_report(month))
        # Shards are month-sorted but a hand-rotated file may carry a few
        # out-of-window rows; the stable re-sort reproduces the TSV
        # whole-capture ordering exactly (sorted-runs concat + stable
        # sort == stable sort of the concatenated originals).
        ssl.sort(key=lambda r: r.ts)
        x509 = list(self._x509_records())
        report.merge(self._x509_report())
        return ssl, x509, report

    def identity(self) -> str:
        payload = {
            "store": self.manifest["source"]["identity"],
            "fingerprint": self.manifest["source"]["fingerprint"],
            "options": self.manifest["options"],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
