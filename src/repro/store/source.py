"""``ColumnarStoreSource`` — the store-backed :class:`RecordSource`.

Column files are memory-mapped, never slurped: opening a store parses
one small JSON manifest plus one JSON header per table, and bytes are
only copied when a column is actually requested. Materialized record
lists and the (shard-broadcast) x509 stream are cached per process, so
an executor worker that analyzes several months parses the certificate
stream zero times and touches each ssl column exactly once.

Integrity: every table open checks the file's size against the manifest
and the header CRC against the header bytes; each section's CRC32 is
then checked the first time that section is served (lazy, so queries
never pay to verify columns they skip). A truncated or bit-flipped file
raises :class:`~repro.store.codec.StoreIntegrityError` before one
damaged value reaches an analysis — at open for framing damage, at
first access for section damage. With ``heal=True`` (the default) a
damaged file is transparently quarantined and rebuilt from the TSV
source the manifest points at, provided that archive still fingerprints
identically; both the open path (:meth:`table`) and the consumption
path (:meth:`serve`, used by record materialization and the query
engine) retry once after healing. The healed filenames are recorded in
:attr:`healed`.
Legacy v1 stores (no checksums) still read, with a
:class:`RuntimeWarning` that corruption cannot be detected.

Concurrency: manifest reads and table opens take the store's shared
:func:`store_lock`, so they cannot interleave with a packer's exclusive
critical section. Once a file is mapped the lock is released — the mmap
pins the inode, so a later ``os.replace`` by a repack can never tear an
open reader.

Every ``read_month``/``read_all`` replays the verbatim ingest reports
recorded at pack time, which is what keeps ingest-health tables and
campaign metrics byte-identical to a TSV-backed run.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import warnings
from pathlib import Path

from repro.core.locks import FileLock
from repro.store.codec import (
    CODEC_VERSION,
    LEGACY_CODEC_VERSION,
    ColumnTable,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.zeek.ingest import IngestOptions, IngestReport, ShardRecords
from repro.zeek.records import SslRecord, X509Record

#: Current (checksummed) manifest format.
STORE_FORMAT = "columnar-store/v2"
#: Legacy manifest format: no per-file checksums. Read-compatible.
LEGACY_STORE_FORMAT = "columnar-store/v1"

#: Name of the advisory lock file inside a store directory.
LOCK_NAME = ".lock"

_FORMAT_CODECS = {
    STORE_FORMAT: CODEC_VERSION,
    LEGACY_STORE_FORMAT: LEGACY_CODEC_VERSION,
}


def store_lock(store: Path | str) -> FileLock:
    """The advisory lock coordinating writers/readers of one store.

    Writers (``repro pack``, fsck repair) hold it exclusive; readers
    hold it shared only across manifest parse / table open. Never nest
    two acquisitions in one process — ``flock`` treats separate file
    descriptors as independent lockers.
    """
    return FileLock(Path(store) / LOCK_NAME)


class ColumnarStoreSource:
    """Serve shard records straight from a packed columnar store.

    Drop-in peer of :class:`~repro.zeek.files.TsvDirectorySource`: the
    executor, the streaming analyzer, and ``CampusStudy`` consume either
    through the same :class:`~repro.zeek.ingest.RecordSource` protocol.
    Pickles by store path only (mmaps and caches are per-process).
    """

    def __init__(
        self, store: Path | str, *, verify: bool = True, heal: bool = True
    ) -> None:
        self.directory = str(store)
        self._verify = verify
        self._heal = heal
        #: Filenames transparently repaired from the TSV source, in the
        #: order the damage was hit (the degrade/quarantine vocabulary:
        #: the damaged original lands in ``<store>/quarantine/``).
        self.healed: list[str] = []
        manifest_path = Path(store) / "manifest.json"
        try:
            with store_lock(store).shared(op="open"):
                manifest_text = manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreFormatError(
                f"no columnar store at {store} (missing manifest.json); "
                "run `repro pack` or pass --store to create one"
            ) from None
        try:
            manifest = json.loads(manifest_text)
        except ValueError as exc:
            raise StoreFormatError(f"corrupt store manifest: {exc}") from None
        declared = manifest.get("format")
        if declared not in _FORMAT_CODECS:
            raise StoreFormatError(
                f"unsupported store format {declared!r} "
                f"(this build reads {STORE_FORMAT!r} and legacy "
                f"{LEGACY_STORE_FORMAT!r}); repack the store"
            )
        if manifest.get("codec") != _FORMAT_CODECS[declared]:
            raise StoreFormatError(
                f"unsupported store codec {manifest.get('codec')!r} "
                f"(this build reads {CODEC_VERSION} and legacy "
                f"{LEGACY_CODEC_VERSION}); repack the store"
            )
        self.integrity = declared == STORE_FORMAT
        if not self.integrity:
            warnings.warn(
                f"store at {store} uses the legacy {LEGACY_STORE_FORMAT} "
                "format with no integrity checksums — corruption cannot "
                "be detected; repack (or run ensure_store) to upgrade",
                RuntimeWarning,
                stacklevel=2,
            )
        self.manifest = manifest
        self._months: tuple[str, ...] = tuple(manifest["months"])
        self._file_meta: dict[str, dict] = {}
        for entry in manifest["ssl_shards"].values():
            self._file_meta[entry["file"]] = entry
        for entry in manifest["x509"]["files"]:
            self._file_meta[entry["file"]] = entry
        self._tables: dict[str, ColumnTable] = {}
        self._ssl_cache: dict[str, list[SslRecord]] = {}
        self._x509_cache: list[X509Record] | None = None

    # Pickling (executor workers get the path, re-open locally) ----------------

    def __getstate__(self) -> dict:
        return {
            "directory": self.directory,
            "verify": self._verify,
            "heal": self._heal,
        }

    def __setstate__(self, state: dict) -> None:
        with warnings.catch_warnings():
            # The parent process already warned about a legacy store;
            # re-opened worker clones stay quiet.
            warnings.simplefilter("ignore", RuntimeWarning)
            self.__init__(
                state["directory"],
                verify=state.get("verify", True),
                heal=state.get("heal", True),
            )

    # Store identity -----------------------------------------------------------

    def matches(self, fingerprint: str, options: IngestOptions) -> bool:
        """Whether this store serves exactly that archive under that
        ingest policy (the ``ensure_store`` reuse check). Legacy v1
        stores never match — reuse would keep un-checksummed files
        alive forever, so they are transparently upgraded by a repack."""
        return (
            self.integrity
            and self.manifest["source"]["fingerprint"] == fingerprint
            and self.manifest["options"] == options.identity()
        )

    def _check_options(self, options: IngestOptions) -> None:
        packed = self.manifest["options"]
        requested = options.identity()
        if packed != requested:
            raise StoreFormatError(
                f"store was packed under {packed} but the run requests "
                f"{requested}; repack the store (or let ensure_store do it)"
            )

    # Table access (used by the query engine as well) --------------------------

    def _open_table(self, filename: str) -> ColumnTable:
        """Map and (if enabled) verify one column file, under the
        store's shared lock so a mid-pack writer is excluded."""
        path = Path(self.directory) / filename
        with store_lock(self.directory).shared(op=f"map {filename}"):
            meta = self._file_meta.get(filename)
            if meta is not None and "bytes" in meta:
                try:
                    actual = path.stat().st_size
                except FileNotFoundError:
                    raise StoreIntegrityError(
                        f"{filename}: column file missing from store",
                        findings=["missing"],
                    ) from None
                if actual != meta["bytes"]:
                    raise StoreIntegrityError(
                        f"{filename}: size {actual} does not match the "
                        f"manifest ({meta['bytes']} bytes) — truncated or "
                        "partially written",
                        findings=["size"],
                    )
            with path.open("rb") as handle:
                buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            return ColumnTable(buffer, verify=self._verify, name=filename)

    def table(self, filename: str) -> ColumnTable:
        """Open (mmap + verify) one column file, cached per process.

        A verification failure quarantines and rebuilds the file from
        the manifest's TSV source when healing is enabled and the
        archive still fingerprints identically; otherwise the
        :class:`StoreIntegrityError` propagates.
        """
        cached = self._tables.get(filename)
        if cached is not None:
            return cached
        try:
            table = self._open_table(filename)
        except StoreIntegrityError:
            self._heal_or_raise(filename)
            table = self._open_table(filename)
        self._tables[filename] = table
        return table

    def _heal_or_raise(self, filename: str) -> None:
        """Quarantine + rebuild one damaged file, or re-raise."""
        if not self._heal:
            raise
        from repro.store.fsck import heal_file

        # heal_file takes the exclusive lock itself; we hold none here
        # (any shared scope has been released before damage is raised).
        if not heal_file(Path(self.directory), filename, self.manifest):
            raise
        self._tables.pop(filename, None)
        self.healed.append(filename)

    def serve(self, filename: str, consumer):
        """Run ``consumer(table)`` with heal-retry on section damage.

        Section checksums are verified lazily (on first access), so
        damage in a column can surface mid-consumption rather than at
        open. Consumers that must never observe a damaged value — record
        materialization, the query engine — go through here: on
        :class:`StoreIntegrityError` the file is quarantined, rebuilt
        from the TSV source, re-mapped, and the consumer re-run once
        against the clean bytes. ``consumer`` must be effect-free on
        failure (compute and return; no partial writes).
        """
        try:
            return consumer(self.table(filename))
        except StoreIntegrityError:
            self._heal_or_raise(filename)
            return consumer(self.table(filename))

    def ssl_table(self, month: str) -> ColumnTable:
        """The raw ssl column table for one shard month."""
        try:
            meta = self.manifest["ssl_shards"][month]
        except KeyError:
            known = ", ".join(self._months)
            raise KeyError(f"no shard for month {month!r} (have: {known})") from None
        return self.table(meta["file"])

    def x509_tables(self) -> list[ColumnTable]:
        return [
            self.table(entry["file"]) for entry in self.manifest["x509"]["files"]
        ]

    # RecordSource protocol ----------------------------------------------------

    def months(self) -> tuple[str, ...]:
        return self._months

    def _ssl_records(self, month: str) -> list[SslRecord]:
        cached = self._ssl_cache.get(month)
        if cached is None:
            filename = self.manifest["ssl_shards"][month]["file"]
            cached = self._ssl_cache[month] = self.serve(
                filename, lambda table: table.records()
            )
        return cached

    def _x509_records(self) -> list[X509Record]:
        if self._x509_cache is None:
            records: list[X509Record] = []
            # Partitions are stored in calendar order over a globally
            # ts-sorted stream, so concatenation *is* the sorted stream.
            for entry in self.manifest["x509"]["files"]:
                records.extend(
                    self.serve(entry["file"], lambda table: table.records())
                )
            self._x509_cache = records
        return self._x509_cache

    def _ssl_report(self, month: str) -> IngestReport:
        return IngestReport.from_dict(
            self.manifest["ssl_shards"][month]["report"]
        )

    def _x509_report(self) -> IngestReport:
        state = self.manifest["x509"]["report"]
        return IngestReport.from_dict(state) if state else IngestReport()

    def read_month(self, month: str, options: IngestOptions) -> ShardRecords:
        self._check_options(options)
        if month not in self.manifest["ssl_shards"]:
            known = ", ".join(self._months)
            raise KeyError(f"no shard for month {month!r} (have: {known})")
        return ShardRecords(
            month=month,
            ssl=list(self._ssl_records(month)),
            x509=list(self._x509_records()),
            ssl_report=self._ssl_report(month),
            x509_report=self._x509_report(),
        )

    def read_all(
        self, options: IngestOptions
    ) -> tuple[list[SslRecord], list[X509Record], IngestReport]:
        self._check_options(options)
        ssl: list[SslRecord] = []
        report = options.report if options.report is not None else IngestReport()
        for month in self._months:
            ssl.extend(self._ssl_records(month))
            report.merge(self._ssl_report(month))
        # Shards are month-sorted but a hand-rotated file may carry a few
        # out-of-window rows; the stable re-sort reproduces the TSV
        # whole-capture ordering exactly (sorted-runs concat + stable
        # sort == stable sort of the concatenated originals).
        ssl.sort(key=lambda r: r.ts)
        x509 = list(self._x509_records())
        report.merge(self._x509_report())
        return ssl, x509, report

    def identity(self) -> str:
        payload = {
            "store": self.manifest["source"]["identity"],
            "fingerprint": self.manifest["source"]["fingerprint"],
            "options": self.manifest["options"],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
