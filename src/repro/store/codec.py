"""Columnar codec: struct-packed column files with interned strings.

One ``.col`` file holds one record table (an ssl shard or an x509 month
partition) as fixed-width columns::

    magic (8B)  "RPCOL2\\n\\0"
    u32         header length
    u32         header CRC32
    JSON header kind, row count, codec version, column metadata,
                section lengths **and CRC32s** (in file order)
    sections    8-byte aligned, back to back

Codec v2 adds integrity: every section carries a CRC32 in the header,
the header itself is covered by the fixed-position header CRC, and
readers verify the header at map time and each section the first time
its bytes are served (see :class:`ColumnTable`), so a flipped bit is
detected before a single damaged value can reach an analysis — while
queries that slice a few columns never pay to CRC the columns they skip.
v1 files (magic ``RPCOL1\\n\\0``, no
checksums) still read, flagged ``integrity=False`` — the store source
warns that such files cannot detect corruption and ``repro fsck``
recommends a repack.

Column storage types:

- ``i64``   — little-endian int64 array (timestamps as epoch
              microseconds, counts, ports);
- ``u8``    — one byte per row (bools; ``2`` is the null for ``bool?``);
- ``str``   — u32 indexes into the file's string pool
              (``0xFFFFFFFF`` is the null for ``str?``);
- ``strlist`` — a u32 offsets array (rows+1) plus a u32 values array of
              pool indexes, encoding one string tuple per row.

The string pool is two sections (offsets + utf-8 blob) holding each
distinct string once. Timestamps round-trip exactly: the TSV parser
produces microsecond-quantized tz-aware datetimes, and
``epoch + timedelta(microseconds=n)`` reconstructs the identical value.

The ssl table carries two derived columns the record schema does not
have: ``__month__`` (the row's 'YYYY-MM' label as a pool index) and
``__flags__`` (a predicate bitmap: established, server chain non-empty,
client chain non-empty, TLSv13, resumed). They cost one byte-ish per
row and let the store-native query engine answer the headline analyses
with C-speed byte counting instead of record materialization.
"""

from __future__ import annotations

import datetime as _dt
import json
import struct
import sys
import zlib
from array import array
from typing import Iterable, Sequence

from repro.zeek.records import SslRecord, X509Record

#: Current (checksummed) container magic.
MAGIC = b"RPCOL2\n\x00"
#: Legacy magic: identical layout minus the header CRC word and the
#: per-section checksums. Still readable, with ``integrity=False``.
MAGIC_V1 = b"RPCOL1\n\x00"
CODEC_VERSION = 2
LEGACY_CODEC_VERSION = 1

#: Pool-index null sentinel for ``str?`` columns.
NULL_INDEX = 0xFFFFFFFF

#: ``__flags__`` bits (ssl tables only).
FLAG_ESTABLISHED = 1
FLAG_SERVER_CHAIN = 2
FLAG_CLIENT_CHAIN = 4
FLAG_TLS13 = 8
FLAG_RESUMED = 16

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)
_MICRO = _dt.timedelta(microseconds=1)

#: (record field, logical type) per table kind; drives both encode and
#: decode, so the two cannot drift apart.
SSL_SCHEMA: list[tuple[str, str]] = [
    ("ts", "time"),
    ("uid", "str"),
    ("id_orig_h", "str"),
    ("id_orig_p", "i64"),
    ("id_resp_h", "str"),
    ("id_resp_p", "i64"),
    ("version", "str"),
    ("cipher", "str"),
    ("server_name", "str?"),
    ("established", "bool"),
    ("cert_chain_fuids", "strlist"),
    ("client_cert_chain_fuids", "strlist"),
    ("validation_status", "str?"),
    ("resumed", "bool"),
]

X509_SCHEMA: list[tuple[str, str]] = [
    ("ts", "time"),
    ("fuid", "str"),
    ("fingerprint", "str"),
    ("version", "i64"),
    ("serial", "str"),
    ("subject", "str"),
    ("issuer", "str"),
    ("not_valid_before", "time"),
    ("not_valid_after", "time"),
    ("key_alg", "str"),
    ("sig_alg", "str"),
    ("key_length", "i64"),
    ("san_dns", "strlist"),
    ("san_uri", "strlist"),
    ("san_email", "strlist"),
    ("san_ip", "strlist"),
    ("basic_constraints_ca", "bool?"),
    ("eku", "strlist"),
]

_SCHEMAS = {"ssl": (SSL_SCHEMA, SslRecord), "x509": (X509_SCHEMA, X509Record)}

_LITTLE = sys.byteorder == "little"


class StoreFormatError(Exception):
    """A column file or manifest that cannot be served.

    Raised for bad magic, an unknown codec version, a truncated file,
    or a policy/fingerprint mismatch between store and request.
    """


class StoreIntegrityError(StoreFormatError):
    """A well-formed file whose checksums do not match its bytes.

    Distinct from :class:`StoreFormatError` proper because the response
    differs: a format error means the file was never ours (or predates
    the codec), an integrity error means our file was *damaged after
    writing* — bit rot, a torn write, a truncation — and is a candidate
    for quarantine-and-repack (``repro fsck --repair``).
    """

    def __init__(self, message: str, *, findings: list[str] | None = None) -> None:
        super().__init__(message)
        #: Human-readable list of damaged pieces (section names etc.).
        self.findings = findings or []


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _to_micros(ts: _dt.datetime) -> int:
    if ts.tzinfo is None:
        raise StoreFormatError(
            "naive datetime cannot be packed; the columnar store holds "
            "TSV-parsed records (tz-aware, microsecond-quantized)"
        )
    return (ts - _EPOCH) // _MICRO


def _from_micros(micros: int) -> _dt.datetime:
    return _EPOCH + _dt.timedelta(microseconds=micros)


def month_of(ts: _dt.datetime) -> str:
    return f"{ts.year:04d}-{ts.month:02d}"


class _Pool:
    """Build-side string interner: one index per distinct string."""

    __slots__ = ("index", "strings")

    def __init__(self) -> None:
        self.index: dict[str, int] = {}
        self.strings: list[str] = []

    def intern(self, text: str) -> int:
        idx = self.index.get(text)
        if idx is None:
            idx = self.index[text] = len(self.strings)
            self.strings.append(text)
        return idx


def _typed_bytes(arr: array) -> bytes:
    if not _LITTLE:
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _encode_column(
    name: str, ltype: str, records: Sequence, pool: _Pool
) -> list[tuple[str, str, bytes]]:
    """Encode one logical column into its ``(section, fmt, payload)``
    list (``strlist`` spans two sections)."""
    if ltype == "time":
        payload = array("q", [_to_micros(getattr(r, name)) for r in records])
        return [(name, "q", _typed_bytes(payload))]
    if ltype == "i64":
        payload = array("q", [getattr(r, name) for r in records])
        return [(name, "q", _typed_bytes(payload))]
    if ltype == "bool":
        return [(name, "B", bytes(1 if getattr(r, name) else 0 for r in records))]
    if ltype == "bool?":
        def cell(value) -> int:
            return 2 if value is None else (1 if value else 0)
        return [(name, "B", bytes(cell(getattr(r, name)) for r in records))]
    if ltype == "str":
        intern = pool.intern
        payload = array("I", [intern(getattr(r, name)) for r in records])
        return [(name, "I", _typed_bytes(payload))]
    if ltype == "str?":
        intern = pool.intern
        payload = array(
            "I",
            [
                NULL_INDEX if value is None else intern(value)
                for value in (getattr(r, name) for r in records)
            ],
        )
        return [(name, "I", _typed_bytes(payload))]
    if ltype == "strlist":
        intern = pool.intern
        offsets = array("I", [0])
        values = array("I")
        for r in records:
            for item in getattr(r, name):
                values.append(intern(item))
            offsets.append(len(values))
        return [
            (f"{name}#offsets", "I", _typed_bytes(offsets)),
            (f"{name}#values", "I", _typed_bytes(values)),
        ]
    raise StoreFormatError(f"unknown logical column type {ltype!r}")


def _ssl_derived(records: Sequence[SslRecord], pool: _Pool) -> list[tuple]:
    """The ssl-only derived columns (month label + predicate bitmap)."""
    intern = pool.intern
    months = array("I", [intern(month_of(r.ts)) for r in records])
    flags = bytearray(len(records))
    for i, r in enumerate(records):
        value = 0
        if r.established:
            value |= FLAG_ESTABLISHED
        if r.cert_chain_fuids:
            value |= FLAG_SERVER_CHAIN
        if r.client_cert_chain_fuids:
            value |= FLAG_CLIENT_CHAIN
        if r.version == "TLSv13":
            value |= FLAG_TLS13
        if r.resumed:
            value |= FLAG_RESUMED
        flags[i] = value
    return [
        ("__month__", "I", _typed_bytes(months)),
        ("__flags__", "B", bytes(flags)),
    ]


def pack_table(
    kind: str, records: Sequence, *, codec_version: int = CODEC_VERSION
) -> bytes:
    """Serialize records of one table kind into one ``.col`` image.

    ``codec_version=1`` emits the genuine legacy layout (v1 magic, no
    checksums) — used by compatibility tests and nothing else.
    """
    if codec_version not in (CODEC_VERSION, LEGACY_CODEC_VERSION):
        raise StoreFormatError(f"cannot write codec version {codec_version!r}")
    try:
        schema, _ = _SCHEMAS[kind]
    except KeyError:
        raise StoreFormatError(f"unknown table kind {kind!r}") from None
    pool = _Pool()
    sections: list[tuple[str, str, bytes]] = []
    columns_meta = []
    for name, ltype in schema:
        sections.extend(_encode_column(name, ltype, records, pool))
        columns_meta.append({"name": name, "type": ltype})
    if kind == "ssl":
        sections.extend(_ssl_derived(records, pool))
        columns_meta.append({"name": "__month__", "type": "str"})
        columns_meta.append({"name": "__flags__", "type": "u8"})
    # The pool is encoded last (it is only complete once every column
    # has interned its values) but its sections sit with the others.
    blob_parts: list[bytes] = []
    offsets = array("I", [0])
    total = 0
    for text in pool.strings:
        raw = text.encode("utf-8")
        blob_parts.append(raw)
        total += len(raw)
        offsets.append(total)
    sections.append(("pool#offsets", "I", _typed_bytes(offsets)))
    sections.append(("pool#blob", "B", b"".join(blob_parts)))

    checksummed = codec_version >= 2
    header = {
        "codec": codec_version,
        "kind": kind,
        "rows": len(records),
        "endian": "little",
        "pool_count": len(pool.strings),
        "columns": columns_meta,
        "sections": [
            dict(
                {"name": name, "fmt": fmt, "length": len(payload)},
                **({"crc32": zlib.crc32(payload)} if checksummed else {}),
            )
            for name, fmt, payload in sections
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    out = bytearray()
    out += MAGIC if checksummed else MAGIC_V1
    out += struct.pack("<I", len(header_bytes))
    if checksummed:
        out += struct.pack("<I", zlib.crc32(header_bytes))
    out += header_bytes
    out += b"\x00" * (_align8(len(out)) - len(out))
    for _, _, payload in sections:
        out += payload
        out += b"\x00" * (_align8(len(out)) - len(out))
    return bytes(out)


class ColumnTable:
    """Read side: lazy, zero-parse access to one ``.col`` image.

    ``buffer`` may be bytes or an ``mmap`` — sections are only touched
    (and only copied) when a column is requested, so opening a store
    costs one header parse regardless of table size.

    Codec-v2 files are **verified as served**: the header CRC is checked
    at construction (framing must be trustworthy before anything else is
    believed), and each section's CRC32 is checked the first time its
    bytes are requested — :class:`StoreIntegrityError` is raised before
    one damaged value can be decoded. Verifying lazily instead of
    whole-file-at-open keeps the integrity tax proportional to what a
    query actually reads (the column-slice queries touch a few percent
    of the file; see ``bench_store_analyze``'s checksum-overhead leg).
    Pass ``verify=False`` only when the caller verifies separately (fsck
    does, via :meth:`verify`, to collect *all* findings instead of
    failing on the first).

    Legacy v1 files (no checksums) load with ``integrity=False`` — they
    cannot detect corruption and should be repacked.
    """

    def __init__(self, buffer, *, verify: bool = True, name: str = "") -> None:
        self._buf = buffer
        self._name = name or "column file"
        if len(buffer) < len(MAGIC) + 4:
            raise StoreFormatError(f"{self._name} truncated before header")
        magic = bytes(buffer[: len(MAGIC)])
        if magic == MAGIC:
            self.integrity = True
            expected_codec = CODEC_VERSION
            start = len(MAGIC) + 8  # header length + header CRC words
        elif magic == MAGIC_V1:
            self.integrity = False
            expected_codec = LEGACY_CODEC_VERSION
            start = len(MAGIC) + 4
        else:
            raise StoreFormatError(f"{self._name}: not a columnar-store file (bad magic)")
        if len(buffer) < start:
            raise StoreFormatError(f"{self._name} truncated before header")
        (header_len,) = struct.unpack_from("<I", buffer, len(MAGIC))
        if len(buffer) < start + header_len:
            raise StoreFormatError(f"{self._name} truncated before header")
        header_bytes = bytes(buffer[start:start + header_len])
        if self.integrity:
            (header_crc,) = struct.unpack_from("<I", buffer, len(MAGIC) + 4)
            if zlib.crc32(header_bytes) != header_crc:
                raise StoreIntegrityError(
                    f"{self._name}: header checksum mismatch (corrupt or "
                    "truncated header)",
                    findings=["header"],
                )
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise StoreFormatError(
                f"{self._name}: corrupt column-file header: {exc}"
            ) from None
        if header.get("codec") != expected_codec:
            raise StoreFormatError(
                f"{self._name}: unsupported codec version "
                f"{header.get('codec')!r} (this build reads "
                f"{CODEC_VERSION} and legacy {LEGACY_CODEC_VERSION}); "
                "repack the store"
            )
        self.kind: str = header["kind"]
        self.rows: int = header["rows"]
        self.pool_count: int = header["pool_count"]
        self.columns: list[dict] = header["columns"]
        self._sections: dict[str, tuple[str, int, int]] = {}
        self._section_crcs: dict[str, int] = {}
        offset = _align8(start + header_len)
        for section in header["sections"]:
            length = section["length"]
            self._sections[section["name"]] = (section["fmt"], offset, length)
            if "crc32" in section:
                self._section_crcs[section["name"]] = section["crc32"]
            offset += _align8(length)
        if offset > len(buffer):
            raise StoreFormatError(f"{self._name} truncated (sections overrun)")
        self._pool: list[str] | None = None
        #: Lazy verification state: section names whose bytes have been
        #: CRC-checked against the header. Populated by the first
        #: :meth:`raw`/:meth:`typed` access of each section.
        self._lazy_verify = verify and self.integrity
        self._verified: set[str] = set()

    def verify(self) -> list[str]:
        """Check every section's bytes against its header CRC32.

        Returns the damaged section names (empty = intact). On a legacy
        v1 file there is nothing to check and the single finding
        ``"<no checksums: codec v1>"`` is *not* reported here — fsck
        surfaces v1 stores separately as "unverifiable".
        """
        if not self.integrity:
            return []
        view = memoryview(self._buf)
        damaged = []
        for name, (fmt, offset, length) in self._sections.items():
            expected = self._section_crcs.get(name)
            if expected is None:
                damaged.append(f"{name} (no checksum in header)")
                continue
            if zlib.crc32(view[offset:offset + length]) != expected:
                damaged.append(name)
        return damaged

    def _check_section(self, name: str, offset: int, length: int) -> None:
        """CRC one section on its first access (lazy verify-as-served)."""
        if not self._lazy_verify or name in self._verified:
            return
        expected = self._section_crcs.get(name)
        if expected is None:
            raise StoreIntegrityError(
                f"{self._name}: section {name!r} carries no checksum in "
                "the header (damaged or hand-edited header)",
                findings=[f"{name} (no checksum in header)"],
            )
        view = memoryview(self._buf)[offset:offset + length]
        if zlib.crc32(view) != expected:
            raise StoreIntegrityError(
                f"{self._name}: checksum mismatch in section {name!r}",
                findings=[name],
            )
        self._verified.add(name)

    # Raw access ---------------------------------------------------------------

    def raw(self, name: str) -> bytes:
        """One section's payload as bytes (a copy; C-speed scannable)."""
        try:
            _, offset, length = self._sections[name]
        except KeyError:
            raise StoreFormatError(f"no section {name!r} in this table") from None
        self._check_section(name, offset, length)
        return bytes(self._buf[offset:offset + length])

    def typed(self, name: str) -> array:
        """One section as a typed array (int64 / u32 / u8)."""
        try:
            fmt, offset, length = self._sections[name]
        except KeyError:
            raise StoreFormatError(f"no section {name!r} in this table") from None
        self._check_section(name, offset, length)
        arr = array(fmt)
        arr.frombytes(bytes(self._buf[offset:offset + length]))
        if not _LITTLE:
            arr.byteswap()
        return arr

    def pool(self) -> list[str]:
        """The interned string pool (decoded once, then cached)."""
        if self._pool is None:
            offsets = self.typed("pool#offsets")
            blob = self.raw("pool#blob")
            self._pool = [
                blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                for i in range(self.pool_count)
            ]
        return self._pool

    # Materialization ----------------------------------------------------------

    def _decode_logical(self, name: str, ltype: str) -> list:
        strings = self.pool()
        if ltype == "time":
            return [_from_micros(m) for m in self.typed(name)]
        if ltype == "i64":
            return self.typed(name).tolist()
        if ltype == "bool":
            return [v == 1 for v in self.raw(name)]
        if ltype == "bool?":
            return [None if v == 2 else v == 1 for v in self.raw(name)]
        if ltype == "str":
            return [strings[i] for i in self.typed(name).tolist()]
        if ltype == "str?":
            return [
                None if i == NULL_INDEX else strings[i]
                for i in self.typed(name).tolist()
            ]
        if ltype == "strlist":
            offsets = self.typed(f"{name}#offsets").tolist()
            values = self.typed(f"{name}#values").tolist()
            # Vectors (EKUs, SANs, chains) repeat heavily; sharing one
            # tuple per distinct index sequence mirrors the fast TSV
            # decoder's memoized vector converter.
            memo: dict[tuple, tuple] = {}
            out = []
            append = out.append
            for k in range(self.rows):
                key = tuple(values[offsets[k]:offsets[k + 1]])
                shared = memo.get(key)
                if shared is None:
                    shared = memo[key] = tuple(strings[i] for i in key)
                append(shared)
            return out
        raise StoreFormatError(f"unknown logical column type {ltype!r}")

    def records(self) -> list:
        """Materialize the full record list (frozen dataclasses equal to
        the TSV-parsed originals, field for field)."""
        schema, factory = _SCHEMAS[self.kind]
        names = [name for name, _ in schema]
        columns = [self._decode_logical(name, ltype) for name, ltype in schema]
        new = object.__new__
        set_ = object.__setattr__
        out = []
        append = out.append
        for values in zip(*columns) if columns and self.rows else ():
            record = new(factory)
            set_(record, "__dict__", dict(zip(names, values)))
            append(record)
        return out


def pack_records(kind: str, records: Iterable) -> bytes:
    """Convenience wrapper accepting any iterable."""
    return pack_table(kind, list(records))
