"""``repro fsck`` — audit and repair a columnar store's integrity.

The check trusts nothing in the store: the manifest must parse and
carry a known format, every column file must exist with exactly the
byte length and CRC32 the manifest recorded, and every section inside
each file must match its header checksum. Findings use the same
quarantine/degrade vocabulary as run supervision:

- ``ok``            — file verified end to end;
- ``damaged``       — checksum or size mismatch (bit rot, torn write);
- ``missing``       — manifest lists it, directory does not have it;
- ``unverifiable``  — legacy v1 file with no checksums to check;
- ``repaired``      — damaged file quarantined and rebuilt from the
  TSV source, byte-identical to what the manifest promised.

Repair is conservative: the damaged original is *moved* to
``<store>/quarantine/`` (never deleted — it is evidence), the
replacement is rebuilt from the TSV archive the manifest points at,
and the rebuild is accepted only if the archive still fingerprints
identically **and** the rebuilt bytes reproduce the manifest's recorded
CRC32 exactly. Packing is deterministic, so a clean rebuild is
byte-identical to the original pre-damage file — which is what lets the
differential suite assert a repaired store's full 24-table campaign
output equals an uncorrupted run's.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.durable import durable_write
from repro.store.codec import (
    ColumnTable,
    StoreFormatError,
    month_of,
    pack_table,
)
from repro.store.source import STORE_FORMAT, store_lock
from repro.zeek.ingest import IngestOptions

#: Subdirectory damaged files are moved into (never deleted).
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class FsckFinding:
    """One file's verdict."""

    file: str
    status: str  # ok | damaged | missing | unverifiable | repaired
    detail: str = ""


@dataclass
class FsckResult:
    """Everything one fsck pass determined (and did)."""

    store: str
    findings: list[FsckFinding] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    #: Files that could not be repaired (no source, changed source,
    #: or a rebuild that failed to reproduce the manifest checksum).
    unrepaired: list[str] = field(default_factory=list)

    @property
    def damaged(self) -> list[FsckFinding]:
        return [f for f in self.findings if f.status in ("damaged", "missing")]

    @property
    def repaired(self) -> list[str]:
        return [f.file for f in self.findings if f.status == "repaired"]

    @property
    def unverifiable(self) -> list[FsckFinding]:
        return [f for f in self.findings if f.status == "unverifiable"]

    @property
    def ok(self) -> bool:
        """No unresolved damage (repaired files count as resolved)."""
        return not self.damaged

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.status] = out.get(finding.status, 0) + 1
        return out


def _manifest_files(manifest: dict) -> list[str]:
    files = [entry["file"] for entry in manifest["ssl_shards"].values()]
    files.extend(entry["file"] for entry in manifest["x509"]["files"])
    return files


def _file_meta(manifest: dict, filename: str) -> dict | None:
    for entry in manifest["ssl_shards"].values():
        if entry["file"] == filename:
            return entry
    for entry in manifest["x509"]["files"]:
        if entry["file"] == filename:
            return entry
    return None


def _check_file(store_dir: Path, filename: str, meta: dict) -> FsckFinding:
    """Verify one column file bottom to top: existence, manifest size
    and CRC, then every section against the file's own header."""
    path = store_dir / filename
    if not path.exists():
        return FsckFinding(filename, "missing", "listed in manifest, not on disk")
    if "crc32" not in meta:
        return FsckFinding(
            filename, "unverifiable", "legacy manifest records no checksum"
        )
    blob = path.read_bytes()
    if len(blob) != meta["bytes"]:
        return FsckFinding(
            filename,
            "damaged",
            f"size {len(blob)} != manifest {meta['bytes']} (truncated/torn)",
        )
    if zlib.crc32(blob) != meta["crc32"]:
        # Narrow it down with the in-file section checksums so the
        # operator sees *which column* rotted, when the header survives.
        try:
            sections = ColumnTable(blob, verify=False, name=filename).verify()
        except StoreFormatError as exc:
            return FsckFinding(filename, "damaged", str(exc))
        detail = (
            f"checksum mismatch in section(s): {', '.join(sections[:4])}"
            if sections
            else "file checksum mismatch (padding or header bytes)"
        )
        return FsckFinding(filename, "damaged", detail)
    try:
        bad_sections = ColumnTable(blob, verify=False, name=filename).verify()
    except StoreFormatError as exc:
        return FsckFinding(filename, "damaged", str(exc))
    if bad_sections:
        return FsckFinding(
            filename,
            "damaged",
            f"checksum mismatch in section(s): {', '.join(bad_sections[:4])}",
        )
    return FsckFinding(filename, "ok")


def _rebuild_payload(
    manifest: dict, filename: str, source_dir: Path
) -> bytes | None:
    """Re-pack one column file's bytes from the TSV archive, or None
    when the archive no longer matches the manifest's fingerprint."""
    from repro.zeek.files import TsvDirectorySource

    if not source_dir.is_dir():
        return None
    source = TsvDirectorySource(source_dir)
    if source.fingerprint() != manifest["source"]["fingerprint"]:
        return None
    opts = IngestOptions(on_error=manifest["options"]["on_error"])
    stem = filename[: -len(".col")] if filename.endswith(".col") else filename
    if stem.startswith("ssl-"):
        month = stem[len("ssl-"):]
        shard = source.read_month(month, opts)
        return pack_table("ssl", shard.ssl)
    if stem.startswith("x509-"):
        cert_month = stem[len("x509-"):]
        months = manifest["months"]
        if not months:
            return None
        # The x509 stream is shard-broadcast: any month's read carries
        # the full certificate stream, partitioned here exactly as
        # pack_archive partitions it.
        shard = source.read_month(months[0], opts)
        partition = [r for r in shard.x509 if month_of(r.ts) == cert_month]
        return pack_table("x509", partition)
    return None


def quarantine_file(store_dir: Path, filename: str) -> Path:
    """Move a damaged file into ``<store>/quarantine/`` (serial-suffixed
    if a previous incident already parked one). Caller must hold the
    store's exclusive lock."""
    quarantine = store_dir / QUARANTINE_DIR
    quarantine.mkdir(exist_ok=True)
    target = quarantine / filename
    serial = 1
    while target.exists():
        serial += 1
        target = quarantine / f"{filename}.{serial}"
    (store_dir / filename).replace(target)
    return target


def heal_file(
    store_dir: Path,
    filename: str,
    manifest: dict,
    *,
    source_dir: Path | str | None = None,
) -> bool:
    """Quarantine ``filename`` and rebuild it from the TSV source.

    Returns True only when the rebuilt bytes reproduce the manifest's
    recorded length and CRC32 exactly — a rebuild from a drifted
    archive is rejected rather than silently substituted. Takes the
    store's exclusive lock for the quarantine+publish step; the caller
    must not already hold any lock on this store.
    """
    store_dir = Path(store_dir)
    meta = _file_meta(manifest, filename)
    if meta is None or "crc32" not in meta:
        return False
    src = Path(source_dir) if source_dir else Path(
        manifest.get("source", {}).get("directory", "")
    )
    if not str(src):
        return False
    payload = _rebuild_payload(manifest, filename, src)
    if payload is None:
        return False
    if len(payload) != meta["bytes"] or zlib.crc32(payload) != meta["crc32"]:
        return False
    with store_lock(store_dir).exclusive(op=f"heal {filename}"):
        if (store_dir / filename).exists():
            quarantine_file(store_dir, filename)
        durable_write(store_dir / filename, payload)
    return True


def fsck(
    store: Path | str,
    *,
    source: Path | str | None = None,
    repair: bool = False,
) -> FsckResult:
    """Audit ``store``; with ``repair=True`` also quarantine and rebuild
    whatever can be rebuilt from the TSV archive.

    ``source`` overrides the archive directory recorded in the manifest
    (for stores whose archive has moved). Raises
    :class:`StoreFormatError` when the manifest itself is unreadable —
    there is nothing to audit against; repack instead.
    """
    store_dir = Path(store)
    manifest_path = store_dir / "manifest.json"
    try:
        with store_lock(store_dir).shared(op="fsck"):
            manifest_text = manifest_path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise StoreFormatError(
            f"no columnar store at {store} (missing manifest.json)"
        ) from None
    try:
        manifest = json.loads(manifest_text)
    except ValueError as exc:
        raise StoreFormatError(
            f"corrupt store manifest: {exc}; the manifest is the root of "
            "trust — repack the store (`repro pack`)"
        ) from None

    result = FsckResult(store=str(store_dir))
    legacy = manifest.get("format") != STORE_FORMAT
    with store_lock(store_dir).shared(op="fsck-scan"):
        for filename in _manifest_files(manifest):
            meta = _file_meta(manifest, filename) or {}
            if legacy:
                finding = (
                    FsckFinding(filename, "missing", "listed in manifest, not on disk")
                    if not (store_dir / filename).exists()
                    else FsckFinding(
                        filename, "unverifiable",
                        "legacy v1 store has no checksums; repack to upgrade",
                    )
                )
            else:
                finding = _check_file(store_dir, filename, meta)
            result.findings.append(finding)

    if repair:
        repaired_findings: list[FsckFinding] = []
        for finding in result.findings:
            if finding.status not in ("damaged", "missing"):
                repaired_findings.append(finding)
                continue
            was_present = (store_dir / finding.file).exists()
            if heal_file(
                store_dir, finding.file, manifest, source_dir=source
            ):
                if was_present:
                    result.quarantined.append(finding.file)
                repaired_findings.append(
                    FsckFinding(
                        finding.file, "repaired",
                        f"was: {finding.detail}" if finding.detail else "",
                    )
                )
            else:
                result.unrepaired.append(finding.file)
                repaired_findings.append(finding)
        result.findings = repaired_findings
    return result
