"""Store-native queries: headline analyses without record objects.

The streaming analyzer answers its queries by materializing every TSV
row into a record and folding it into mergeable state. Over a columnar
store the same answers fall out of the derived ``__flags__`` bitmap
column directly:

- per-month connection/mutual totals are ``bytes.count`` calls over the
  flags column (pure C) whenever a shard's rows share one calendar
  month — the overwhelmingly common layout, since shards *are* months;
- the TLS 1.3 blind spot adds one slim Python pass over the pooled IP
  index columns to build the distinct-endpoint sets.

Both queries return the exact objects (:class:`MonthlyShare` rows,
:class:`Tls13Blindspot`) a :class:`StreamingAnalyzer` fed the same
records would return — the equivalence the differential suite pins.
"""

from __future__ import annotations

from repro.core.prevalence import MonthlyShare, MonthlyShareState
from repro.core.tuples import Tls13Blindspot, Tls13State
from repro.store.codec import (
    FLAG_CLIENT_CHAIN,
    FLAG_ESTABLISHED,
    FLAG_SERVER_CHAIN,
    FLAG_TLS13,
)
from repro.store.source import ColumnarStoreSource

_MUTUAL = FLAG_ESTABLISHED | FLAG_SERVER_CHAIN | FLAG_CLIENT_CHAIN

#: Every flag byte value matching each predicate (the bitmap is 5 bits
#: wide, so exhaustive enumeration beats per-row tests by a mile).
_EST_VALUES = tuple(v for v in range(32) if v & FLAG_ESTABLISHED)
_MUTUAL_VALUES = tuple(v for v in _EST_VALUES if (v & _MUTUAL) == _MUTUAL)
_TLS13_VALUES = tuple(v for v in _EST_VALUES if v & FLAG_TLS13)


class StoreQueryEngine:
    """Answer the re-analysis headliners straight off the columns.

    Shard sections are fetched through
    :meth:`~repro.store.source.ColumnarStoreSource.serve` — the fetch
    closures copy the columns out and mutate nothing, so a lazily
    detected checksum failure heals (quarantine + rebuild from TSV) and
    refetches without ever exposing a damaged byte to the fold below.
    """

    def __init__(self, source: ColumnarStoreSource) -> None:
        self.source = source

    def _shard_columns(self, month: str, fetch):
        filename = self.source.manifest["ssl_shards"][month]["file"]
        return self.source.serve(filename, fetch)

    def monthly_mutual_share(self) -> list[MonthlyShare]:
        """The Figure 1 series (mTLS share per month, established only)."""
        state = MonthlyShareState()
        for month in self.source.months():
            rows, flags, month_idx, strings = self._shard_columns(
                month,
                lambda t: (
                    t.rows,
                    t.raw("__flags__"),
                    t.typed("__month__").tolist(),
                    t.pool(),
                ),
            )
            if not rows:
                continue
            distinct = set(month_idx)
            if len(distinct) == 1:
                # Single-label shard (the normal rotation layout):
                # everything is C-speed byte counting.
                label = strings[month_idx[0]]
                total = sum(flags.count(v) for v in _EST_VALUES)
                mutual = sum(flags.count(v) for v in _MUTUAL_VALUES)
                if total:
                    state.total[label] = state.total.get(label, 0) + total
                if mutual:
                    state.mutual[label] = state.mutual.get(label, 0) + mutual
            else:
                # Hand-rotated file carrying out-of-window rows: fall
                # back to exact per-row attribution.
                observe = state.observe
                for value, idx in zip(flags, month_idx):
                    if value & FLAG_ESTABLISHED:
                        observe(strings[idx], (value & _MUTUAL) == _MUTUAL)
        return state.rows()

    def tls13_blindspot(self) -> Tls13Blindspot:
        """The §3.3 blind-spot counters over the whole capture."""
        state = Tls13State()
        for month in self.source.months():
            rows, flags, resp, orig, strings = self._shard_columns(
                month,
                lambda t: (
                    t.rows,
                    t.raw("__flags__"),
                    t.typed("id_resp_h").tolist(),
                    t.typed("id_orig_h").tolist(),
                    t.pool(),
                ),
            )
            if not rows:
                continue
            state.total_connections += sum(flags.count(v) for v in _EST_VALUES)
            state.tls13_connections += sum(flags.count(v) for v in _TLS13_VALUES)
            # Distinct-endpoint sets are collected as pool indexes (small
            # ints) and translated to strings once per shard — pool
            # indexes are per-file, so the cross-shard union must be on
            # the strings themselves.
            servers: set[int] = set()
            clients: set[int] = set()
            servers13: set[int] = set()
            clients13: set[int] = set()
            for value, resp_idx, orig_idx in zip(flags, resp, orig):
                if value & FLAG_ESTABLISHED:
                    servers.add(resp_idx)
                    clients.add(orig_idx)
                    if value & FLAG_TLS13:
                        servers13.add(resp_idx)
                        clients13.add(orig_idx)
            state.server_ips |= {strings[i] for i in servers}
            state.client_ips |= {strings[i] for i in clients}
            state.tls13_server_ips |= {strings[i] for i in servers13}
            state.tls13_client_ips |= {strings[i] for i in clients13}
        return state.result()
