"""Parse-once columnar record store.

A rotated Zeek TSV archive is parsed once (``repro pack`` or
``--store``) into per-month column files — struct-packed fixed-width
columns over an interned string pool — committed by a JSON manifest
carrying the schema/codec version, row counts, the source archive's
content fingerprint, the ingest-policy identity, and the verbatim
per-shard ingest reports. Every later analysis memory-maps the columns
instead of re-parsing TSV, through the same
:class:`~repro.zeek.ingest.RecordSource` protocol the TSV reader
implements — results are byte-identical by construction and proven so
by the differential suite. See DESIGN.md §13.

Since store format v2, every column file carries per-section CRC32
checksums (verified on map), the manifest records every file's length
and CRC32, all writes are crash-consistent via
:mod:`repro.core.durable`, concurrent access is coordinated by an
advisory :func:`~repro.store.source.store_lock`, and ``repro fsck``
audits/repairs a store from its TSV source. See DESIGN.md §14.
"""

from repro.store.codec import (
    CODEC_VERSION,
    FLAG_CLIENT_CHAIN,
    FLAG_ESTABLISHED,
    FLAG_SERVER_CHAIN,
    FLAG_TLS13,
    FLAG_RESUMED,
    LEGACY_CODEC_VERSION,
    MAGIC,
    MAGIC_V1,
    NULL_INDEX,
    ColumnTable,
    StoreFormatError,
    StoreIntegrityError,
    pack_table,
)
from repro.store.fsck import FsckFinding, FsckResult, fsck, heal_file
from repro.store.pack import (
    LEGACY_STORE_FORMAT,
    MANIFEST_NAME,
    STORE_FORMAT,
    ensure_store,
    pack_archive,
)
from repro.store.query import StoreQueryEngine
from repro.store.source import ColumnarStoreSource, store_lock

__all__ = [
    "CODEC_VERSION",
    "FLAG_CLIENT_CHAIN",
    "FLAG_ESTABLISHED",
    "FLAG_SERVER_CHAIN",
    "FLAG_TLS13",
    "FLAG_RESUMED",
    "LEGACY_CODEC_VERSION",
    "LEGACY_STORE_FORMAT",
    "MAGIC",
    "MAGIC_V1",
    "MANIFEST_NAME",
    "NULL_INDEX",
    "STORE_FORMAT",
    "ColumnTable",
    "ColumnarStoreSource",
    "FsckFinding",
    "FsckResult",
    "StoreFormatError",
    "StoreIntegrityError",
    "StoreQueryEngine",
    "ensure_store",
    "fsck",
    "heal_file",
    "pack_archive",
    "pack_table",
    "store_lock",
]
