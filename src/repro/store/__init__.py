"""Parse-once columnar record store.

A rotated Zeek TSV archive is parsed once (``repro pack`` or
``--store``) into per-month column files — struct-packed fixed-width
columns over an interned string pool — committed by a JSON manifest
carrying the schema/codec version, row counts, the source archive's
content fingerprint, the ingest-policy identity, and the verbatim
per-shard ingest reports. Every later analysis memory-maps the columns
instead of re-parsing TSV, through the same
:class:`~repro.zeek.ingest.RecordSource` protocol the TSV reader
implements — results are byte-identical by construction and proven so
by the differential suite. See DESIGN.md §13.
"""

from repro.store.codec import (
    CODEC_VERSION,
    FLAG_CLIENT_CHAIN,
    FLAG_ESTABLISHED,
    FLAG_SERVER_CHAIN,
    FLAG_TLS13,
    FLAG_RESUMED,
    MAGIC,
    NULL_INDEX,
    ColumnTable,
    StoreFormatError,
    pack_table,
)
from repro.store.pack import MANIFEST_NAME, STORE_FORMAT, ensure_store, pack_archive
from repro.store.query import StoreQueryEngine
from repro.store.source import ColumnarStoreSource

__all__ = [
    "CODEC_VERSION",
    "FLAG_CLIENT_CHAIN",
    "FLAG_ESTABLISHED",
    "FLAG_SERVER_CHAIN",
    "FLAG_TLS13",
    "FLAG_RESUMED",
    "MAGIC",
    "MANIFEST_NAME",
    "NULL_INDEX",
    "STORE_FORMAT",
    "ColumnTable",
    "ColumnarStoreSource",
    "StoreFormatError",
    "StoreQueryEngine",
    "ensure_store",
    "pack_archive",
    "pack_table",
]
