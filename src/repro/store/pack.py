"""Packing: turn a rotated TSV archive into a columnar store.

``pack_archive`` parses the archive exactly once — through the same
:class:`~repro.zeek.files.TsvDirectorySource` every analysis uses — and
writes one ``.col`` file per ssl shard plus one per x509 calendar month,
committed by a ``manifest.json`` that records the store format, codec
version, the ingest-policy identity the records were parsed under, the
source archive's content fingerprint, the verbatim per-shard ingest
reports, and — since store format v2 — every file's byte length and
CRC32, so ``repro fsck`` can audit a store without trusting it.

Durability: every file goes through
:func:`repro.core.durable.durable_write` (temp file + fsync + atomic
rename + directory fsync), the manifest is written last, and the whole
pack runs under the store's exclusive :func:`~repro.store.source.store_lock`
— so a crashed or racing pack never leaves a store that *looks*
complete, and two concurrent packs serialize instead of interleaving.
``ensure_store`` is the idempotent front door: it reuses a matching
store and transparently repacks a stale, corrupt, legacy-format, or
policy-mismatched one.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

from repro.core import tracing
from repro.core.durable import durable_write, sweep_orphans
from repro.core.locks import LockTimeout
from repro.store.codec import CODEC_VERSION, StoreFormatError, month_of, pack_table
from repro.store.source import (
    LEGACY_STORE_FORMAT,
    STORE_FORMAT,
    ColumnarStoreSource,
    store_lock,
)
from repro.zeek.files import TsvDirectorySource
from repro.zeek.ingest import IngestOptions

__all__ = [
    "STORE_FORMAT",
    "LEGACY_STORE_FORMAT",
    "MANIFEST_NAME",
    "pack_archive",
    "ensure_store",
]

MANIFEST_NAME = "manifest.json"


def _file_meta(payload: bytes) -> dict:
    """The integrity fields the v2 manifest records per column file."""
    return {"bytes": len(payload), "crc32": zlib.crc32(payload)}


def pack_archive(
    directory: Path | str,
    store: Path | str,
    options: IngestOptions | None = None,
) -> ColumnarStoreSource:
    """Parse a rotated TSV archive once and write it as a columnar store.

    The store is self-contained: months, rows, ingest reports, file
    checksums, and the archive fingerprint all live in the manifest, so
    later analyses can run — and ``repro fsck`` can audit — from the
    store alone. The manifest is written last (durably), so a crashed
    pack never leaves a store that looks complete; the exclusive store
    lock is held for the whole pack, so concurrent packs serialize and
    readers never map a file mid-publish.
    """
    opts = IngestOptions.coerce(options)
    source = TsvDirectorySource(directory)
    store_dir = Path(store)
    store_dir.mkdir(parents=True, exist_ok=True)

    with tracing.span("store.pack"), store_lock(store_dir).exclusive(op="pack"):
        # A previously killed pack may have left orphaned temp files;
        # under the exclusive lock no other writer can be mid-write.
        sweep_orphans(store_dir)
        fingerprint = source.fingerprint()
        ssl_shards: dict[str, dict] = {}
        x509_meta: dict | None = None
        for month in source.months():
            shard = source.read_month(month, opts)
            filename = f"ssl-{month}.col"
            payload = pack_table("ssl", shard.ssl)
            durable_write(store_dir / filename, payload)
            ssl_shards[month] = {
                "file": filename,
                "rows": len(shard.ssl),
                "report": shard.ssl_report.to_dict(),
                **_file_meta(payload),
            }
            if x509_meta is None:
                # The x509 stream (and its report) is identical for every
                # shard — it is broadcast, not partitioned. Pack it once,
                # split by calendar month so large stores stay granular.
                partitions: dict[str, list] = {}
                for record in shard.x509:
                    partitions.setdefault(month_of(record.ts), []).append(record)
                files = []
                for cert_month in sorted(partitions):
                    cert_file = f"x509-{cert_month}.col"
                    cert_payload = pack_table("x509", partitions[cert_month])
                    durable_write(store_dir / cert_file, cert_payload)
                    files.append(
                        {
                            "month": cert_month,
                            "file": cert_file,
                            "rows": len(partitions[cert_month]),
                            **_file_meta(cert_payload),
                        }
                    )
                x509_meta = {
                    "files": files,
                    "rows": len(shard.x509),
                    "report": shard.x509_report.to_dict(),
                }
        if x509_meta is None:
            x509_meta = {"files": [], "rows": 0, "report": None}

        manifest = {
            "format": STORE_FORMAT,
            "codec": CODEC_VERSION,
            "source": {
                "directory": str(Path(directory).resolve()),
                "identity": source.identity(),
                "fingerprint": fingerprint,
            },
            "options": opts.identity(),
            "months": list(source.months()),
            "ssl_shards": ssl_shards,
            "x509": x509_meta,
        }
        durable_write(
            store_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
    # The reader below takes its own shared lock; construct it only
    # after the exclusive scope above is released (flock treats two fds
    # of one process as independent lockers — nesting would deadlock).
    return ColumnarStoreSource(store_dir)


def ensure_store(
    directory: Path | str,
    store: Path | str,
    options: IngestOptions | None = None,
) -> ColumnarStoreSource:
    """Open a store for ``directory``, packing (or repacking) if needed.

    A store is reused only when its manifest carries the current store
    format and codec version, the same ingest-policy identity, and the
    archive's current content fingerprint — any mismatch (including a
    byte-level edit to any log file, or a legacy un-checksummed v1
    store) triggers a transparent repack. On reuse, orphaned temp files
    from a previously killed writer are swept opportunistically (only
    if the exclusive lock is free — never under a live writer).
    """
    opts = IngestOptions.coerce(options)
    store_dir = Path(store)
    if (store_dir / MANIFEST_NAME).exists():
        try:
            existing = ColumnarStoreSource(store_dir)
        except (StoreFormatError, OSError, ValueError, KeyError):
            existing = None
        if existing is not None:
            if existing.matches(
                fingerprint=TsvDirectorySource(directory).fingerprint(),
                options=opts,
            ):
                try:
                    with store_lock(store_dir).exclusive(timeout=0, op="sweep"):
                        sweep_orphans(store_dir)
                except LockTimeout:
                    pass  # a writer or reader is active; sweep next time
                return existing
    return pack_archive(directory, store_dir, opts)
