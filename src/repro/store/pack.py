"""Packing: turn a rotated TSV archive into a columnar store.

``pack_archive`` parses the archive exactly once — through the same
:class:`~repro.zeek.files.TsvDirectorySource` every analysis uses — and
writes one ``.col`` file per ssl shard plus one per x509 calendar month,
committed by a ``manifest.json`` that records the store format, codec
version, the ingest-policy identity the records were parsed under, the
source archive's content fingerprint, and the verbatim per-shard ingest
reports. ``ensure_store`` is the idempotent front door: it reuses a
matching store and transparently repacks a stale, corrupt, or
policy-mismatched one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.core import tracing
from repro.store.codec import CODEC_VERSION, StoreFormatError, month_of, pack_table
from repro.store.source import ColumnarStoreSource
from repro.zeek.files import TsvDirectorySource
from repro.zeek.ingest import IngestOptions

STORE_FORMAT = "columnar-store/v1"
MANIFEST_NAME = "manifest.json"


def _write_atomic(path: Path, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def pack_archive(
    directory: Path | str,
    store: Path | str,
    options: IngestOptions | None = None,
) -> ColumnarStoreSource:
    """Parse a rotated TSV archive once and write it as a columnar store.

    The store is self-contained: months, rows, ingest reports, and the
    archive fingerprint all live in the manifest, so later analyses can
    run from the store alone. The manifest is written last (atomically),
    so a crashed pack never leaves a store that looks complete.
    """
    opts = IngestOptions.coerce(options)
    source = TsvDirectorySource(directory)
    store_dir = Path(store)
    store_dir.mkdir(parents=True, exist_ok=True)

    with tracing.span("store.pack"):
        fingerprint = source.fingerprint()
        ssl_shards: dict[str, dict] = {}
        x509_meta: dict | None = None
        for month in source.months():
            shard = source.read_month(month, opts)
            filename = f"ssl-{month}.col"
            _write_atomic(
                store_dir / filename, pack_table("ssl", shard.ssl)
            )
            ssl_shards[month] = {
                "file": filename,
                "rows": len(shard.ssl),
                "report": shard.ssl_report.to_dict(),
            }
            if x509_meta is None:
                # The x509 stream (and its report) is identical for every
                # shard — it is broadcast, not partitioned. Pack it once,
                # split by calendar month so large stores stay granular.
                partitions: dict[str, list] = {}
                for record in shard.x509:
                    partitions.setdefault(month_of(record.ts), []).append(record)
                files = []
                for cert_month in sorted(partitions):
                    cert_file = f"x509-{cert_month}.col"
                    _write_atomic(
                        store_dir / cert_file,
                        pack_table("x509", partitions[cert_month]),
                    )
                    files.append(
                        {
                            "month": cert_month,
                            "file": cert_file,
                            "rows": len(partitions[cert_month]),
                        }
                    )
                x509_meta = {
                    "files": files,
                    "rows": len(shard.x509),
                    "report": shard.x509_report.to_dict(),
                }
        if x509_meta is None:
            x509_meta = {"files": [], "rows": 0, "report": None}

        manifest = {
            "format": STORE_FORMAT,
            "codec": CODEC_VERSION,
            "source": {
                "directory": str(Path(directory).resolve()),
                "identity": source.identity(),
                "fingerprint": fingerprint,
            },
            "options": opts.identity(),
            "months": list(source.months()),
            "ssl_shards": ssl_shards,
            "x509": x509_meta,
        }
        _write_atomic(
            store_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
    return ColumnarStoreSource(store_dir)


def ensure_store(
    directory: Path | str,
    store: Path | str,
    options: IngestOptions | None = None,
) -> ColumnarStoreSource:
    """Open a store for ``directory``, packing (or repacking) if needed.

    A store is reused only when its manifest carries the current store
    format and codec version, the same ingest-policy identity, and the
    archive's current content fingerprint — any mismatch (including a
    byte-level edit to any log file) triggers a transparent repack.
    """
    opts = IngestOptions.coerce(options)
    store_dir = Path(store)
    if (store_dir / MANIFEST_NAME).exists():
        try:
            existing = ColumnarStoreSource(store_dir)
        except (StoreFormatError, OSError, ValueError, KeyError):
            existing = None
        if existing is not None:
            if existing.matches(
                fingerprint=TsvDirectorySource(directory).fingerprint(),
                options=opts,
            ):
                return existing
    return pack_archive(directory, store_dir, opts)
