"""Command-line interface.

Subcommands::

    python -m repro generate  --out DIR [--months N] [--cpm N] [--seed N]
                              [--rotated]
    python -m repro study     [--months N] [--cpm N] [--seed N] [--table NAME]
                              [--jobs N] [--fast-path MODE] [--store DIR]
    python -m repro analyze   DIR --trust-bundle FILE [--jobs N]
                              [--table NAME] [--json] [--degrade POLICY]
                              [--max-attempts N] [--shard-timeout S]
                              [--resume DIR] [--fast-path MODE] [--store DIR]
    python -m repro pack      DIR --out STORE [--on-error POLICY]
    python -m repro fsck      STORE [--source DIR] [--repair]
    python -m repro audit     X509_LOG [--campus-marker TEXT]
                              [--fast-path MODE]
    python -m repro intercept SSL_LOG X509_LOG --trust-bundle FILE
                              [--min-domains N] [--fast-path MODE]
    python -m repro serve     DIR --trust-bundle FILE [--host H] [--port P]
                              [--checkpoint FILE] [--resume]
                              [--overload-rows N]
    python -m repro scenario  list | describe NAME |
                              generate [NAME] [--spec FILE] --out DIR
                              [--months N] [--cpm N] [--scale F] [--seed N]
                              [--rotated] [--verify]

`generate` writes Zeek-format ssl.log / x509.log plus a trust-bundle
file, so `intercept`, `audit`, and (with ``--rotated``) `analyze` can
be exercised on the artifacts — the same flow an operator would use
with real Zeek output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import metrics as core_metrics
from repro.core import tracing
from repro.core.cnsan import CnSanClassifier
from repro.core.dataset import MtlsDataset
from repro.core.enrich import Enricher
from repro.core.report import render_ingest_health
from repro.core.study import CampusStudy
from repro.core.supervisor import CampaignDegradedError
from repro.netsim import FaultPlan, ScenarioConfig, TrafficGenerator
from repro.trust import TrustBundle
from repro.zeek import (
    ErrorPolicy,
    FastPath,
    IngestOptions,
    IngestReport,
    TsvFormatError,
    read_ssl_log,
    read_x509_log,
    write_ssl_log,
    write_x509_log,
)

#: Exit status of a PARTIAL campaign that lost months to quarantine.
EXIT_DEGRADED = 4

#: Exit status of `repro fsck` when damage was found and not repaired.
EXIT_CORRUPT = 5


def _table_choices() -> list[str]:
    """Registry analysis names plus the CLI-only health views."""
    from repro.core import protocol

    return sorted(
        set(protocol.analysis_names())
        | {"ingest-health", "run-health", "run-metrics"}
    )


#: Declarative registry of every shared flag: one place to define a
#: flag, one :func:`_options_parent` call per subcommand to pick the
#: groups it wants. New shared flags (``--store``) land on every consumer
#: at once instead of being copy-pasted into per-flag parent builders.
_FLAG_SPECS: dict[str, tuple[tuple[str, ...], dict]] = {
    "months": (("--months",), dict(type=int, default=23)),
    "cpm": (("--cpm",), dict(type=int, default=1000,
                             help="connections per month")),
    "seed": (("--seed",), dict(type=int, default=7)),
    "on-error": (("--on-error",), dict(
        choices=[p.value for p in ErrorPolicy], default="strict",
        help="malformed-line policy: fail fast (strict), drop and count "
             "(skip), or drop and capture raw lines (quarantine)",
    )),
    "fast-path": (("--fast-path",), dict(
        choices=[m.value for m in FastPath], default="auto",
        help="ingest/enrich fast path: compiled row decoders plus the "
             "per-certificate fact cache. Results are byte-identical "
             "either way; 'off' is the reference path, 'auto' (default) "
             "enables it",
    )),
    "jobs": (("--jobs",), dict(
        type=int, default=0, metavar="N",
        help="analyze per-month shards over N worker processes "
             "(0 = in-process sequential; tables are byte-identical)",
    )),
    "pipeline": (("--pipeline",), dict(
        choices=["on", "off", "auto"], default="auto",
        help="intra-shard pipelining: decode ssl batches on a reader "
             "thread while the shard enriches/analyzes them (sharded "
             "path only; results are byte-identical either way; 'auto' "
             "(default) enables it whenever the source streams)",
    )),
    "store": (("--store",), dict(
        type=Path, default=None, metavar="DIR",
        help="columnar record store: pack the archive into DIR on first "
             "use, then analyze from the memory-mapped columns instead "
             "of re-parsing TSV (results are byte-identical; the store "
             "is repacked automatically when the archive changes)",
    )),
    "metrics": (("--metrics",), dict(
        choices=["json", "table"], default=None,
        help="append run metrics to the output: 'table' prints the Run "
             "metrics section, 'json' prints one machine-readable JSON "
             "line (always the last line of stdout)",
    )),
    "trace": (("--trace",), dict(
        type=Path, default=None, metavar="FILE",
        help="append one JSONL trace event per pipeline phase to FILE "
             "(workers append to the same file)",
    )),
    "degrade": (("--degrade",), dict(
        choices=["strict", "partial"], default="strict",
        help="poison-shard policy: abort the campaign (strict) or complete "
             "it from the surviving months and exit %d (partial)"
             % EXIT_DEGRADED,
    )),
    "max-attempts": (("--max-attempts",), dict(
        type=int, default=3, metavar="N",
        help="attempts per shard per phase before quarantine (default 3)",
    )),
    "shard-timeout": (("--shard-timeout",), dict(
        type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per shard attempt; a worker that blows it "
             "is killed and the shard retried (default: unlimited)",
    )),
    "resume": (("--resume",), dict(
        type=Path, default=None, metavar="DIR",
        help="crash-safe run directory: completed shards are spilled here "
             "as they finish, and a rerun pointed at the same directory "
             "skips them",
    )),
}

#: Flag groups, named for what a subcommand is doing when it needs them.
_SCALE = ("months", "cpm", "seed")
_INGEST = ("on-error", "fast-path")
_SHARDED = ("jobs", "store", "pipeline")
_SUPERVISION = ("degrade", "max-attempts", "shard-timeout", "resume")
_OBSERVABILITY = ("metrics", "trace")


def _options_parent(*flags: str, **overrides: dict) -> argparse.ArgumentParser:
    """Build an argparse parent from registry flag names.

    ``overrides`` patches a flag's spec per consumer (keyed by the flag
    name with ``-`` as ``_``), e.g. ``on_error={"default": "skip"}`` for
    ``serve``'s lenient default.
    """
    parent = argparse.ArgumentParser(add_help=False)
    for key in flags:
        names, kwargs = _FLAG_SPECS[key]
        patch = overrides.get(key.replace("-", "_"))
        if patch:
            kwargs = {**kwargs, **patch}
        parent.add_argument(*names, **kwargs)
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mutual TLS in Practice (IMC 2024) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="simulate a campaign and write Zeek-format logs",
        parents=[_options_parent(*_SCALE)],
    )
    generate.add_argument("--out", type=Path, required=True, help="output directory")
    generate.add_argument(
        "--rotated", action="store_true",
        help="write a rotated monthly archive (ssl.YYYY-MM.log.gz) instead "
             "of single ssl.log/x509.log files",
    )

    study = sub.add_parser(
        "study", help="run the full study and print tables",
        parents=[_options_parent(
            *_SCALE, *_INGEST, *_SHARDED, *_OBSERVABILITY
        )],
    )
    study.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="corrupt ~RATE of the serialized log lines before re-ingesting "
             "(exercises the resilient reader; implies a re-ingest pass)",
    )
    study.add_argument(
        "--table", choices=_table_choices(), default=None,
        help="print one artifact instead of all",
    )
    study.add_argument(
        "--json", action="store_true",
        help="emit the whole study as JSON instead of text tables",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run every registered analysis over a rotated Zeek archive",
        parents=[_options_parent(
            *_INGEST, *_SHARDED, *_SUPERVISION, *_OBSERVABILITY
        )],
    )
    analyze.add_argument("directory", type=Path,
                         help="directory of ssl.YYYY-MM.log[.gz] files")
    analyze.add_argument(
        "--trust-bundle", type=Path, required=True,
        help="file with one trusted issuer DN per line ('org:<name>' lines "
             "add trusted organizations)",
    )
    analyze.add_argument(
        "--table", choices=_table_choices(), default=None,
        help="print one artifact instead of all",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the analyses as JSON instead of text tables",
    )
    analyze.add_argument(
        "--inject-crash", action="append", default=[], metavar="MONTH",
        help="chaos testing: crash any worker the given month's shard "
             "lands on (repeatable)",
    )

    pack = sub.add_parser(
        "pack",
        help="parse a rotated archive once into a columnar record store",
        parents=[_options_parent(*_INGEST)],
    )
    pack.add_argument("directory", type=Path,
                      help="directory of ssl.YYYY-MM.log[.gz] files")
    pack.add_argument(
        "--out", type=Path, required=True, metavar="DIR",
        help="store directory (reused as-is when it already matches the "
             "archive fingerprint and ingest policy)",
    )

    fsck = sub.add_parser(
        "fsck",
        help="verify a columnar store's checksums; optionally quarantine "
             "and rebuild damaged files from the TSV source",
    )
    fsck.add_argument("store", type=Path, help="store directory to audit")
    fsck.add_argument(
        "--source", type=Path, default=None, metavar="DIR",
        help="TSV archive to rebuild from (default: the directory the "
             "store's manifest records)",
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine damaged files and rebuild them; a rebuild is "
             "accepted only if it reproduces the manifest checksum exactly",
    )

    audit = sub.add_parser(
        "audit", help="privacy audit of an x509.log",
        parents=[_options_parent(*_INGEST)],
    )
    audit.add_argument("x509_log", type=Path)
    audit.add_argument(
        "--campus-marker", default="university",
        help="issuer substring identifying campus-managed CAs",
    )

    intercept = sub.add_parser(
        "intercept", help="run the §3.2 interception filter on Zeek logs",
        parents=[_options_parent(*_INGEST)],
    )
    intercept.add_argument("ssl_log", type=Path)
    intercept.add_argument("x509_log", type=Path)
    intercept.add_argument(
        "--trust-bundle", type=Path, required=True,
        help="file with one trusted issuer DN per line ('org:<name>' lines "
             "add trusted organizations)",
    )
    intercept.add_argument("--min-domains", type=int, default=5)

    scenario = sub.add_parser(
        "scenario",
        help="work with the composable scenario library (list / describe "
             "/ generate)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list the library scenarios")
    describe = scenario_sub.add_parser(
        "describe", help="show a scenario's layers and planted cohorts"
    )
    describe.add_argument(
        "scenario", help="library scenario name or path to a .toml/.json spec"
    )
    sc_generate = scenario_sub.add_parser(
        "generate",
        help="run a scenario and write Zeek logs + planted ground truth",
    )
    sc_generate.add_argument(
        "scenario", nargs="?", default=None,
        help="library scenario name (or use --spec for a file)",
    )
    sc_generate.add_argument(
        "--spec", type=Path, default=None, metavar="FILE",
        help="path to a .toml/.json scenario spec (overrides the name)",
    )
    sc_generate.add_argument("--out", type=Path, required=True,
                             help="output directory")
    sc_generate.add_argument(
        "--months", type=int, default=None,
        help="override the campaign length (event months are rescaled)",
    )
    sc_generate.add_argument(
        "--cpm", type=int, default=None,
        help="pin every site to this many connections per month",
    )
    sc_generate.add_argument(
        "--scale", type=float, default=None,
        help="multiply each site's own connections-per-month",
    )
    sc_generate.add_argument("--seed", type=int, default=None,
                             help="override the scenario seed")
    sc_generate.add_argument(
        "--rotated", action="store_true",
        help="write a rotated monthly archive (ssl.YYYY-MM.log.gz) instead "
             "of single ssl.log/x509.log files",
    )
    sc_generate.add_argument(
        "--verify", action="store_true",
        help="run the ground-truth verification suite on the generated "
             "logs and fail if any check does (slower: runs every analysis)",
    )

    compare = sub.add_parser(
        "compare", help="diff two JSON study exports (from `study --json`)"
    )
    compare.add_argument("export_a", type=Path)
    compare.add_argument("export_b", type=Path)

    serve = sub.add_parser(
        "serve",
        help="tail a live Zeek log directory and serve the analyses "
             "over a local JSON API",
        # A long-running monitor should survive a malformed line and
        # account for it, so lenient ingest is serve's default.
        parents=[_options_parent(
            *_INGEST, *_OBSERVABILITY, on_error={"default": "skip"},
        )],
    )
    serve.add_argument("directory", type=Path,
                       help="directory holding the live ssl.log / x509.log")
    serve.add_argument(
        "--trust-bundle", type=Path, required=True,
        help="file with one trusted issuer DN per line ('org:<name>' lines "
             "add trusted organizations)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="API bind address (default loopback)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="API port (default 0 = pick a free port; the chosen port is "
             "printed on startup)",
    )
    serve.add_argument(
        "--checkpoint", type=Path, default=None, metavar="FILE",
        help="checkpoint file (default DIR/livetail-checkpoint.json)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECONDS",
        help="seconds between scheduled checkpoints (default 30)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.05, metavar="SECONDS",
        help="idle sleep between directory polls (default 0.05)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="restore tail positions and aggregates from the checkpoint "
             "file before serving (fresh start if it is absent)",
    )
    serve.add_argument(
        "--min-domains", type=int, default=5,
        help="interception filter threshold (see `intercept`)",
    )
    serve.add_argument(
        "--max-fuid-map", type=int, default=None, metavar="N",
        help="bound the fuid→certificate join map to N entries (LRU)",
    )
    serve.add_argument(
        "--overload-rows", type=int, default=0, metavar="N",
        help="admission control: switch hot tables to reservoir sampling "
             "when a poll delivers more than N established connections "
             "(0 = never sample; every row is exact)",
    )
    serve.add_argument(
        "--overload-clear-rows", type=int, default=None, metavar="N",
        help="leave sampling once a poll delivers at most N established "
             "connections (default: half of --overload-rows)",
    )
    serve.add_argument(
        "--reservoir", type=int, default=4096, metavar="N",
        help="reservoir size per sampling window (default 4096)",
    )
    serve.add_argument(
        "--sample-table", action="append", default=None, metavar="NAME",
        help="table switched to sampling under overload (repeatable; "
             "default: the volume-heavy distribution tables)",
    )
    return parser


def _print_ingest_health(report: IngestReport, dangling: int | None = None) -> None:
    print(render_ingest_health(report, dangling_fuid_refs=dangling).render())


def _emit_metrics(mode: str | None, registry) -> None:
    """Append the run metrics to stdout. In ``json`` mode the document
    is one line and always the *last* line, so scripts can parse it with
    ``tail -n 1``."""
    if mode == "table":
        print(registry.render().render())
    elif mode == "json":
        print(json.dumps(registry.state_dict(), sort_keys=True))


def _write_trust_bundle(bundle: TrustBundle, path: Path) -> None:
    with path.open("w") as out:
        for dn in sorted(bundle.subject_dns):
            out.write(dn + "\n")
        for org in sorted(bundle.organizations):
            out.write(f"org:{org}\n")


def load_trust_bundle(path: Path) -> TrustBundle:
    """Parse a trust-bundle file written by `generate` (or by hand)."""
    dns: set[str] = set()
    orgs: set[str] = set()
    with path.open() as source:
        for line in source:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            if line.startswith("org:"):
                orgs.add(line[4:])
            else:
                dns.add(line)
    return TrustBundle(frozenset(dns), frozenset(orgs))


def cmd_generate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        seed=args.seed, months=args.months, connections_per_month=args.cpm
    )
    result = TrafficGenerator(config).generate()
    args.out.mkdir(parents=True, exist_ok=True)
    if getattr(args, "rotated", False):
        from repro.zeek.files import write_rotated_logs

        written = write_rotated_logs(result.logs, args.out)
        _write_trust_bundle(result.trust_bundle, args.out / "trust_bundle.txt")
        print(
            f"wrote {len(written)} rotated log files "
            f"({len(result.logs.ssl)} ssl rows, {len(result.logs.x509)} x509 "
            f"rows) and trust_bundle.txt to {args.out}"
        )
        return 0
    with (args.out / "ssl.log").open("w") as out:
        write_ssl_log(result.logs.ssl, out)
    with (args.out / "x509.log").open("w") as out:
        write_x509_log(result.logs.x509, out)
    _write_trust_bundle(result.trust_bundle, args.out / "trust_bundle.txt")
    print(
        f"wrote {len(result.logs.ssl)} ssl.log rows, "
        f"{len(result.logs.x509)} x509.log rows, and trust_bundle.txt "
        f"to {args.out}"
    )
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    if args.fault_rate < 0:
        print("error: --fault-rate must be non-negative", file=sys.stderr)
        return 2
    fault_plan = (
        FaultPlan.uniform(args.fault_rate, seed=args.seed)
        if args.fault_rate > 0 else None
    )
    if fault_plan is not None and args.on_error == "strict":
        print(
            "warning: --fault-rate with --on-error strict will abort on the "
            "first planted fault", file=sys.stderr,
        )
    jobs = getattr(args, "jobs", 0)
    if fault_plan is not None and jobs:
        print(
            "error: --fault-rate is incompatible with --jobs (fault "
            "injection runs on the in-memory serialized logs)",
            file=sys.stderr,
        )
        return 2
    store = getattr(args, "store", None)
    if store is not None and not jobs:
        print(
            "error: --store requires --jobs >= 1 (the columnar store "
            "backs the sharded path)",
            file=sys.stderr,
        )
        return 2
    if args.trace is not None:
        tracing.configure(args.trace)
    study = CampusStudy(
        seed=args.seed, months=args.months, connections_per_month=args.cpm,
        fault_plan=fault_plan, jobs=jobs,
        options=IngestOptions(on_error=args.on_error, fast_path=args.fast_path),
        store=store,
        pipeline=getattr(args, "pipeline", None),
    )
    if getattr(args, "json", False):
        from repro.core.export import study_to_json

        print(study_to_json(study))
        _emit_study_metrics(args.metrics, study)
        return 0
    if args.table is not None:
        print(_study_table(study, args.table).render())
        _emit_study_metrics(args.metrics, study)
        return 0
    for table in study.all_tables():
        print(table.render())
        print()
    _emit_study_metrics(args.metrics, study)
    return 0


def _study_table(study: CampusStudy, name: str):
    if name == "ingest-health":
        return study.ingest_health()
    if name == "run-metrics":
        return study.run_metrics()
    return study.table(name)


def _emit_study_metrics(mode: str | None, study: CampusStudy) -> None:
    if mode is None:
        return
    study.partials()  # ensure the pipeline (and its metrics) ran
    _emit_metrics(mode, study.metrics)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.parallel import analyze_directory
    from repro.core.report import render_ingest_health as _render
    from repro.core.report import render_run_health
    from repro.core.supervisor import RetryPolicy

    fault_plan = None
    if args.inject_crash:
        from repro.netsim import WorkerFaultPlan

        fault_plan = WorkerFaultPlan(crash_months=tuple(args.inject_crash))
    if args.trace is not None:
        tracing.configure(args.trace)
    bundle = load_trust_bundle(args.trust_bundle)
    campaign = analyze_directory(
        args.directory,
        bundle=bundle,
        options=IngestOptions(on_error=args.on_error, fast_path=args.fast_path),
        store=args.store,
        jobs=max(1, args.jobs),
        retry=RetryPolicy(
            max_attempts=args.max_attempts, timeout=args.shard_timeout
        ),
        degrade=args.degrade,
        fault_plan=fault_plan,
        resume_dir=args.resume,
        trace_path=args.trace,
        pipeline=getattr(args, "pipeline", "auto"),
    )
    health = campaign.health
    run_metrics = campaign.metrics or core_metrics.MetricsRegistry()

    def health_epilogue() -> int:
        """Degraded coverage must never exit 0 or pass silently."""
        if health is None or not health.degraded:
            return 0
        print(f"warning: campaign degraded: {health.summary()}", file=sys.stderr)
        return EXIT_DEGRADED

    if getattr(args, "json", False):
        from repro.core.export import export_tables_json

        print(export_tables_json(campaign))
        _emit_metrics(args.metrics, run_metrics)
        return health_epilogue()
    if args.table is not None:
        if args.table == "ingest-health":
            print(_render(
                campaign.ingest, dangling_fuid_refs=campaign.dangling_fuid_refs
            ).render())
        elif args.table == "run-health":
            print(render_run_health(health).render())
        elif args.table == "run-metrics":
            print(run_metrics.render().render())
        else:
            print(campaign.table(args.table).render())
        _emit_metrics(args.metrics, run_metrics)
        return health_epilogue()
    for table in campaign.tables():
        print(table.render())
        print()
    if args.on_error != "strict":
        _print_ingest_health(campaign.ingest, campaign.dangling_fuid_refs)
    if health is not None and not health.clean:
        print(render_run_health(health).render())
    _emit_metrics(args.metrics, run_metrics)
    return health_epilogue()


def cmd_pack(args: argparse.Namespace) -> int:
    from repro.store import MANIFEST_NAME, ensure_store

    options = IngestOptions(on_error=args.on_error, fast_path=args.fast_path)
    manifest = args.out / MANIFEST_NAME
    before = manifest.stat().st_mtime_ns if manifest.exists() else None
    source = ensure_store(args.directory, args.out, options)
    reused = before is not None and manifest.stat().st_mtime_ns == before
    ssl_rows = sum(
        shard["rows"] for shard in source.manifest["ssl_shards"].values()
    )
    print(
        f"{'reused' if reused else 'packed'} store at {args.out}: "
        f"{len(source.months())} months, {ssl_rows} ssl rows, "
        f"{source.manifest['x509']['rows']} x509 rows"
    )
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.core.report import render_fsck
    from repro.store import StoreFormatError, fsck

    try:
        result = fsck(args.store, source=args.source, repair=args.repair)
    except StoreFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_fsck(result).render())
    if not result.ok:
        if not args.repair:
            print(
                "hint: re-run with --repair to quarantine and rebuild from "
                "the TSV source",
                file=sys.stderr,
            )
        return EXIT_CORRUPT
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    report = IngestReport()
    options = IngestOptions(on_error=args.on_error, fast_path=args.fast_path)
    with args.x509_log.open() as source:
        records = read_x509_log(
            source, options.for_path(str(args.x509_log), report)
        )
    classifier = CnSanClassifier(campus_issuer_markers=(args.campus_marker,))
    sensitive = ("PersonalName", "UserAccount", "Email", "MAC")
    findings = 0
    for record in records:
        values = [("CN", record.subject_cn)] if record.subject_cn else []
        values.extend(("SAN", v) for v in record.san_dns)
        for fieldname, value in values:
            info_type = classifier.classify(value, record.issuer_org, record.issuer_cn)
            if info_type in sensitive:
                findings += 1
                print(f"[{info_type}] {fieldname}={value!r} "
                      f"(issuer: {record.issuer_org or '(missing)'})")
    print(f"{findings} sensitive values across {len(records)} certificates")
    if args.on_error != "strict":
        _print_ingest_health(report)
    return 0 if findings == 0 else 2


def cmd_intercept(args: argparse.Namespace) -> int:
    report = IngestReport()
    options = IngestOptions(on_error=args.on_error, fast_path=args.fast_path)
    with args.ssl_log.open() as source:
        ssl = read_ssl_log(source, options.for_path(str(args.ssl_log), report))
    with args.x509_log.open() as source:
        x509 = read_x509_log(
            source, options.for_path(str(args.x509_log), report)
        )
    bundle = load_trust_bundle(args.trust_bundle)

    # Without a live CT client, reconstruct the 'genuine issuer per
    # domain' ledger from the trusted (public-CA) observations in the
    # logs themselves — the best an offline operator can do.
    class LogDerivedCt:
        def __init__(self) -> None:
            self._issuers: dict[str, list[str]] = {}

        def add(self, domain: str, issuer: str) -> None:
            issuers = self._issuers.setdefault(domain.lower(), [])
            if issuer not in issuers:
                issuers.append(issuer)

        def knows_domain(self, domain: str) -> bool:
            return domain.lower() in self._issuers

        def issuers_for(self, domain: str) -> list[str]:
            return self._issuers.get(domain.lower(), [])

    ct = LogDerivedCt()
    by_fuid = {r.fuid: r for r in x509}
    for record in ssl:
        leaf = by_fuid.get(record.server_leaf_fuid or "")
        if leaf is None or not record.server_name:
            continue
        if bundle.knows_issuer_dn(leaf.issuer) or bundle.knows_organization(
            leaf.issuer_org
        ):
            ct.add(record.server_name, leaf.issuer)

    enricher = Enricher(
        bundle=bundle, ct_log=ct, min_interception_domains=args.min_domains,
        fact_cache=FastPath.coerce(args.fast_path).enabled,
    )
    dataset = MtlsDataset(ssl, x509, ingest_report=report)
    enriched = enricher.enrich(dataset)
    interception = enriched.interception
    for issuer in sorted(interception.flagged_issuers):
        print(f"flagged: {issuer}")
    print(
        f"{len(interception.flagged_issuers)} issuers flagged, "
        f"{len(interception.excluded_fingerprints)} certificates "
        f"({100 * interception.excluded_fraction:.2f}%) excluded"
    )
    if args.on_error != "strict":
        _print_ingest_health(report, dataset.dangling_fuid_refs)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.core.livetail import (
        DEFAULT_HOT_TABLES,
        AdmissionController,
        LiveTailDaemon,
    )
    from repro.core.server import LiveTailServer

    if args.trace is not None:
        tracing.configure(args.trace)
    bundle = load_trust_bundle(args.trust_bundle)
    admission = AdmissionController(
        high_watermark=args.overload_rows,
        low_watermark=args.overload_clear_rows,
        reservoir_size=args.reservoir,
        hot_tables=tuple(args.sample_table) if args.sample_table
        else DEFAULT_HOT_TABLES,
    )
    checkpoint = args.checkpoint
    if checkpoint is None:
        checkpoint = args.directory / "livetail-checkpoint.json"
    daemon = LiveTailDaemon(
        args.directory, bundle,
        checkpoint_path=checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        poll_interval=args.poll_interval,
        on_error=args.on_error,
        fast_path=args.fast_path,
        max_fuid_map=args.max_fuid_map,
        min_interception_domains=args.min_domains,
        admission=admission,
        resume=args.resume,
    )
    server = LiveTailServer(daemon, host=args.host, port=args.port)

    def _stop(signum, frame):  # noqa: ARG001 - signal API
        daemon.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    server.start()
    print(f"livetail: serving on http://{server.host}:{server.port}",
          flush=True)
    if daemon.resumed:
        print(f"livetail: resumed from {checkpoint}", flush=True)
    try:
        daemon.run()
    finally:
        server.shutdown()
    _emit_metrics(args.metrics, daemon.engine.metrics)
    return 0


def _load_scenario_spec(args: argparse.Namespace):
    from repro.netsim.scenarios import load_spec

    spec_path = getattr(args, "spec", None)
    if spec_path is not None:
        return load_spec(str(spec_path))
    if args.scenario is None:
        print("error: give a scenario name or --spec FILE", file=sys.stderr)
        return None
    return load_spec(args.scenario)


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.netsim.scenarios import list_scenarios, load_spec

    if args.scenario_command == "list":
        for name in list_scenarios():
            spec = load_spec(name)
            title = spec.title or spec.description or ""
            print(f"{name:14} {title}")
        return 0

    if args.scenario_command == "describe":
        spec = load_spec(args.scenario)
        print(f"scenario {spec.name}: {spec.title}")
        if spec.description:
            print(f"  {spec.description}")
        print(f"  seed {spec.seed}, {spec.months} months")
        for site in spec.topology.sites:
            trust = spec.trusts[site.trust]
            planted = sum((
                len(trust.dummy_cohorts), len(trust.dummy_both_cohorts),
                len(trust.shared_cohorts), len(trust.incorrect_date_cohorts),
                len(trust.expired_clusters),
                int(bool(trust.inbound_expired_total)),
                int(trust.extreme_validity is not None),
                int(trust.cross_sharing is not None),
                int(trust.guardicore is not None),
                int(trust.viptela), int(bool(trust.fnmt_count)),
                int(trust.malignant is not None),
            ))
            print(
                f"  site {site.name} ({site.kind}): "
                f"{site.connections_per_month} conns/month, "
                f"workload={site.workload}, trust={site.trust} "
                f"({planted} planted cohort groups)"
            )
        for event in spec.timeline.events:
            where = event.site or "all sites"
            print(f"  event month {event.month}: {event.kind} @ {where}")
        return 0

    # generate
    spec = _load_scenario_spec(args)
    if spec is None:
        return 2
    if any(value is not None
           for value in (args.months, args.cpm, args.scale, args.seed)):
        spec = spec.scaled(
            months=args.months, connections_per_month=args.cpm,
            scale=args.scale, seed=args.seed,
        )
    from repro.netsim.compose import ScenarioGenerator

    result = ScenarioGenerator(spec).generate()
    args.out.mkdir(parents=True, exist_ok=True)
    if args.rotated:
        from repro.zeek.files import write_rotated_logs

        written = write_rotated_logs(result.logs, args.out)
        log_note = f"{len(written)} rotated log files"
    else:
        with (args.out / "ssl.log").open("w") as out:
            write_ssl_log(result.logs.ssl, out)
        with (args.out / "x509.log").open("w") as out:
            write_x509_log(result.logs.x509, out)
        log_note = "ssl.log and x509.log"
    _write_trust_bundle(result.trust_bundle, args.out / "trust_bundle.txt")
    (args.out / "ground_truth.json").write_text(
        result.ground_truth.to_json() + "\n"
    )
    print(
        f"scenario {spec.name}: wrote {log_note} "
        f"({len(result.logs.ssl)} ssl rows, {len(result.logs.x509)} x509 "
        f"rows), trust_bundle.txt, and ground_truth.json to {args.out}"
    )
    if args.verify:
        from repro.netsim.verify import verify_scenario

        report = verify_scenario(result)
        print(report.summary())
        if not report.ok:
            return 1
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import diff_study_json, render_study_diff

    diff = diff_study_json(
        args.export_a.read_text(), args.export_b.read_text()
    )
    print(render_study_diff(diff).render())
    return 0 if diff.is_empty else 3


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "study": cmd_study,
        "analyze": cmd_analyze,
        "pack": cmd_pack,
        "fsck": cmd_fsck,
        "audit": cmd_audit,
        "intercept": cmd_intercept,
        "compare": cmd_compare,
        "scenario": cmd_scenario,
        "serve": cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except CampaignDegradedError as exc:
        # Strict-mode supervision failure: a shard exhausted its retry
        # budget; completed shards were spilled if --resume was given.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except TsvFormatError as exc:
        # Strict-mode ingestion failure: the message already carries
        # path, line number, and field name.
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: re-run with --on-error skip (or quarantine) to drop "
            "malformed lines and report them instead",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
