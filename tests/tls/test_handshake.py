"""Tests for the TLS handshake simulator."""

import datetime as dt

import pytest

from repro.tls import (
    ClientProfile,
    HandshakeError,
    ServerProfile,
    TlsVersion,
    perform_handshake,
)
from repro.tls.handshake import negotiate_version
from repro.x509 import CertificateAuthority, KeyFactory, Name

UTC = dt.timezone.utc
NOW = dt.datetime(2023, 1, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create_root(
        Name.build(common_name="Handshake CA"), KeyFactory(mode="sim", seed=5)
    )


@pytest.fixture(scope="module")
def server_cert(ca):
    cert, _ = ca.issue(Name.build(common_name="server.example"), now=NOW)
    return cert


@pytest.fixture(scope="module")
def client_cert(ca):
    cert, _ = ca.issue(Name.build(common_name="client-device"), now=NOW)
    return cert


class TestNegotiation:
    def test_highest_common_version(self):
        assert negotiate_version(
            [TlsVersion.TLS_1_2, TlsVersion.TLS_1_3],
            [TlsVersion.TLS_1_0, TlsVersion.TLS_1_2],
        ) is TlsVersion.TLS_1_2

    def test_no_common_version(self):
        assert negotiate_version([TlsVersion.TLS_1_3], [TlsVersion.TLS_1_0]) is None

    def test_version_ordering(self):
        assert TlsVersion.TLS_1_0 < TlsVersion.TLS_1_3
        assert TlsVersion.TLS_1_2 >= TlsVersion.TLS_1_2

    def test_zeek_names_round_trip(self):
        for version in TlsVersion:
            assert TlsVersion.from_zeek_name(version.zeek_name) is version
        with pytest.raises(ValueError):
            TlsVersion.from_zeek_name("TLSv99")


class TestHandshake:
    def test_plain_tls(self, server_cert):
        result = perform_handshake(
            ClientProfile(),
            ServerProfile(certificate_chain=(server_cert,)),
            sni="server.example",
        )
        assert result.established
        assert not result.is_mutual
        assert result.sni == "server.example"
        assert result.server_chain == (server_cert,)
        assert result.client_chain == ()

    def test_mutual_tls(self, server_cert, client_cert):
        result = perform_handshake(
            ClientProfile(certificate_chain=(client_cert,)),
            ServerProfile(certificate_chain=(server_cert,), requests_client_certificate=True),
        )
        assert result.established
        assert result.is_mutual
        assert result.client_certificate_requested

    def test_client_declines_certificate_request(self, server_cert):
        result = perform_handshake(
            ClientProfile(),
            ServerProfile(certificate_chain=(server_cert,), requests_client_certificate=True),
        )
        assert result.established
        assert not result.is_mutual
        assert result.client_certificate_requested

    def test_required_client_cert_missing_fails(self, server_cert):
        result = perform_handshake(
            ClientProfile(),
            ServerProfile(
                certificate_chain=(server_cert,),
                requests_client_certificate=True,
                require_client_certificate=True,
            ),
        )
        assert not result.established
        assert result.failure_reason == "certificate_required"

    def test_client_cert_ignored_without_request(self, server_cert, client_cert):
        result = perform_handshake(
            ClientProfile(certificate_chain=(client_cert,)),
            ServerProfile(certificate_chain=(server_cert,)),
        )
        assert result.established
        assert not result.is_mutual

    def test_version_mismatch_fails(self, server_cert):
        result = perform_handshake(
            ClientProfile(supported_versions=(TlsVersion.TLS_1_3,)),
            ServerProfile(
                certificate_chain=(server_cert,),
                supported_versions=(TlsVersion.TLS_1_0,),
            ),
        )
        assert not result.established
        assert result.failure_reason == "protocol_version"

    def test_server_needs_chain(self):
        with pytest.raises(HandshakeError):
            ServerProfile(certificate_chain=())

    def test_profiles_need_versions(self, server_cert):
        with pytest.raises(HandshakeError):
            ClientProfile(supported_versions=())
        with pytest.raises(HandshakeError):
            ServerProfile(certificate_chain=(server_cert,), supported_versions=())


class TestMonitorView:
    def test_tls12_certificates_visible(self, server_cert, client_cert):
        result = perform_handshake(
            ClientProfile(
                certificate_chain=(client_cert,),
                supported_versions=(TlsVersion.TLS_1_2,),
            ),
            ServerProfile(
                certificate_chain=(server_cert,),
                requests_client_certificate=True,
                supported_versions=(TlsVersion.TLS_1_2,),
            ),
        )
        assert result.version is TlsVersion.TLS_1_2
        assert result.observable_server_chain == (server_cert,)
        assert result.monitor_sees_mutual

    def test_tls13_certificates_hidden(self, server_cert, client_cert):
        result = perform_handshake(
            ClientProfile(certificate_chain=(client_cert,)),
            ServerProfile(
                certificate_chain=(server_cert,), requests_client_certificate=True
            ),
        )
        # Both endpoints support 1.3, so it is negotiated.
        assert result.version is TlsVersion.TLS_1_3
        assert result.is_mutual  # ground truth
        assert result.observable_server_chain == ()
        assert result.observable_client_chain == ()
        assert not result.monitor_sees_mutual  # §3.3 limitation

    def test_visibility_flag_matches_versions(self):
        assert TlsVersion.TLS_1_2.certificates_visible_to_monitor
        assert not TlsVersion.TLS_1_3.certificates_visible_to_monitor
