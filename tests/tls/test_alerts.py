"""Tests for the TLS alert model."""

import pytest

from repro.tls.alerts import (
    Alert,
    AlertDescription,
    AlertLevel,
    alert_for_failure,
    alert_for_validation_status,
)
from repro.trust import ValidationStatus


class TestAlertForFailure:
    def test_protocol_version(self):
        alert = alert_for_failure("protocol_version")
        assert alert.description is AlertDescription.PROTOCOL_VERSION
        assert alert.is_fatal

    def test_certificate_required(self):
        alert = alert_for_failure("certificate_required")
        assert alert.description is AlertDescription.CERTIFICATE_REQUIRED

    def test_unknown_reason_catchall(self):
        alert = alert_for_failure("something-weird")
        assert alert.description is AlertDescription.HANDSHAKE_FAILURE
        assert alert.is_fatal

    def test_str(self):
        assert str(alert_for_failure("protocol_version")) == "fatal:protocol_version"


class TestAlertForValidation:
    def test_ok_is_none(self):
        assert alert_for_validation_status(ValidationStatus.OK) is None

    @pytest.mark.parametrize(
        "status,description",
        [
            (ValidationStatus.EXPIRED, AlertDescription.CERTIFICATE_EXPIRED),
            (ValidationStatus.NOT_YET_VALID, AlertDescription.CERTIFICATE_EXPIRED),
            (ValidationStatus.BAD_SIGNATURE, AlertDescription.BAD_CERTIFICATE),
            (ValidationStatus.INVERTED_VALIDITY, AlertDescription.BAD_CERTIFICATE),
            (ValidationStatus.SELF_SIGNED, AlertDescription.UNKNOWN_CA),
            (ValidationStatus.UNTRUSTED_ROOT, AlertDescription.UNKNOWN_CA),
            (ValidationStatus.EMPTY_CHAIN, AlertDescription.CERTIFICATE_REQUIRED),
        ],
    )
    def test_mapping(self, status, description):
        alert = alert_for_validation_status(status)
        assert alert.description is description
        assert alert.is_fatal

    def test_every_status_covered(self):
        for status in ValidationStatus:
            alert_for_validation_status(status)  # must not raise

    def test_handshake_integration(self):
        """A failed simulated handshake maps onto a concrete alert."""
        import datetime as dt

        from repro.tls import ClientProfile, ServerProfile, TlsVersion, perform_handshake
        from repro.x509 import CertificateAuthority, KeyFactory, Name

        ca = CertificateAuthority.create_root(
            Name.build(common_name="Alert CA"), KeyFactory(mode="sim", seed=2)
        )
        cert, _ = ca.issue(
            Name.build(common_name="s"), now=dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)
        )
        result = perform_handshake(
            ClientProfile(supported_versions=(TlsVersion.TLS_1_3,)),
            ServerProfile(
                certificate_chain=(cert,),
                supported_versions=(TlsVersion.TLS_1_0,),
            ),
        )
        assert not result.established
        alert = alert_for_failure(result.failure_reason)
        assert alert.description is AlertDescription.PROTOCOL_VERSION
