"""Tests for session resumption (abbreviated handshakes)."""

import datetime as dt

import pytest

from repro.tls import ClientProfile, ServerProfile, TlsVersion, perform_handshake
from repro.x509 import CertificateAuthority, KeyFactory, Name

NOW = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)


@pytest.fixture(scope="module")
def endpoints():
    ca = CertificateAuthority.create_root(
        Name.build(common_name="Resume CA"), KeyFactory(mode="sim", seed=88)
    )
    server_cert, _ = ca.issue(Name.build(common_name="srv.example"), now=NOW)
    client_cert, _ = ca.issue(Name.build(common_name="dev"), now=NOW)
    client = ClientProfile(
        certificate_chain=(client_cert,), supported_versions=(TlsVersion.TLS_1_2,)
    )
    server = ServerProfile(
        certificate_chain=(server_cert,),
        requests_client_certificate=True,
        supported_versions=(TlsVersion.TLS_1_2,),
    )
    return client, server


class TestResumption:
    def test_full_then_resumed(self, endpoints):
        client, server = endpoints
        full = perform_handshake(client, server, sni="srv.example")
        assert full.established and not full.resumed
        resumed = perform_handshake(client, server, sni="srv.example", resume=full)
        assert resumed.established and resumed.resumed
        assert resumed.version is full.version
        assert resumed.cipher is full.cipher

    def test_resumed_hides_certificates_from_monitor(self, endpoints):
        client, server = endpoints
        full = perform_handshake(client, server, sni="srv.example")
        resumed = perform_handshake(client, server, resume=full)
        # Ground truth: still mutually authenticated.
        assert resumed.is_mutual
        # Monitor view: nothing.
        assert resumed.observable_server_chain == ()
        assert resumed.observable_client_chain == ()
        assert not resumed.monitor_sees_mutual

    def test_sni_inherited_or_overridden(self, endpoints):
        client, server = endpoints
        full = perform_handshake(client, server, sni="srv.example")
        inherited = perform_handshake(client, server, resume=full)
        assert inherited.sni == "srv.example"
        overridden = perform_handshake(client, server, sni="other", resume=full)
        assert overridden.sni == "other"

    def test_failed_session_not_resumable(self, endpoints):
        client, server = endpoints
        failed = perform_handshake(
            ClientProfile(supported_versions=(TlsVersion.TLS_1_3,)),
            ServerProfile(
                certificate_chain=server.certificate_chain,
                supported_versions=(TlsVersion.TLS_1_0,),
            ),
        )
        assert not failed.established
        # Resuming a failed handshake falls back to a full handshake.
        result = perform_handshake(client, server, resume=failed)
        assert result.established and not result.resumed

    def test_resumed_flag_reaches_ssl_log(self, endpoints):
        from repro.tls import ConnectionRecord, make_connection_uid
        from repro.zeek import ZeekLogBuilder

        client, server = endpoints
        full = perform_handshake(client, server, sni="srv.example")
        resumed = perform_handshake(client, server, resume=full)
        builder = ZeekLogBuilder()
        for index, handshake in enumerate((full, resumed)):
            builder.observe(
                ConnectionRecord(
                    uid=make_connection_uid(index), timestamp=NOW,
                    client_ip="10.16.0.9", client_port=44444,
                    server_ip="198.18.0.9", server_port=443,
                    handshake=handshake,
                )
            )
        first, second = builder.logs.ssl
        assert not first.resumed and first.is_mutual
        assert second.resumed and not second.is_mutual
        # The resumed row references no certificates.
        assert second.cert_chain_fuids == ()

    def test_resumed_round_trips_tsv(self, endpoints):
        import io

        from repro.zeek import read_ssl_log, write_ssl_log
        from repro.tls import ConnectionRecord, make_connection_uid
        from repro.zeek import ZeekLogBuilder

        client, server = endpoints
        full = perform_handshake(client, server, sni="srv.example")
        resumed = perform_handshake(client, server, resume=full)
        builder = ZeekLogBuilder()
        builder.observe(ConnectionRecord(
            uid=make_connection_uid(0), timestamp=NOW,
            client_ip="10.16.0.9", client_port=44444,
            server_ip="198.18.0.9", server_port=443, handshake=resumed,
        ))
        buffer = io.StringIO()
        write_ssl_log(builder.logs.ssl, buffer)
        buffer.seek(0)
        assert read_ssl_log(buffer) == builder.logs.ssl
