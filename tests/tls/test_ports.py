"""Tests for the port/service registry."""

import pytest

from repro.tls import ServiceInfo, ServiceRegistry, default_registry


class TestServiceRegistry:
    def test_lookup_registered(self):
        registry = ServiceRegistry()
        registry.register(443, ServiceInfo("https", "HTTPS"))
        assert registry.lookup(443).label == "HTTPS"

    def test_lookup_unknown(self):
        info = ServiceRegistry().lookup(1234)
        assert info.label == "Unknown"
        assert not info.registered

    def test_range_lookup(self):
        registry = ServiceRegistry()
        registry.register_range(50000, 51000, ServiceInfo("globus", "Corp. - Globus"))
        assert registry.lookup(50000).name == "globus"
        assert registry.lookup(50500).name == "globus"
        assert registry.lookup(51000).name == "globus"
        assert registry.lookup(51001).label == "Unknown"

    def test_exact_beats_range(self):
        registry = ServiceRegistry()
        registry.register_range(50000, 51000, ServiceInfo("globus", "Corp. - Globus"))
        registry.register(50022, ServiceInfo("special", "Special"))
        assert registry.lookup(50022).name == "special"

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ServiceRegistry().register_range(100, 50, ServiceInfo("x", "X"))

    def test_group_key_collapses_range(self):
        registry = default_registry()
        assert registry.group_key(50500) == "50000-51000"
        assert registry.group_key(443) == "443"
        assert registry.group_key(9) == "9"


class TestDefaultRegistry:
    @pytest.mark.parametrize(
        "port,label",
        [
            (443, "HTTPS"),
            (8443, "HTTPS"),
            (25, "SMTP"),
            (465, "SMTPS"),
            (993, "IMAPS"),
            (636, "LDAPS"),
            (8883, "MQTT over TLS"),
            (20017, "Corp. - FileWave"),
            (9093, "Corp. - Outset Medical"),
            (9997, "Corp. - Splunk"),
            (33854, "Corp. - DvTel"),
            (3128, "Corp. - Miscellaneous"),
            (52730, "Univ. - Unknown"),
            (50500, "Corp. - Globus"),
        ],
    )
    def test_study_ports_present(self, port, label):
        assert default_registry().lookup(port).label == label

    def test_manual_entries_flagged(self):
        registry = default_registry()
        assert not registry.lookup(20017).registered
        assert registry.lookup(443).registered
