"""Tests for connection records and the interception proxy."""

import datetime as dt

import pytest

from repro.tls import (
    ClientProfile,
    ConnectionRecord,
    InterceptionProxy,
    ServerProfile,
    make_connection_uid,
    perform_handshake,
)
from repro.x509 import CertificateAuthority, KeyFactory, Name

UTC = dt.timezone.utc
NOW = dt.datetime(2023, 3, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def factory():
    return KeyFactory(mode="sim", seed=77)


@pytest.fixture(scope="module")
def genuine_ca(factory):
    return CertificateAuthority.create_root(
        Name.build(common_name="Genuine Public CA", organization="DigiCert Inc"),
        factory,
    )


@pytest.fixture(scope="module")
def proxy(factory):
    proxy_ca = CertificateAuthority.create_root(
        Name.build(common_name="Corp Inspection CA", organization="NetFilter Security"),
        factory,
    )
    return InterceptionProxy(ca=proxy_ca)


class TestConnectionUid:
    def test_format(self):
        uid = make_connection_uid(0)
        assert uid.startswith("C") and len(uid) == 17

    def test_unique_and_monotone_inputs(self):
        uids = {make_connection_uid(i) for i in range(1000)}
        assert len(uids) == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_connection_uid(-1)


class TestConnectionRecord:
    def test_naive_timestamp_coerced(self, genuine_ca):
        cert, _ = genuine_ca.issue(Name.build(common_name="s"), now=NOW)
        handshake = perform_handshake(
            ClientProfile(), ServerProfile(certificate_chain=(cert,))
        )
        record = ConnectionRecord(
            uid=make_connection_uid(1),
            timestamp=dt.datetime(2023, 3, 1),
            client_ip="10.0.0.1",
            client_port=55555,
            server_ip="192.0.2.1",
            server_port=443,
            handshake=handshake,
        )
        assert record.timestamp.tzinfo is UTC
        assert record.established
        assert record.sni is None


class TestInterceptionProxy:
    def test_impersonation_preserves_subject(self, genuine_ca, proxy):
        genuine, _ = genuine_ca.issue(
            Name.build(common_name="www.bank.example"),
            now=NOW,
            sans=[],
        )
        fake = proxy.impersonate(genuine, sni="www.bank.example", now=NOW)
        assert fake.subject.common_name == "www.bank.example"
        assert fake.issuer.organization == "NetFilter Security"
        assert fake.issuer != genuine.issuer

    def test_minted_certificates_cached(self, genuine_ca, proxy):
        genuine, _ = genuine_ca.issue(Name.build(common_name="cache.example"), now=NOW)
        first = proxy.impersonate(genuine, sni="cache.example", now=NOW)
        second = proxy.impersonate(genuine, sni="cache.example", now=NOW)
        assert first is second

    def test_expired_cache_entry_reissued(self, genuine_ca, factory):
        proxy_ca = CertificateAuthority.create_root(
            Name.build(common_name="ShortLived Proxy CA", organization="Proxy Org"),
            factory,
        )
        proxy = InterceptionProxy(ca=proxy_ca)
        genuine, _ = genuine_ca.issue(Name.build(common_name="rotate.example"), now=NOW)
        first = proxy.impersonate(genuine, sni="rotate.example", now=NOW)
        later = NOW + dt.timedelta(days=400)  # past the default 365-day policy
        second = proxy.impersonate(genuine, sni="rotate.example", now=later)
        assert first is not second

    def test_san_copied_from_genuine(self, genuine_ca, proxy):
        from repro.x509 import GeneralName

        genuine, _ = genuine_ca.issue(
            Name.build(common_name="san.example"),
            now=NOW,
            sans=[GeneralName.dns("san.example"), GeneralName.dns("alt.san.example")],
        )
        fake = proxy.impersonate(genuine, sni="san.example", now=NOW)
        assert fake.subject_alternative_name.dns_names == [
            "san.example",
            "alt.san.example",
        ]
