"""Tests for registrable-domain extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import DomainParts, extract_domain, is_domain_like, sld_of
from repro.text.domains import tld_of


class TestExtractDomain:
    @pytest.mark.parametrize(
        "host,subdomain,sld,suffix",
        [
            ("example.com", "", "example", "com"),
            ("www.example.com", "www", "example", "com"),
            ("vpn.its.university.edu", "vpn.its", "university", "edu"),
            ("a.b.c.example.co.uk", "a.b.c", "example", "co.uk"),
            ("shop.example.com.cn", "shop", "example", "com.cn"),
            ("amazonaws.com", "", "amazonaws", "com"),
            ("localhost", "", "localhost", ""),
            ("com", "", "", "com"),
            ("co.uk", "", "", "co.uk"),
            ("", "", "", ""),
        ],
    )
    def test_known_splits(self, host, subdomain, sld, suffix):
        assert extract_domain(host) == DomainParts(subdomain, sld, suffix)

    def test_case_and_trailing_dot_normalized(self):
        assert extract_domain("WWW.Example.COM.") == DomainParts("www", "example", "com")

    def test_registrable(self):
        assert extract_domain("a.b.idrive.com").registrable == "idrive.com"
        assert extract_domain("com").registrable == ""
        assert extract_domain("localhost").registrable == ""

    def test_fqdn_reassembles(self):
        assert extract_domain("a.b.example.org").fqdn == "a.b.example.org"

    def test_unknown_suffix_degrades(self):
        parts = extract_domain("host.internal")
        assert parts.suffix == ""
        assert parts.sld == "internal"

    def test_sld_of_and_tld_of(self):
        assert sld_of("portal.health.university.edu") == "university.edu"
        assert tld_of("www.rapid7.com") == "com"
        assert tld_of("x.example.co.uk") == "co.uk"


class TestIsDomainLike:
    @pytest.mark.parametrize(
        "text",
        [
            "example.com",
            "www.example.com",
            "*.wildcard.example.org",
            "mail-01.example.co.uk",
            "splunkcloud.com",
        ],
    )
    def test_positive(self, text):
        assert is_domain_like(text)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "WebRTC",
            "John Smith",
            "localhost",
            "host.internal",  # unknown suffix
            "has space.com",
            "a..b.com",
            "-bad.com",
            "just-one-label",
        ],
    )
    def test_negative(self, text):
        assert not is_domain_like(text)

    @given(st.text(max_size=50))
    def test_never_crashes(self, text):
        is_domain_like(text)
        extract_domain(text)


@given(
    sld=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=20),
    suffix=st.sampled_from(["com", "net", "org", "edu", "co.uk", "com.cn"]),
)
def test_registrable_round_trip_property(sld, suffix):
    host = f"{sld}.{suffix}"
    assert extract_domain(host).registrable == host
