"""Property-based tests for the text substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnsan import INFO_TYPES, CnSanClassifier
from repro.text.fuzzy import normalize_org, similar_org, token_jaccard
from repro.text.ner import NerClassifier
from repro.text.randomness import looks_random, shannon_entropy

text_values = st.text(max_size=60)
org_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)

_classifier = CnSanClassifier()
_ner = NerClassifier()


@given(text_values)
def test_classifier_total_function(value):
    """Every string classifies to exactly one known type, no exceptions."""
    assert _classifier.classify(value) in INFO_TYPES


@given(text_values, st.one_of(st.none(), st.text(max_size=20)))
def test_classifier_deterministic(value, issuer_org):
    first = _classifier.classify(value, issuer_org)
    second = _classifier.classify(value, issuer_org)
    assert first == second


@given(text_values)
def test_ner_never_crashes(value):
    _ner.classify(value)


@given(org_values)
def test_normalize_org_idempotent(org):
    normalized = normalize_org(org)
    assert normalize_org(normalized) == normalized


@given(org_values)
def test_similar_org_reflexive(org):
    if normalize_org(org):
        assert similar_org(org, org)


@given(org_values, org_values)
def test_similar_org_symmetric(a, b):
    assert similar_org(a, b) == similar_org(b, a)


@given(org_values, org_values)
def test_token_jaccard_bounds(a, b):
    value = token_jaccard(a, b)
    assert 0.0 <= value <= 1.0


@given(text_values)
def test_entropy_nonnegative(value):
    assert shannon_entropy(value) >= 0.0


@given(text_values)
def test_looks_random_stable(value):
    assert looks_random(value) == looks_random(value)
