"""Tests for random-string detection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import is_hex_string, is_uuid, looks_random, shannon_entropy
from repro.text.randomness import random_string_shape


class TestIsUuid:
    def test_canonical(self):
        assert is_uuid("123e4567-e89b-12d3-a456-426614174000")
        assert is_uuid("123E4567-E89B-12D3-A456-426614174000")

    @pytest.mark.parametrize(
        "text",
        ["", "not-a-uuid", "123e4567e89b12d3a456426614174000",
         "123e4567-e89b-12d3-a456-42661417400"],
    )
    def test_negative(self, text):
        assert not is_uuid(text)


class TestIsHexString:
    def test_positive(self):
        assert is_hex_string("deadbeef")
        assert is_hex_string("DEADBEEF00")
        assert is_hex_string("a1b2c3d4e5f6a7b8" * 4)

    def test_too_short(self):
        assert not is_hex_string("abc")

    def test_non_hex(self):
        assert not is_hex_string("deadbeeg")


class TestEntropy:
    def test_empty(self):
        assert shannon_entropy("") == 0.0

    def test_single_char(self):
        assert shannon_entropy("aaaa") == 0.0

    def test_uniform_two_chars(self):
        assert shannon_entropy("abab") == pytest.approx(1.0)

    def test_more_variety_more_entropy(self):
        assert shannon_entropy("abcdefgh") > shannon_entropy("aabbccdd") > shannon_entropy("aaaabbbb")


class TestLooksRandom:
    @pytest.mark.parametrize(
        "text",
        [
            "123e4567-e89b-12d3-a456-426614174000",
            "d41d8cd98f00b204e9800998ecf8427e",  # md5 hex
            "x7Kq9mW2pLzR4vN8",  # mixed alnum
            "qwtzkrvpxn9f3j7d",
        ],
    )
    def test_random_positive(self, text):
        assert looks_random(text)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "WebRTC",
            "Hybrid Runbook Worker",
            "John Smith",
            "__transfer__",
            "Dtls",
            "hello",
            "mail.example.com",  # dots break the token rule
            "localhost",
        ],
    )
    def test_natural_negative(self, text):
        assert not looks_random(text)


class TestShape:
    def test_uuid_shape(self):
        assert random_string_shape("123e4567-e89b-12d3-a456-426614174000") == "uuid"

    def test_lengths(self):
        assert random_string_shape("a" * 8) == "len8"
        assert random_string_shape("a" * 32) == "len32"
        assert random_string_shape("a" * 36) == "len36"
        assert random_string_shape("a" * 10) == "other"

    @given(st.text(max_size=60))
    def test_never_crashes(self, text):
        random_string_shape(text)
        looks_random(text)
