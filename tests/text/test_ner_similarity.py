"""Tests for NER, company matching, and fuzzy org comparison."""

import pytest

from repro.text import CompanyMatcher, NerClassifier, cosine_similarity, ngram_vector
from repro.text.fuzzy import normalize_org, org_matches_domain, similar_org, token_jaccard
from repro.text.ner import EntityLabel, evaluate_person_detection


@pytest.fixture(scope="module")
def ner():
    return NerClassifier()


class TestCosine:
    def test_identical(self):
        v = ngram_vector("Amazon Web Services")
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_similarity(ngram_vector("aaaa"), ngram_vector("zzzz")) < 0.3

    def test_symmetry(self):
        a, b = ngram_vector("microsoft"), ngram_vector("microsof")
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    def test_case_insensitive(self):
        assert cosine_similarity(
            ngram_vector("MICROSOFT"), ngram_vector("microsoft")
        ) == pytest.approx(1.0)

    def test_empty(self):
        assert cosine_similarity(ngram_vector(""), ngram_vector("x")) <= 1.0


class TestCompanyMatcher:
    def test_exact_match(self):
        matcher = CompanyMatcher(["Splunk", "Rapid7"])
        assert matcher.match("splunk") == ("Splunk", 1.0)
        assert matcher.is_company("Splunk")

    def test_near_match_above_threshold(self):
        matcher = CompanyMatcher(["Amazon Web Services"])
        name, score = matcher.match("Amazon Web Service")
        assert name == "Amazon Web Services"
        assert score >= 0.9

    def test_unrelated_below_threshold(self):
        matcher = CompanyMatcher(["Amazon Web Services"])
        assert not matcher.is_company("Totally Different Name")

    def test_empty_lexicon(self):
        assert CompanyMatcher([]).match("anything") is None
        assert not CompanyMatcher([]).is_company("anything")


class TestNerPerson(object):
    @pytest.mark.parametrize(
        "text",
        [
            "John Smith",
            "Mary Johnson",
            "Sarah Lee",
            "Smith, John",
            "J. Robert Oppenheimer",
            "Kevin Du",
            "david miller",
        ],
    )
    def test_person_positive(self, ner, text):
        assert ner.classify(text).label is EntityLabel.PERSON

    @pytest.mark.parametrize(
        "text",
        [
            "WebRTC",
            "example.com",
            "Hybrid Runbook Worker",
            "Internet Widgits Pty Ltd",
            "d41d8cd98f00b204",
            "FXP DCAU Cert",
            "",
            "single",
        ],
    )
    def test_person_negative(self, ner, text):
        assert ner.classify(text).label is not EntityLabel.PERSON


class TestNerOrgProduct:
    @pytest.mark.parametrize(
        "text",
        [
            "Internet Widgits Pty Ltd",
            "Default Company Ltd",
            "Honeywell International Inc",
            "State University",
            "Outset Medical",  # via company lexicon
            "American Psychiatric Association",
        ],
    )
    def test_org_positive(self, ner, text):
        assert ner.classify(text).label is EntityLabel.ORG

    @pytest.mark.parametrize("text", ["WebRTC", "hangouts", "Hybrid Runbook Worker",
                                      "Android Keystore", "twilio"])
    def test_product_positive(self, ner, text):
        assert ner.classify(text).label is EntityLabel.PRODUCT

    def test_is_org_or_product_helper(self, ner):
        assert ner.is_org_or_product("WebRTC")
        assert ner.is_org_or_product("Default Company Ltd")
        assert not ner.is_org_or_product("John Smith")

    def test_none_label(self, ner):
        assert ner.classify("xkcd1234zz").label is EntityLabel.NONE


class TestEvaluation:
    def test_precision_recall_perfect(self, ner):
        labeled = [("John Smith", True), ("WebRTC", False), ("Mary Johnson", True)]
        precision, recall = evaluate_person_detection(ner, labeled)
        assert precision == 1.0 and recall == 1.0

    def test_recall_penalized_for_misses(self, ner):
        labeled = [("John Smith", True), ("Zyxxilophon Qwerty", True)]
        _, recall = evaluate_person_detection(ner, labeled)
        assert recall == 0.5

    def test_empty_input(self, ner):
        assert evaluate_person_detection(ner, []) == (0.0, 0.0)


class TestFuzzyOrg:
    def test_normalize(self):
        assert normalize_org("Amazon Web Services, Inc.") == "amazon web services"
        assert normalize_org("GoDaddy.com, Inc") == "godaddy com"
        assert normalize_org("Acme Co") == "acme"

    def test_similar_exact_after_normalize(self):
        assert similar_org("Splunk Inc.", "Splunk")

    def test_similar_containment(self):
        assert similar_org("Amazon", "Amazon Web Services")

    def test_dissimilar(self):
        assert not similar_org("Apple", "Microsoft")
        assert not similar_org("", "Microsoft")

    def test_token_jaccard(self):
        assert token_jaccard("Amazon Web Services", "Amazon Services") == pytest.approx(2 / 3)
        assert token_jaccard("", "x") == 0.0

    def test_org_matches_domain(self):
        assert org_matches_domain("Amazon Web Services", "amazonaws.com")
        assert org_matches_domain("Rapid7 LLC", "rapid7.com")
        assert org_matches_domain("Splunk", "splunkcloud.com")
        assert not org_matches_domain("State University", "rapid7.com")
        assert not org_matches_domain("", "rapid7.com")
        assert not org_matches_domain("Acme", "")
