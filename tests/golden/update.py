"""Re-pin the golden corpus: ``python -m tests.golden.update``.

Regenerates ``expected.json`` and ``corpus.json`` from the current
pipeline. Run this only when an analysis change is *intended*; the diff
of the regenerated files is the reviewable record of what moved.
"""

from __future__ import annotations

import json

from tests.golden import (
    CORPUS_PATH,
    EXPECTED_PATH,
    build_study,
    corpus_fingerprint,
    expected_document,
)


def main() -> int:
    study = build_study()
    corpus = corpus_fingerprint(study)
    expected = expected_document(study)
    CORPUS_PATH.write_text(
        json.dumps(corpus, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    EXPECTED_PATH.write_text(
        json.dumps(expected, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {CORPUS_PATH} ({corpus['ssl_rows']} ssl rows, "
          f"sha256 {corpus['sha256'][:12]}...)")
    print(f"wrote {EXPECTED_PATH} ({len(expected['tables'])} tables)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
