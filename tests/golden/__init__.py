"""Golden-corpus regression suite.

A small deterministic netsim campaign (fixed seed) is the *corpus*; the
rendered output of every registered analysis over it is the *expected*
answer, checked in as ``expected.json`` next to a ``corpus.json``
fingerprint of the serialized logs. ``test_golden_corpus.py`` re-runs
the pipeline and fails with a readable unified diff the moment any
analysis output drifts — whether from an intentional change (re-pin
with ``python -m tests.golden.update``) or an accidental one.

The fingerprint separates the two ways a golden test can break: if
``corpus.json`` no longer matches, the *simulator* changed (the corpus
itself moved); if only ``expected.json`` mismatches, the *analyses*
changed on identical input.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.core import protocol
from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig
from repro.zeek import ssl_log_to_string, x509_log_to_string

GOLDEN_DIR = Path(__file__).parent
EXPECTED_PATH = GOLDEN_DIR / "expected.json"
CORPUS_PATH = GOLDEN_DIR / "corpus.json"

#: The golden campaign: small enough to run in seconds, rich enough to
#: populate every table (interception, faults off — pure pipeline).
GOLDEN_CONFIG = ScenarioConfig(seed=29, months=6, connections_per_month=400)

#: Schema tags for the two checked-in documents.
EXPECTED_FORMAT = "golden-expected/v1"
CORPUS_FORMAT = "golden-corpus/v1"


def build_study(
    fast_path: str = "auto", on_error: str = "strict"
) -> CampusStudy:
    """The golden study; ``fast_path``/``on_error`` select the legs of
    the fast-vs-slow comparison (lenient legs re-ingest through the TSV
    reader, which is what exercises the decoders)."""
    return CampusStudy(
        config=GOLDEN_CONFIG, fast_path=fast_path, on_error=on_error
    )


def corpus_fingerprint(study: CampusStudy) -> dict[str, Any]:
    """Config plus a sha256 over the corpus's serialized Zeek logs."""
    logs = study.run().simulation.logs
    digest = hashlib.sha256()
    digest.update(ssl_log_to_string(logs.ssl).encode("utf-8"))
    digest.update(x509_log_to_string(logs.x509).encode("utf-8"))
    return {
        "format": CORPUS_FORMAT,
        "config": {
            "seed": GOLDEN_CONFIG.seed,
            "months": GOLDEN_CONFIG.months,
            "connections_per_month": GOLDEN_CONFIG.connections_per_month,
        },
        "ssl_rows": len(logs.ssl),
        "x509_rows": len(logs.x509),
        "sha256": digest.hexdigest(),
    }


def table_to_json(table) -> dict[str, Any]:
    """A Table as JSON-stable data (cells stringified, as rendered)."""
    return {
        "title": table.title,
        "headers": [str(h) for h in table.headers],
        "rows": [[str(cell) for cell in row] for row in table.rows],
        "notes": list(table.notes),
    }


def analysis_names() -> list[str]:
    return list(protocol.PAPER_TABLE_ORDER)


def expected_document(study: CampusStudy) -> dict[str, Any]:
    """Every registered analysis over the corpus, in paper order."""
    return {
        "format": EXPECTED_FORMAT,
        "tables": {
            name: table_to_json(study.table(name))
            for name in analysis_names()
        },
    }


def load_expected() -> dict[str, Any]:
    return json.loads(EXPECTED_PATH.read_text(encoding="utf-8"))


def load_corpus() -> dict[str, Any]:
    return json.loads(CORPUS_PATH.read_text(encoding="utf-8"))


def diff_tables(expected: dict[str, Any], actual: dict[str, Any]) -> str:
    """Readable unified diff between two table_to_json documents."""
    import difflib

    want = json.dumps(expected, indent=1, sort_keys=True).splitlines()
    got = json.dumps(actual, indent=1, sort_keys=True).splitlines()
    return "\n".join(
        difflib.unified_diff(want, got, "expected", "actual", lineterm="")
    )
