"""The golden-corpus regression tests.

One parametrized test per registered analysis: re-run the pipeline on
the fixed-seed corpus and compare against the checked-in expectation,
failing with a unified diff that names exactly what drifted. A
companion self-test proves the comparison has teeth by perturbing a
single value and asserting the suite would catch it.
"""

import copy
import json

import pytest

from tests import golden


@pytest.fixture(scope="module")
def study():
    return golden.build_study()


@pytest.fixture(scope="module")
def expected():
    return golden.load_expected()


def test_corpus_fingerprint_matches(study):
    """The simulator still generates byte-identical logs for the seed."""
    pinned = golden.load_corpus()
    actual = golden.corpus_fingerprint(study)
    assert actual == pinned, (
        "the golden corpus itself changed (simulator drift) — every "
        "expected table is suspect; inspect the generator change, then "
        "re-pin with `python -m tests.golden.update`:\n"
        + golden.diff_tables(pinned, actual)
    )


def test_expected_covers_every_analysis(expected):
    assert sorted(expected["tables"]) == sorted(golden.analysis_names())


@pytest.mark.parametrize("name", golden.analysis_names())
def test_analysis_matches_golden(study, expected, name):
    actual = golden.table_to_json(study.table(name))
    pinned = expected["tables"][name]
    assert actual == pinned, (
        f"analysis {name!r} drifted from the golden expectation "
        f"(re-pin with `python -m tests.golden.update` if intended):\n"
        + golden.diff_tables(pinned, actual)
    )


def test_suite_catches_one_line_perturbation(study, expected):
    """Drift detection has teeth: a single perturbed cell must fail."""
    name = golden.analysis_names()[0]
    actual = golden.table_to_json(study.table(name))
    perturbed = copy.deepcopy(actual)
    assert perturbed["rows"], f"golden table {name!r} has no rows to perturb"
    perturbed["rows"][0][-1] = perturbed["rows"][0][-1] + "1"
    assert perturbed != expected["tables"][name]
    diff = golden.diff_tables(expected["tables"][name], perturbed)
    assert diff, "perturbation produced an empty diff"
    assert "+" in diff and "-" in diff


@pytest.fixture(scope="module")
def fast_legs():
    """Two full pipeline runs over the corpus in the same session: the
    fast path on and off, both re-ingesting through the TSV reader
    (``on_error="skip"``) so the decoders actually run."""
    on = golden.build_study(fast_path="on", on_error="skip")
    off = golden.build_study(fast_path="off", on_error="skip")
    return on, off


@pytest.mark.parametrize("name", golden.analysis_names())
def test_fast_leg_matches_slow_leg(fast_legs, name):
    on, off = fast_legs
    fast_table = golden.table_to_json(on.table(name))
    slow_table = golden.table_to_json(off.table(name))
    assert fast_table == slow_table, (
        f"analysis {name!r} differs between --fast-path on and off — the "
        "byte-identical contract is broken:\n"
        + golden.diff_tables(slow_table, fast_table)
    )


@pytest.mark.parametrize("name", golden.analysis_names())
def test_fast_leg_matches_golden(fast_legs, expected, name):
    """The fast path through the *reader* still lands on the pinned
    expectations (round-trip fidelity plus decoder equivalence)."""
    on, _ = fast_legs
    actual = golden.table_to_json(on.table(name))
    pinned = expected["tables"][name]
    assert actual == pinned, (
        f"fast-path analysis {name!r} drifted from the golden "
        "expectation:\n" + golden.diff_tables(pinned, actual)
    )


def test_fast_legs_agree_on_ingest_report(fast_legs):
    on, off = fast_legs
    assert (
        on.run().ingest_report.to_dict() == off.run().ingest_report.to_dict()
    )


def test_expected_document_is_normalized():
    """expected.json stays in the exact format update.py writes, so
    re-pinning produces minimal diffs."""
    raw = golden.EXPECTED_PATH.read_text(encoding="utf-8")
    document = json.loads(raw)
    assert document["format"] == golden.EXPECTED_FORMAT
    assert raw == json.dumps(document, indent=1, sort_keys=True) + "\n"
