"""Property-based pipeline invariants across random small scenarios.

These run the whole simulate → enrich → analyze chain on tiny random
configurations and assert structural invariants that must hold for ANY
input — the pipeline-level analogue of the per-module property tests.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import cnsan, prevalence, services
from repro.core.dataset import MtlsDataset
from repro.core.enrich import Enricher
from repro.netsim import ScenarioConfig, TrafficGenerator

configs = st.builds(
    ScenarioConfig,
    seed=st.integers(0, 10_000),
    months=st.integers(1, 4),
    connections_per_month=st.integers(60, 250),
)


def _run(config: ScenarioConfig):
    simulation = TrafficGenerator(config).generate()
    enricher = Enricher(bundle=simulation.trust_bundle, ct_log=simulation.ct_log)
    return simulation, enricher.enrich(MtlsDataset.from_logs(simulation.logs))


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(config=configs)
def test_pipeline_invariants(config):
    simulation, enriched = _run(config)

    # 1. Connection accounting: every generated month appears; totals add up.
    series = prevalence.monthly_mutual_share(enriched)
    assert len(series) <= config.months
    assert sum(p.total_connections for p in series) == len(enriched.connections)

    # 2. Certificate accounting: Table 1 partitions exactly.
    rows = {r.label: r for r in prevalence.certificate_statistics(enriched)}
    assert rows["Total"].total == rows["Server"].total + rows["Client"].total
    assert rows["Server"].total == (
        rows["Server/Public"].total + rows["Server/Private"].total
    )
    assert rows["Client"].total == (
        rows["Client/Public"].total + rows["Client/Private"].total
    )
    for row in rows.values():
        assert 0 <= row.mutual <= row.total

    # 3. Mutual implies both leaves present; TLS 1.3 implies neither.
    for conn in enriched.connections:
        if conn.is_mutual:
            assert conn.view.server_leaf is not None
            assert conn.view.client_leaf is not None
        if conn.view.ssl.version == "TLSv13":
            assert not conn.is_mutual

    # 4. Service shares are probabilities summing to ≤ 1 per quadrant.
    breakdown = services.service_breakdown(enriched)
    for quadrant in (
        breakdown.inbound_mutual, breakdown.outbound_mutual,
        breakdown.inbound_nonmutual, breakdown.outbound_nonmutual,
    ):
        assert sum(row.share for row in quadrant) <= 1.0 + 1e-9

    # 5. cnsan populations partition the mutual certificates.
    mutual = cnsan.mutual_population(enriched)
    shared = cnsan.shared_population(enriched)
    mutual_fps = {p.fingerprint for p in mutual}
    shared_fps = {p.fingerprint for p in shared}
    assert not mutual_fps & shared_fps
    total_mutual = sum(1 for p in enriched.profiles.values() if p.used_in_mutual)
    assert len(mutual_fps) + len(shared_fps) == total_mutual

    # 6. The interception filter never excludes a mutual-TLS certificate
    # (middleboxes only fake server certs in non-mutual traffic here).
    for fp in enriched.interception.excluded_fingerprints:
        assert fp not in enriched.profiles
