"""End-to-end resilience: a fault-injected campaign must still yield
the paper's headline statistics, with every dropped line accounted for.
"""

import io

import pytest

from repro.core import prevalence
from repro.core.streaming import StreamingAnalyzer
from repro.core.study import CampusStudy
from repro.netsim import FaultPlan, LogCorruptor
from repro.zeek import (
    ErrorPolicy,
    IngestReport,
    TsvFormatError,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)

#: The acceptance scenario: ~5% of all lines faulted.
FAULT_RATE = 0.05
CONFIG = dict(months=4, connections_per_month=400, seed=29)


@pytest.fixture(scope="module")
def clean_study():
    return CampusStudy(**CONFIG)


@pytest.fixture(scope="module")
def quarantine_study():
    return CampusStudy(
        **CONFIG,
        on_error="quarantine",
        fault_plan=FaultPlan.uniform(FAULT_RATE, seed=29),
    )


class TestFaultedCampaignRecovers:
    @pytest.mark.parametrize("policy", ["skip", "quarantine"])
    def test_run_completes_under_lenient_policies(self, policy):
        study = CampusStudy(
            **CONFIG, on_error=policy,
            fault_plan=FaultPlan.uniform(FAULT_RATE, seed=29),
        )
        result = study.run()
        assert result.ingest_report is not None
        assert result.ingest_report.rows_dropped > 0
        assert len(result.dataset.connections) > 0

    def test_figure1_recovered_within_tolerance(self, clean_study, quarantine_study):
        clean = {
            s.label: s.share
            for s in prevalence.monthly_mutual_share(clean_study.enriched)
        }
        faulted = {
            s.label: s.share
            for s in prevalence.monthly_mutual_share(quarantine_study.enriched)
        }
        assert set(faulted) == set(clean)  # no month lost entirely
        for label, share in clean.items():
            assert faulted[label] == pytest.approx(share, abs=0.05)

    def test_table1_recovered_within_tolerance(self, clean_study, quarantine_study):
        clean = {
            r.label: (r.total, r.mutual)
            for r in prevalence.certificate_statistics(clean_study.enriched)
        }
        faulted = {
            r.label: (r.total, r.mutual)
            for r in prevalence.certificate_statistics(quarantine_study.enriched)
        }
        assert set(faulted) == set(clean)
        for label, (total, mutual) in clean.items():
            got_total, got_mutual = faulted[label]
            assert abs(got_total - total) <= max(2, 0.1 * total), label
            assert abs(got_mutual - mutual) <= max(2, 0.1 * mutual), label

    def test_every_dropped_line_accounted_exactly(self, quarantine_study):
        result = quarantine_study.run()
        report, corruption = result.ingest_report, result.corruption
        assert report.rows_dropped == corruption.expected_reader_drops
        assert sum(report.dropped_by_category.values()) == report.rows_dropped
        assert sum(report.dropped_by_path.values()) == report.rows_dropped
        # Quarantine captured the raw text of every dropped row.
        assert len(report.quarantined) == report.rows_dropped
        # Dangling fuids in the join come from the planted x509 drops.
        assert corruption.dropped_x509_rows > 0
        assert result.dataset.dangling_fuid_refs > 0

    def test_ingest_health_table_joins_the_report(self, quarantine_study):
        tables = quarantine_study.all_tables()
        health = [t for t in tables if t.title == "Ingest health"]
        assert len(health) == 1
        rendered = health[0].render()
        assert "Rows dropped" in rendered
        assert "dangling" in rendered.lower()


class TestStrictCorpusContext:
    """Strict mode names path, line, and field for every fault type
    that is an error (duplicates, x509 drops, and a missing #close are
    legal TSV, so strict parses them fine)."""

    @pytest.fixture(scope="class")
    def texts(self):
        study = CampusStudy(months=2, connections_per_month=150, seed=31)
        logs = study.run().simulation.logs
        return ssl_log_to_string(logs.ssl), x509_log_to_string(logs.x509)

    @pytest.mark.parametrize(
        "plan_kwargs",
        [
            dict(flip_rate=0.05),
            dict(garbage_rate=0.05),
            dict(truncate_final_record=True),
            dict(reorder_columns=True),
        ],
        ids=["flip", "garbage", "truncate", "reorder"],
    )
    @pytest.mark.parametrize("kind", ["ssl", "x509"])
    def test_erroring_faults_carry_full_context(self, texts, plan_kwargs, kind):
        text = texts[0] if kind == "ssl" else texts[1]
        corrupted, summary = LogCorruptor(
            FaultPlan(seed=31, **plan_kwargs)
        ).corrupt(text, kind)
        assert corrupted != text
        reader = read_ssl_log if kind == "ssl" else read_x509_log
        with pytest.raises(TsvFormatError) as excinfo:
            reader(io.StringIO(corrupted), path=f"/archive/{kind}.log")
        err = excinfo.value
        assert err.path == f"/archive/{kind}.log"
        assert err.line_number is not None and err.line_number > 0
        assert err.field is not None
        for fragment in (err.path, f"line {err.line_number}", err.field):
            assert fragment in str(err)

    @pytest.mark.parametrize(
        "plan_kwargs",
        [dict(duplicate_rate=0.1), dict(drop_close=True)],
        ids=["duplicate", "drop-close"],
    )
    def test_benign_faults_parse_under_strict(self, texts, plan_kwargs):
        corrupted, _ = LogCorruptor(FaultPlan(seed=31, **plan_kwargs)).corrupt(
            texts[0], "ssl"
        )
        records = read_ssl_log(io.StringIO(corrupted))
        assert records


class TestStreamingResumeOnFaultedLogs:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        study = CampusStudy(months=4, connections_per_month=300, seed=37)
        simulation = study.run().simulation
        ssl_out, x509_out, _ = LogCorruptor(
            FaultPlan.uniform(FAULT_RATE, seed=37)
        ).corrupt_logs(
            ssl_log_to_string(simulation.logs.ssl),
            x509_log_to_string(simulation.logs.x509),
        )
        report = IngestReport()
        ssl = read_ssl_log(
            io.StringIO(ssl_out), on_error=ErrorPolicy.SKIP, report=report
        )
        x509 = read_x509_log(
            io.StringIO(x509_out), on_error=ErrorPolicy.SKIP, report=report
        )

        months = sorted({f"{r.ts:%Y-%m}" for r in ssl})
        by_month = {
            m: (
                [r for r in ssl if f"{r.ts:%Y-%m}" == m],
                [r for r in x509 if f"{r.ts:%Y-%m}" == m],
            )
            for m in months
        }

        uninterrupted = StreamingAnalyzer(simulation.trust_bundle)
        for m in months:
            uninterrupted.add_month(*by_month[m])

        ckpt = tmp_path / "resume.json"
        first = StreamingAnalyzer(simulation.trust_bundle)
        for m in months[:2]:
            first.add_month(*by_month[m])
        first.write_checkpoint(ckpt)
        resumed = StreamingAnalyzer.from_checkpoint(simulation.trust_bundle, ckpt)
        for m in months[2:]:
            resumed.add_month(*by_month[m])

        resumed_snapshot = resumed.to_snapshot()
        uninterrupted_snapshot = uninterrupted.to_snapshot()
        # Metrics are compared separately: timers are wall-clock and the
        # resumed path wrote a checkpoint the uninterrupted one did not.
        resumed_metrics = resumed_snapshot.pop("metrics")
        uninterrupted_metrics = uninterrupted_snapshot.pop("metrics")
        assert resumed_snapshot == uninterrupted_snapshot
        # The deterministic side of the metrics survives the resume.
        for counter in ("streaming.ssl_records", "streaming.x509_records"):
            assert resumed_metrics["counters"][counter] == \
                uninterrupted_metrics["counters"][counter]
        assert resumed_metrics["counters"]["streaming.checkpoint_writes"] == 1
        # Dropped x509 rows surface as dangling fuid references.
        assert resumed.dropped_dangling_fuid > 0


class TestCliSmoke:
    def test_study_ingest_health_table(self, capsys):
        from repro.cli import main

        code = main([
            "study", "--months", "2", "--cpm", "150", "--seed", "31",
            "--on-error", "quarantine", "--fault-rate", "0.05",
            "--table", "ingest-health",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ingest health" in out
        assert "Rows dropped" in out

    def test_strict_fault_rate_warns(self, capsys):
        from repro.cli import build_parser, cmd_study

        args = build_parser().parse_args([
            "study", "--months", "1", "--cpm", "50", "--seed", "31",
            "--fault-rate", "0.05", "--table", "table1",
        ])
        with pytest.raises(TsvFormatError):
            cmd_study(args)
        assert "warning" in capsys.readouterr().err