"""Chaos test for `repro serve`, the real subprocess.

The acceptance scenario from the issue: a daemon tails a directory a
fault-injecting writer keeps rotating (≥3 times), copytruncating, and
partially writing into; mid-run the daemon is SIGKILLed and restarted
with ``--resume``; at the end its tables — fetched over the HTTP API —
are byte-identical to a batch ``analyze`` of the concatenated archive,
with exact ingest accounting (no row lost, none read twice). A second
leg forces overload and asserts the sampled-table flags and correction
factors surface in both the API response and the run metrics.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import _write_trust_bundle, load_trust_bundle
from repro.core.parallel import analyze_directory
from repro.netsim import LiveLogWriter, ScenarioConfig, TrafficGenerator

pytestmark = [pytest.mark.slow, pytest.mark.chaos]


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(months=3, connections_per_month=150, seed=59)
    ).generate()


@pytest.fixture(scope="module")
def bundle_file(simulation, tmp_path_factory):
    path = tmp_path_factory.mktemp("trust") / "bundle.txt"
    _write_trust_bundle(simulation.trust_bundle, path)
    return path


def _serve(directory, bundle_file, checkpoint, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(directory),
            "--trust-bundle", str(bundle_file),
            "--checkpoint", str(checkpoint),
            "--checkpoint-interval", "0.2",
            "--poll-interval", "0.01",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    assert banner.startswith("livetail: serving on http://"), (
        banner, proc.stderr.read() if proc.poll() is not None else ""
    )
    base = banner.split()[-1].strip()
    return proc, base


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _wait(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met before timeout")


def _wait_rows(base, ssl_rows, x509_rows):
    def caught_up():
        health = _get(base, "/healthz")
        return (
            health["rows"]["ssl"] >= ssl_rows
            and health["rows"]["x509"] >= x509_rows
        )

    _wait(caught_up)


class TestChaosEquivalence:
    def test_rotations_truncation_kill_resume(
        self, simulation, bundle_file, tmp_path
    ):
        logdir = tmp_path / "logs"
        ckpt = tmp_path / "livetail-checkpoint.json"
        writer = LiveLogWriter(simulation.logs, logdir)
        writer.write_next(40)

        proc, base = _serve(logdir, bundle_file, ckpt)
        try:
            health = _get(base, "/healthz")
            assert health["status"] == "ok"

            # Faults, phase one: a forced rotation, a copytruncate
            # (synchronized through /healthz before more rows follow),
            # and a mid-write partial line.
            writer.write_next(60)
            writer.rotate("ssl")
            writer.write_next(60)
            # The daemon must have consumed the live bytes for the
            # truncation's size regression to be observable — same
            # ordering a real logrotate gives a steady-state tailer.
            ssl_written = sum(
                1 for kind, _, _ in writer._events[:writer._cursor]
                if kind == "ssl"
            )
            _wait(
                lambda: _get(base, "/healthz")["rows"]["ssl"] >= ssl_written
            )
            writer.truncate("ssl")
            _wait(lambda: _get(base, "/healthz")["truncations"]["ssl"] >= 1)
            writer.partial_write()
            writer.write_next(60)
            rows_before_kill = writer._cursor
            ssl_so_far = sum(
                1 for kind, _, _ in writer._events[:rows_before_kill]
                if kind == "ssl"
            )
            _wait(
                lambda: _get(base, "/healthz")["rows"]["ssl"] >= ssl_so_far
            )
            # Force one checkpoint we know covers the rows so far, then
            # SIGKILL — no cleanup, no final checkpoint.
            _get_post(base, "/checkpoint")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # Restart with --resume; finish the capture (more rotations come
        # from month boundaries and the final rotation of both streams).
        proc, base = _serve(logdir, bundle_file, ckpt, "--resume")
        try:
            assert _get(base, "/healthz")["resumed"] is True
            writer.write_next(len(writer._events))
            writer.finalize()
            _wait_rows(
                base, len(simulation.logs.ssl), len(simulation.logs.x509)
            )

            health = _get(base, "/healthz")
            total_rotations = (
                health["rotations"]["ssl"] + health["rotations"]["x509"]
            )
            assert writer.rotations >= 3
            assert health["truncations"]["ssl"] >= 0  # survived the restart
            assert total_rotations >= 1  # this process saw the tail end

            # Exactly-once accounting: the daemon's merged ingest equals
            # the batch read of the archive, row for row, file for file.
            live_ingest = _get(base, "/ingest")
            listing = _get(base, "/tables")["tables"]
            assert all(entry["sampling"] is None for entry in listing)
            live_tables = {
                entry["name"]: _get(base, "/tables/" + entry["name"])
                for entry in listing
            }

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        campaign = analyze_directory(
            logdir, load_trust_bundle(bundle_file), on_error="skip"
        )
        batch = campaign.ingest
        merged = {
            field: (
                live_ingest["ssl"][field] + live_ingest["x509"][field]
            )
            for field in (
                "rows_ok", "rows_dropped", "files_read",
                "files_missing_close", "truncated_final_lines",
            )
        }
        assert merged == {
            "rows_ok": batch.rows_ok,
            "rows_dropped": batch.rows_dropped,
            "files_read": batch.files_read,
            "files_missing_close": batch.files_missing_close,
            "truncated_final_lines": batch.truncated_final_lines,
        }
        from repro.core.export import table_to_dict

        for name in campaign.partials:
            expected = table_to_dict(campaign.table(name))
            got = dict(live_tables[name])
            got.pop("name")
            got.pop("sampling")
            assert got == expected, f"table {name} diverged from batch"

        # The final (SIGTERM-path) checkpoint is loadable and complete.
        from repro.core.streaming import StreamingAnalyzer

        restored = StreamingAnalyzer.from_checkpoint(
            load_trust_bundle(bundle_file), ckpt
        )
        assert restored.connections_seen == sum(
            1 for r in simulation.logs.ssl if r.established
        )


class TestOverloadFlagging:
    def test_sampled_tables_flagged_in_api_and_metrics(
        self, simulation, bundle_file, tmp_path
    ):
        logdir = tmp_path / "logs"
        writer = LiveLogWriter(simulation.logs, logdir)
        writer.finalize()  # the whole capture lands in one poll: overload
        proc, base = _serve(
            logdir, bundle_file, tmp_path / "ckpt.json",
            "--overload-rows", "20", "--reservoir", "16",
        )
        try:
            _wait_rows(
                base, len(simulation.logs.ssl), len(simulation.logs.x509)
            )
            health = _get(base, "/healthz")
            assert health["sampled_tables"]
            sampled = health["sampled_tables"][0]
            table = _get(base, "/tables/" + sampled)
            assert table["sampling"]["sampled"] is True
            assert table["sampling"]["correction"] > 1.0
            _get_post(base, "/checkpoint")  # publishes sampling gauges
            metrics = _get(base, "/metrics")
            key = f"livetail.sampled.{sampled}.correction"
            assert metrics["gauges"][key] > 1.0
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def _get_post(base, path):
    request = urllib.request.Request(base + path, data=b"", method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())
