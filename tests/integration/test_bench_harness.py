"""The bench-harness contract: BENCH_*.json documents are schema-valid,
written one per bench module, and the `--smoke` CI entry point produces
them end to end."""

import json
import subprocess
import sys
from pathlib import Path

import jsonschema
import pytest

from benchmarks import harness


def _valid_document():
    return {
        "format": harness.BENCH_FORMAT,
        "name": "resilient_ingest",
        "smoke": True,
        "entries": [
            {
                "test": "test_skip_mode_overhead_on_clean_logs",
                "wall_time_s": 1.25,
                "peak_rss_bytes": 180000000,
                "records_per_sec": 250000.0,
                "accuracy": {"skip_over_strict": 1.04},
                "tables": ["Resilient-ingest overhead (clean input)"],
            }
        ],
    }


class TestSchema:
    def test_valid_document_passes(self):
        harness.validate_document(_valid_document())

    def test_nullable_measurements_pass(self):
        document = _valid_document()
        document["entries"][0]["records_per_sec"] = None
        document["entries"][0]["accuracy"] = None
        harness.validate_document(document)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("format"),
        lambda d: d.update(format="bench-record/v0"),
        lambda d: d.update(entries=[]),
        lambda d: d["entries"][0].pop("wall_time_s"),
        lambda d: d["entries"][0].update(wall_time_s=-1.0),
        lambda d: d["entries"][0].update(peak_rss_bytes=1.5),
        lambda d: d.update(unexpected="field"),
    ])
    def test_off_schema_documents_fail(self, mutate):
        document = _valid_document()
        mutate(document)
        with pytest.raises(jsonschema.ValidationError):
            harness.validate_document(document)

    def test_bench_name_strips_prefix(self):
        assert harness.bench_name("benchmarks.bench_resilient_ingest") == \
            "resilient_ingest"
        assert harness.bench_name("bench_scaling") == "scaling"


class TestWriter:
    def test_write_records_one_file_per_module(self, tmp_path):
        entry = harness.BenchEntry(test="test_x")
        entry.finish()
        written = harness.write_records(
            {"benchmarks.bench_scaling": [entry],
             "benchmarks.bench_generator": [entry]},
            tmp_path, smoke=False,
        )
        names = sorted(p.name for p in written)
        assert names == ["BENCH_generator.json", "BENCH_scaling.json"]
        for path in written:
            document = harness.validate_file(path)
            assert document["smoke"] is False
            assert document["entries"][0]["test"] == "test_x"
            assert document["entries"][0]["peak_rss_bytes"] > 0


@pytest.mark.slow
def test_smoke_cli_emits_schema_valid_bench_json(tmp_path):
    """The CI smoke path: >= 2 schema-valid BENCH_*.json files."""
    outdir = tmp_path / "bench-out"
    completed = subprocess.run(
        [sys.executable, "-m", "benchmarks.harness", "--smoke",
         "--out", str(outdir)],
        capture_output=True, text=True, cwd=Path(__file__).parents[2],
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    written = sorted(outdir.glob("BENCH_*.json"))
    assert len(written) >= 2
    for path in written:
        document = harness.validate_file(path)
        assert document["smoke"] is True
        assert all(e["wall_time_s"] > 0 for e in document["entries"])
    names = {json.loads(p.read_text())["name"] for p in written}
    assert {"resilient_ingest", "parallel_study"} <= names
