"""End-to-end integration: simulate → serialize → reload → analyze.

Verifies that the full pipeline is serialization-transparent: analyzing
logs reloaded from Zeek-format TSV files yields exactly the same results
as analyzing the in-memory stream — the property a real deployment
(reading logs Zeek wrote to disk) depends on.
"""

import io

import pytest

from repro.core import prevalence, services
from repro.core.dataset import MtlsDataset
from repro.core.enrich import Enricher
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import read_ssl_log, read_x509_log, write_ssl_log, write_x509_log


@pytest.fixture(scope="module")
def simulation():
    config = ScenarioConfig(months=4, connections_per_month=500, seed=41)
    return TrafficGenerator(config).generate()


@pytest.fixture(scope="module")
def reloaded_logs(simulation):
    ssl_buffer, x509_buffer = io.StringIO(), io.StringIO()
    write_ssl_log(simulation.logs.ssl, ssl_buffer)
    write_x509_log(simulation.logs.x509, x509_buffer)
    ssl_buffer.seek(0)
    x509_buffer.seek(0)
    return read_ssl_log(ssl_buffer), read_x509_log(x509_buffer)


class TestSerializationTransparency:
    def test_records_round_trip_exactly(self, simulation, reloaded_logs):
        ssl, x509 = reloaded_logs
        assert ssl == simulation.logs.ssl
        assert x509 == simulation.logs.x509

    def test_analysis_identical_after_round_trip(self, simulation, reloaded_logs):
        ssl, x509 = reloaded_logs
        enricher = Enricher(
            bundle=simulation.trust_bundle, ct_log=simulation.ct_log
        )
        direct = enricher.enrich(MtlsDataset.from_logs(simulation.logs))
        reloaded = enricher.enrich(MtlsDataset(ssl, x509))

        assert len(direct.connections) == len(reloaded.connections)
        assert set(direct.profiles) == set(reloaded.profiles)
        assert (
            direct.interception.flagged_issuers
            == reloaded.interception.flagged_issuers
        )

        direct_stats = {
            r.label: (r.total, r.mutual)
            for r in prevalence.certificate_statistics(direct)
        }
        reloaded_stats = {
            r.label: (r.total, r.mutual)
            for r in prevalence.certificate_statistics(reloaded)
        }
        assert direct_stats == reloaded_stats

        direct_services = services.service_breakdown(direct)
        reloaded_services = services.service_breakdown(reloaded)
        assert direct_services == reloaded_services

    def test_monthly_series_identical(self, simulation, reloaded_logs):
        ssl, x509 = reloaded_logs
        enricher = Enricher(bundle=simulation.trust_bundle)
        direct = prevalence.monthly_mutual_share(
            enricher.enrich(MtlsDataset.from_logs(simulation.logs))
        )
        reloaded = prevalence.monthly_mutual_share(
            enricher.enrich(MtlsDataset(ssl, x509))
        )
        assert direct == reloaded


class TestCertificateFidelity:
    def test_every_logged_cert_rehydrates_fields(self, simulation):
        """Spot-check DER-derived fields against the x509.log rows."""
        truth = simulation.ground_truth
        by_fp = {r.fingerprint: r for r in simulation.logs.x509}
        checked = 0
        for label, fingerprints in truth.cohort_fingerprints.items():
            for fp in list(fingerprints)[:2]:
                record = by_fp.get(fp)
                if record is None:
                    continue
                checked += 1
                assert record.fingerprint == fp
                assert record.version in (1, 3)
                assert record.serial
        assert checked > 10
