"""Tests for PEM armoring."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.x509 import CertificateAuthority, CertificateError, KeyFactory, Name
from repro.x509.pem import (
    certificate_to_pem,
    certificates_from_pem,
    certificates_to_pem,
    decode_pem_blocks,
    encode_pem_block,
)

NOW = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create_root(
        Name.build(common_name="PEM CA"), KeyFactory(mode="sim", seed=55)
    )


class TestPemBlocks:
    def test_block_structure(self):
        pem = encode_pem_block(b"\x01\x02\x03")
        assert pem.startswith("-----BEGIN CERTIFICATE-----\n")
        assert pem.rstrip().endswith("-----END CERTIFICATE-----")

    def test_line_length(self):
        pem = encode_pem_block(b"\xff" * 200)
        body_lines = pem.splitlines()[1:-1]
        assert all(len(line) <= 64 for line in body_lines)

    def test_round_trip(self):
        payload = bytes(range(256))
        assert decode_pem_blocks(encode_pem_block(payload)) == [payload]

    def test_multiple_blocks(self):
        text = encode_pem_block(b"a") + "junk between\n" + encode_pem_block(b"bb")
        assert decode_pem_blocks(text) == [b"a", b"bb"]

    def test_other_labels_skipped(self):
        text = encode_pem_block(b"key", label="PRIVATE KEY") + encode_pem_block(b"crt")
        assert decode_pem_blocks(text) == [b"crt"]
        assert decode_pem_blocks(text, label="PRIVATE KEY") == [b"key"]

    def test_no_blocks(self):
        assert decode_pem_blocks("nothing here") == []

    @given(st.binary(min_size=1, max_size=300))
    def test_round_trip_property(self, payload):
        assert decode_pem_blocks(encode_pem_block(payload)) == [payload]


class TestCertificatePem:
    def test_single_round_trip(self, ca):
        cert, _ = ca.issue(Name.build(common_name="pem.example"), now=NOW)
        decoded = certificates_from_pem(certificate_to_pem(cert))
        assert decoded == [cert]

    def test_chain_round_trip(self, ca):
        cert, _ = ca.issue(Name.build(common_name="leaf.example"), now=NOW)
        chain = [cert, ca.certificate]
        decoded = certificates_from_pem(certificates_to_pem(chain))
        assert decoded == chain
        assert decoded[0].subject.common_name == "leaf.example"

    def test_garbage_base64_rejected(self):
        bad = "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n"
        # '!' is outside the PEM body charset, so the block is not matched
        # at all — no certificates come back.
        assert certificates_from_pem(bad) == []

    def test_invalid_padding_raises(self):
        bad = "-----BEGIN CERTIFICATE-----\nQUJD\nQQ\n-----END CERTIFICATE-----\n"
        with pytest.raises(CertificateError):
            certificates_from_pem(bad)
