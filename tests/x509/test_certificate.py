"""Tests for certificate building, DER round-trip, and verification."""

import datetime as dt
import random

import pytest

from repro.x509 import (
    Certificate,
    CertificateAuthority,
    CertificateBuilder,
    CertificateError,
    GeneralName,
    InvalidSignatureError,
    KeyFactory,
    Name,
    SerialPolicy,
    Validity,
    ValidityPolicy,
    verify_certificate_signature,
    verify_chain_signatures,
)
from repro.x509.certificate import VERSION_V1, VERSION_V3

UTC = dt.timezone.utc
NB = dt.datetime(2022, 5, 1, tzinfo=UTC)
NA = dt.datetime(2023, 5, 1, tzinfo=UTC)


@pytest.fixture()
def factory():
    return KeyFactory(mode="sim", seed=11)


@pytest.fixture()
def leaf(factory):
    key = factory.new_key()
    signer = factory.new_key()
    cert = (
        CertificateBuilder()
        .subject(Name.build(common_name="leaf.example.com"))
        .issuer(Name.build(common_name="Issuing CA", organization="Example Trust"))
        .serial_number(0x1234ABCD)
        .validity_window(NB, NA)
        .public_key(key.public_key)
        .add_dns_sans(["leaf.example.com", "alt.example.com"])
        .sign(signer)
    )
    return cert, signer


class TestBuilder:
    def test_missing_fields_rejected(self, factory):
        builder = CertificateBuilder().subject(Name.build(common_name="x"))
        with pytest.raises(CertificateError):
            builder.sign(factory.new_key())

    def test_v1_rejects_extensions(self):
        builder = CertificateBuilder().version(VERSION_V1)
        with pytest.raises(CertificateError):
            builder.add_extension(
                __import__("repro.x509", fromlist=["Extension"]).Extension.basic_constraints(False)
            )

    def test_unsupported_version(self):
        with pytest.raises(CertificateError):
            CertificateBuilder().version(2)

    def test_unsupported_digest(self):
        with pytest.raises(CertificateError):
            CertificateBuilder().digest("md2")


class TestRoundTrip:
    def test_der_round_trip(self, leaf):
        cert, _ = leaf
        decoded = Certificate.from_der(cert.to_der())
        assert decoded == cert

    def test_v1_round_trip(self, factory):
        key = factory.new_key()
        cert = (
            CertificateBuilder()
            .version(VERSION_V1)
            .subject(Name.build(common_name="v1 subject"))
            .issuer(Name.build(organization="Internet Widgits Pty Ltd"))
            .serial_number(0)
            .validity_window(NB, NA)
            .public_key(key.public_key)
            .sign(key)
        )
        decoded = Certificate.from_der(cert.to_der())
        assert decoded.version == VERSION_V1
        assert decoded == cert

    def test_accessors(self, leaf):
        cert, _ = leaf
        assert cert.version == VERSION_V3
        assert cert.serial_number == 0x1234ABCD
        assert cert.serial_hex == "1234ABCD"
        assert cert.subject.common_name == "leaf.example.com"
        assert cert.issuer.organization == "Example Trust"
        assert cert.not_valid_before == NB
        assert cert.not_valid_after == NA
        assert cert.subject_alternative_name.dns_names == [
            "leaf.example.com",
            "alt.example.com",
        ]

    def test_serial_hex_pads_odd_length(self, factory):
        key = factory.new_key()
        cert = (
            CertificateBuilder()
            .subject(Name.empty())
            .issuer(Name.empty())
            .serial_number(0xABC)
            .validity_window(NB, NA)
            .public_key(key.public_key)
            .sign(key)
        )
        assert cert.serial_hex == "0ABC"

    def test_fingerprint_stable(self, leaf):
        cert, _ = leaf
        assert cert.fingerprint() == Certificate.from_der(cert.to_der()).fingerprint()
        assert len(cert.fingerprint()) == 64
        assert len(cert.fingerprint("sha1")) == 40


class TestValidity:
    def test_inverted_window_representable(self, factory):
        key = factory.new_key()
        cert = (
            CertificateBuilder()
            .subject(Name.build(common_name="broken"))
            .issuer(Name.build(organization="IDrive Inc Certificate Authority"))
            .serial_number(1)
            .validity_window(
                dt.datetime(2019, 8, 2, tzinfo=UTC),
                dt.datetime(1849, 10, 24, tzinfo=UTC),
            )
            .public_key(key.public_key)
            .sign(key)
        )
        decoded = Certificate.from_der(cert.to_der())
        assert decoded.validity.is_inverted
        assert decoded.not_valid_after.year == 1849
        assert decoded.validity.period_days < 0

    def test_contains(self):
        validity = Validity(NB, NA)
        assert validity.contains(dt.datetime(2022, 8, 1, tzinfo=UTC))
        assert not validity.contains(dt.datetime(2024, 1, 1, tzinfo=UTC))

    def test_expired_at(self, leaf):
        cert, _ = leaf
        assert cert.expired_at(dt.datetime(2024, 1, 1, tzinfo=UTC))
        assert not cert.expired_at(dt.datetime(2022, 6, 1, tzinfo=UTC))
        assert cert.days_expired(dt.datetime(2023, 5, 2, tzinfo=UTC)) == pytest.approx(1.0)

    def test_naive_datetimes_coerced(self):
        validity = Validity(dt.datetime(2022, 1, 1), dt.datetime(2023, 1, 1))
        assert validity.not_before.tzinfo is UTC


class TestVerification:
    def test_signature_verifies(self, leaf):
        cert, signer = leaf
        verify_certificate_signature(cert, signer.public_key)

    def test_wrong_key_rejected(self, leaf, factory):
        cert, _ = leaf
        with pytest.raises(InvalidSignatureError):
            verify_certificate_signature(cert, factory.new_key().public_key)

    def test_rsa_signed_certificate(self):
        factory = KeyFactory(mode="rsa", seed=9)
        key = factory.new_key(bits=512)
        cert = (
            CertificateBuilder()
            .subject(Name.build(common_name="rsa leaf"))
            .issuer(Name.build(common_name="rsa issuer"))
            .serial_number(5)
            .validity_window(NB, NA)
            .public_key(key.public_key)
            .sign(key)
        )
        decoded = Certificate.from_der(cert.to_der())
        verify_certificate_signature(decoded, key.public_key)
        assert decoded.signature_algorithm.oid.name == "sha256WithRSAEncryption"


class TestCertificateAuthority:
    def test_root_is_self_signed(self, factory):
        root = CertificateAuthority.create_root(
            Name.build(common_name="Root", organization="TestOrg"), factory
        )
        assert root.certificate.is_self_issued
        assert root.certificate.is_ca
        verify_certificate_signature(root.certificate, root.key.public_key)

    def test_chain_verifies(self, factory):
        root = CertificateAuthority.create_root(Name.build(common_name="Root"), factory)
        inter = root.create_intermediate(Name.build(common_name="Intermediate"))
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        cert, _key = inter.issue(Name.build(common_name="leaf"), now=now)
        chain = [cert] + inter.chain()
        verify_chain_signatures(chain)

    def test_broken_chain_rejected(self, factory):
        root = CertificateAuthority.create_root(Name.build(common_name="Root"), factory)
        other = CertificateAuthority.create_root(Name.build(common_name="Other"), factory)
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        cert, _ = root.issue(Name.build(common_name="leaf"), now=now)
        with pytest.raises(InvalidSignatureError):
            verify_chain_signatures([cert, other.certificate])

    def test_empty_chain_rejected(self):
        with pytest.raises(InvalidSignatureError):
            verify_chain_signatures([])

    def test_fixed_serial_policy_collides(self, factory):
        ca = CertificateAuthority.create_root(
            Name.build(common_name="Globus Online"),
            factory,
            serial_policy=SerialPolicy.fixed(0x00),
        )
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        certs = [ca.issue(Name.build(common_name=f"c{i}"), now=now)[0] for i in range(5)]
        assert {c.serial_number for c in certs} == {0}

    def test_random_serial_policy_unique(self, factory):
        ca = CertificateAuthority.create_root(Name.build(common_name="CA"), factory)
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        serials = {ca.issue(Name.build(common_name=f"c{i}"), now=now)[0].serial_number
                   for i in range(50)}
        assert len(serials) == 50

    def test_sequential_serial_policy(self, factory):
        ca = CertificateAuthority.create_root(
            Name.build(common_name="CA"),
            factory,
            serial_policy=SerialPolicy.sequential(10),
        )
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        serials = [ca.issue(Name.build(common_name=f"c{i}"), now=now)[0].serial_number
                   for i in range(3)]
        assert serials == [10, 11, 12]

    def test_validity_policy_days(self, factory):
        ca = CertificateAuthority.create_root(
            Name.build(common_name="CA"),
            factory,
            validity_policy=ValidityPolicy.days(14),
        )
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        cert, _ = ca.issue(Name.build(common_name="c"), now=now)
        assert cert.validity.period_days == pytest.approx(14)

    def test_issue_overrides(self, factory):
        ca = CertificateAuthority.create_root(Name.build(common_name="CA"), factory)
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        nb = dt.datetime(2020, 7, 3, tzinfo=UTC)
        na = dt.datetime(1850, 9, 25, tzinfo=UTC)
        cert, _ = ca.issue(
            Name.build(common_name="broken"), now=now, serial=0x24680,
            not_before=nb, not_after=na,
        )
        assert cert.serial_number == 0x24680
        assert cert.validity.is_inverted

    def test_issue_partial_override_rejected(self, factory):
        ca = CertificateAuthority.create_root(Name.build(common_name="CA"), factory)
        with pytest.raises(CertificateError):
            ca.issue(
                Name.build(common_name="x"),
                now=dt.datetime(2023, 1, 1, tzinfo=UTC),
                not_before=NB,
            )

    def test_v1_issuance(self, factory):
        ca = CertificateAuthority.create_root(Name.build(common_name="CA"), factory)
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        cert, _ = ca.issue(Name.build(common_name="old"), now=now, version=VERSION_V1)
        assert cert.version == VERSION_V1
        assert not cert.tbs.extensions

    def test_v1_with_sans_rejected(self, factory):
        ca = CertificateAuthority.create_root(Name.build(common_name="CA"), factory)
        with pytest.raises(CertificateError):
            ca.issue(
                Name.build(common_name="old"),
                now=dt.datetime(2023, 1, 1, tzinfo=UTC),
                version=VERSION_V1,
                sans=[GeneralName.dns("x")],
            )

    def test_chain_order(self, factory):
        root = CertificateAuthority.create_root(Name.build(common_name="R"), factory)
        inter = root.create_intermediate(Name.build(common_name="I"))
        chain = inter.chain()
        assert [c.subject.common_name for c in chain] == ["I", "R"]
