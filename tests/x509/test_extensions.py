"""Tests for X.509 extensions."""

import pytest

from repro.asn1 import OID
from repro.asn1.errors import DerDecodeError
from repro.x509 import (
    BasicConstraints,
    CertificateError,
    ExtendedKeyUsage,
    Extension,
    GeneralName,
    GeneralNameType,
    KeyUsage,
    SubjectAlternativeName,
)
from repro.asn1.decoder import read_single_tlv


class TestGeneralName:
    @pytest.mark.parametrize(
        "factory,value",
        [
            (GeneralName.dns, "example.com"),
            (GeneralName.dns, "*.wildcard.example"),
            (GeneralName.email, "user@example.com"),
            (GeneralName.uri, "https://example.com/path"),
            (GeneralName.ip, "192.0.2.1"),
            (GeneralName.ip, "2001:db8::1"),
        ],
    )
    def test_round_trip(self, factory, value):
        name = factory(value)
        assert GeneralName.from_tlv(read_single_tlv(name.to_der())) == name

    def test_free_text_dns_round_trip(self):
        # The paper's SAN DNS entries often carry free text, not domains.
        name = GeneralName.dns("John Smith's laptop")
        decoded = GeneralName.from_tlv(read_single_tlv(name.to_der()))
        assert decoded.value == "John Smith's laptop"

    def test_invalid_ip_rejected(self):
        with pytest.raises(CertificateError):
            GeneralName.ip("999.1.1.1").to_der()

    def test_bad_ip_length_rejected(self):
        from repro.asn1 import encode_context

        with pytest.raises(DerDecodeError):
            GeneralName.from_tlv(read_single_tlv(encode_context(7, b"\x01\x02", False)))

    def test_unknown_choice_rejected(self):
        from repro.asn1 import encode_context

        with pytest.raises(DerDecodeError):
            GeneralName.from_tlv(read_single_tlv(encode_context(3, b"", False)))


class TestSubjectAlternativeName:
    def test_round_trip_mixed_types(self):
        san = SubjectAlternativeName(
            (
                GeneralName.dns("example.com"),
                GeneralName.ip("10.0.0.1"),
                GeneralName.email("a@b.c"),
                GeneralName.uri("urn:x"),
            )
        )
        assert SubjectAlternativeName.from_der(san.to_der()) == san

    def test_type_accessors(self):
        san = SubjectAlternativeName(
            (GeneralName.dns("a"), GeneralName.dns("b"), GeneralName.ip("10.0.0.1"))
        )
        assert san.dns_names == ["a", "b"]
        assert san.ip_addresses == ["10.0.0.1"]
        assert san.emails == []
        assert san.uris == []

    def test_empty_san_falsy(self):
        assert not SubjectAlternativeName(())
        assert SubjectAlternativeName((GeneralName.dns("x"),))


class TestBasicConstraints:
    @pytest.mark.parametrize(
        "bc",
        [
            BasicConstraints(ca=False),
            BasicConstraints(ca=True),
            BasicConstraints(ca=True, path_length=0),
            BasicConstraints(ca=True, path_length=3),
        ],
    )
    def test_round_trip(self, bc):
        assert BasicConstraints.from_der(bc.to_der()) == bc

    def test_default_ca_false_omitted(self):
        # DER: DEFAULT values must be absent from the encoding.
        assert BasicConstraints(ca=False).to_der() == b"\x30\x00"


class TestKeyUsage:
    @pytest.mark.parametrize(
        "usage",
        [
            KeyUsage(),
            KeyUsage(digital_signature=True),
            KeyUsage(key_cert_sign=True, crl_sign=True),
            KeyUsage(digital_signature=True, key_encipherment=True),
        ],
    )
    def test_round_trip(self, usage):
        assert KeyUsage.from_der(usage.to_der()) == usage


class TestExtendedKeyUsage:
    def test_round_trip(self):
        eku = ExtendedKeyUsage((OID.EKU_SERVER_AUTH, OID.EKU_CLIENT_AUTH))
        assert ExtendedKeyUsage.from_der(eku.to_der()) == eku

    def test_flags(self):
        eku = ExtendedKeyUsage((OID.EKU_CLIENT_AUTH,))
        assert eku.client_auth and not eku.server_auth


class TestExtensionWrapper:
    def test_round_trip_critical(self):
        ext = Extension.basic_constraints(True, 1)
        decoded = Extension.from_tlv(read_single_tlv(ext.to_der()))
        assert decoded == ext
        assert decoded.critical

    def test_round_trip_noncritical(self):
        ext = Extension.subject_alt_name([GeneralName.dns("x")])
        decoded = Extension.from_tlv(read_single_tlv(ext.to_der()))
        assert decoded == ext
        assert not decoded.critical

    def test_ski_aki(self):
        ski = Extension.subject_key_identifier(b"\x01" * 20)
        aki = Extension.authority_key_identifier(b"\x01" * 20)
        assert Extension.from_tlv(read_single_tlv(ski.to_der())) == ski
        assert Extension.from_tlv(read_single_tlv(aki.to_der())) == aki
