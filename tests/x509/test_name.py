"""Tests for distinguished names."""

import pytest

from repro.asn1 import OID
from repro.x509 import Name, NameAttribute, NameError_, RelativeDistinguishedName
from repro.x509.name import name_from_attributes


class TestBuild:
    def test_build_basic(self):
        name = Name.build(common_name="example.com", organization="Example Org")
        assert name.common_name == "example.com"
        assert name.organization == "Example Org"

    def test_build_skips_none(self):
        name = Name.build(common_name="x", organization=None)
        assert name.organization is None
        assert len(name.rdns) == 1

    def test_build_unknown_key(self):
        with pytest.raises(NameError_):
            Name.build(favorite_color="blue")

    def test_empty_name(self):
        name = Name.empty()
        assert name.is_empty
        assert name.common_name is None

    def test_rdn_requires_attribute(self):
        with pytest.raises(NameError_):
            RelativeDistinguishedName(())


class TestDerRoundTrip:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"common_name": "example.com"},
            {"common_name": "a", "organization": "b", "country": "US"},
            {"common_name": "Mañana GmbH"},  # forces UTF8String
            {"email": "user@example.com"},
            {"user_id": "ab1cd"},
            {},
        ],
    )
    def test_round_trip(self, kwargs):
        name = Name.build(**kwargs)
        assert Name.from_der(name.to_der()) == name

    def test_multi_attribute_rdn_round_trip(self):
        rdn = RelativeDistinguishedName(
            (
                NameAttribute(OID.COMMON_NAME, "x"),
                NameAttribute(OID.ORGANIZATION, "y"),
            )
        )
        name = Name((rdn,))
        assert Name.from_der(name.to_der()) == name

    def test_empty_name_round_trip(self):
        assert Name.from_der(Name.empty().to_der()) == Name.empty()


class TestAccessors:
    def test_get_all(self):
        name = name_from_attributes(
            [(OID.ORGANIZATIONAL_UNIT, "a"), (OID.ORGANIZATIONAL_UNIT, "b")]
        )
        assert name.get_all(OID.ORGANIZATIONAL_UNIT) == ["a", "b"]

    def test_get_missing(self):
        assert Name.build(common_name="x").get(OID.COUNTRY) is None

    def test_iteration_order(self):
        name = Name.build(common_name="cn", organization="org")
        assert [a.value for a in name] == ["cn", "org"]


class TestRendering:
    def test_rfc4514_reversed_order(self):
        name = Name.build(country="US", organization="Acme", common_name="leaf")
        assert name.rfc4514() == "CN=leaf,O=Acme,C=US"

    def test_rfc4514_escaping(self):
        name = Name.build(common_name="a,b+c")
        assert name.rfc4514() == "CN=a\\,b\\+c"

    def test_rfc4514_leading_space_escaped(self):
        name = Name.build(common_name=" padded")
        assert name.rfc4514().startswith("CN=\\ ")

    def test_str_matches_rfc4514(self):
        name = Name.build(common_name="x")
        assert str(name) == name.rfc4514()

    def test_empty_renders_empty(self):
        assert Name.empty().rfc4514() == ""
