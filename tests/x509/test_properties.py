"""Property-based tests for the X.509 layer."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x509 import (
    Certificate,
    CertificateBuilder,
    KeyFactory,
    Name,
    verify_certificate_signature,
)

UTC = dt.timezone.utc

printable_text = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '-./:",
    min_size=1,
    max_size=40,
)

any_text = st.text(min_size=1, max_size=40).filter(lambda s: s.strip())

datetimes = st.datetimes(
    min_value=dt.datetime(1950, 1, 1),
    max_value=dt.datetime(2049, 12, 31),
).map(lambda d: d.replace(microsecond=0, tzinfo=UTC))

_factory = KeyFactory(mode="sim", seed=99)
_key = _factory.new_key()


def _build(cn, org, serial, nb, na, dns_names):
    return (
        CertificateBuilder()
        .subject(Name.build(common_name=cn))
        .issuer(Name.build(organization=org))
        .serial_number(serial)
        .validity_window(nb, na)
        .public_key(_key.public_key)
        .add_dns_sans(dns_names)
        .sign(_key)
    )


@settings(max_examples=60)
@given(
    cn=any_text,
    org=any_text,
    serial=st.integers(0, 2**160),
    nb=datetimes,
    na=datetimes,
    dns_names=st.lists(printable_text, max_size=4),
)
def test_certificate_round_trip(cn, org, serial, nb, na, dns_names):
    """Any certificate we can build must DER round-trip bit-exactly."""
    cert = _build(cn, org, serial, nb, na, dns_names)
    decoded = Certificate.from_der(cert.to_der())
    assert decoded == cert
    assert decoded.to_der() == cert.to_der()
    assert decoded.subject.common_name == cn
    assert decoded.issuer.organization == org
    assert decoded.serial_number == serial


@settings(max_examples=30)
@given(serial=st.integers(0, 2**64), nb=datetimes, na=datetimes)
def test_signature_always_verifies(serial, nb, na):
    cert = _build("cn", "org", serial, nb, na, [])
    verify_certificate_signature(cert, _key.public_key)


@settings(max_examples=30)
@given(nb=datetimes, na=datetimes)
def test_inversion_detection_matches_ordering(nb, na):
    cert = _build("cn", "org", 1, nb, na, [])
    assert cert.validity.is_inverted == (nb > na)


@settings(max_examples=30)
@given(serial=st.integers(0, 2**80))
def test_serial_hex_round_trips_via_int(serial):
    cert = _build("cn", "org", serial, dt.datetime(2022, 1, 1, tzinfo=UTC),
                  dt.datetime(2023, 1, 1, tzinfo=UTC), [])
    assert int(cert.serial_hex, 16) == serial
    assert len(cert.serial_hex) % 2 == 0
