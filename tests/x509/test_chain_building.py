"""Tests for chain assembly from certificate pools."""

import datetime as dt

import pytest

from repro.x509 import CertificateAuthority, KeyFactory, Name
from repro.x509.verify import build_chain, verify_chain_signatures

NOW = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)


@pytest.fixture(scope="module")
def world():
    factory = KeyFactory(mode="sim", seed=91)
    root = CertificateAuthority.create_root(
        Name.build(common_name="Pool Root", organization="Pool Org"), factory
    )
    inter = root.create_intermediate(Name.build(common_name="Pool Sub CA"))
    leaf, _ = inter.issue(Name.build(common_name="leaf.example"), now=NOW)
    # A decoy CA with the SAME subject DN as the intermediate but a
    # different key: DN matching alone would pick the wrong parent.
    decoy = CertificateAuthority.create_root(
        Name.build(common_name="Pool Sub CA"), factory
    )
    return root, inter, leaf, decoy


class TestBuildChain:
    def test_full_chain_assembled(self, world):
        root, inter, leaf, decoy = world
        pool = [root.certificate, inter.certificate]
        chain = build_chain(leaf, pool)
        assert [c.subject.common_name for c in chain] == [
            "leaf.example", "Pool Sub CA", "Pool Root",
        ]
        verify_chain_signatures(chain)

    def test_pool_order_irrelevant(self, world):
        root, inter, leaf, _ = world
        forward = build_chain(leaf, [root.certificate, inter.certificate])
        backward = build_chain(leaf, [inter.certificate, root.certificate])
        assert forward == backward

    def test_decoy_with_same_dn_rejected(self, world):
        root, inter, leaf, decoy = world
        # Decoy listed FIRST: signature verification must skip it.
        pool = [decoy.certificate, inter.certificate, root.certificate]
        chain = build_chain(leaf, pool)
        assert chain[1] == inter.certificate
        verify_chain_signatures(chain)

    def test_missing_parent_stops(self, world):
        root, inter, leaf, _ = world
        chain = build_chain(leaf, [root.certificate])  # intermediate absent
        assert chain == [leaf]

    def test_self_signed_leaf(self, world):
        root, *_ = world
        chain = build_chain(root.certificate, [root.certificate])
        assert chain == [root.certificate]

    def test_max_depth_bounds_loops(self, world):
        root, inter, leaf, _ = world
        chain = build_chain(leaf, [inter.certificate, root.certificate], max_depth=1)
        assert len(chain) == 2

    def test_empty_pool(self, world):
        _root, _inter, leaf, _decoy = world
        assert build_chain(leaf, []) == [leaf]
