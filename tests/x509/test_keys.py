"""Tests for RSA and simulated key pairs."""

import pytest

from repro.x509 import InvalidSignatureError, KeyError_, KeyFactory, generate_rsa_key
from repro.x509.keys import (
    RsaPublicKey,
    SimPrivateKey,
    SimPublicKey,
    public_key_from_spki,
)


@pytest.fixture(scope="module")
def rsa_key():
    return generate_rsa_key(bits=512, seed=42)


class TestRsa:
    def test_key_size(self, rsa_key):
        assert rsa_key.modulus.bit_length() == 512
        assert rsa_key.public_key.bit_length == 512

    def test_deterministic_generation(self):
        a = generate_rsa_key(bits=256, seed=7)
        b = generate_rsa_key(bits=256, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_rsa_key(bits=256, seed=1)
        b = generate_rsa_key(bits=256, seed=2)
        assert a != b

    def test_sign_verify_round_trip(self, rsa_key):
        message = b"to be signed"
        signature = rsa_key.sign(message)
        rsa_key.public_key.verify(message, signature)  # no exception

    def test_tampered_message_rejected(self, rsa_key):
        signature = rsa_key.sign(b"original")
        with pytest.raises(InvalidSignatureError):
            rsa_key.public_key.verify(b"tampered", signature)

    def test_tampered_signature_rejected(self, rsa_key):
        signature = bytearray(rsa_key.sign(b"message"))
        signature[0] ^= 0x01
        with pytest.raises(InvalidSignatureError):
            rsa_key.public_key.verify(b"message", bytes(signature))

    def test_wrong_length_signature_rejected(self, rsa_key):
        with pytest.raises(InvalidSignatureError):
            rsa_key.public_key.verify(b"message", b"\x00" * 10)

    def test_sha1_digest(self, rsa_key):
        signature = rsa_key.sign(b"msg", digest="sha1")
        rsa_key.public_key.verify(b"msg", signature, digest="sha1")
        with pytest.raises(InvalidSignatureError):
            rsa_key.public_key.verify(b"msg", signature, digest="sha256")

    def test_unsupported_digest(self, rsa_key):
        with pytest.raises(KeyError_):
            rsa_key.sign(b"msg", digest="md4")

    def test_spki_round_trip(self, rsa_key):
        der = rsa_key.public_key.to_spki_der()
        decoded = RsaPublicKey.from_spki_der(der)
        assert decoded == rsa_key.public_key

    def test_generic_spki_loader(self, rsa_key):
        der = rsa_key.public_key.to_spki_der()
        assert public_key_from_spki(der) == rsa_key.public_key

    def test_too_small_modulus_rejected(self):
        with pytest.raises(KeyError_):
            generate_rsa_key(bits=64)


class TestSimScheme:
    def test_sign_verify(self):
        key = SimPrivateKey(key_id=b"\x01" * 16)
        signature = key.sign(b"message")
        key.public_key.verify(b"message", signature)

    def test_tamper_rejected(self):
        key = SimPrivateKey(key_id=b"\x01" * 16)
        signature = key.sign(b"message")
        with pytest.raises(InvalidSignatureError):
            key.public_key.verify(b"other", signature)

    def test_other_key_rejected(self):
        signer = SimPrivateKey(key_id=b"\x01" * 16)
        other = SimPublicKey(key_id=b"\x02" * 16)
        with pytest.raises(InvalidSignatureError):
            other.verify(b"message", signer.sign(b"message"))

    def test_declared_bits(self):
        key = SimPrivateKey(key_id=b"k", declared_bits=1024)
        assert key.public_key.bit_length == 1024

    def test_spki_round_trip(self):
        key = SimPublicKey(key_id=b"\xaa" * 16, declared_bits=1024)
        assert SimPublicKey.from_spki_der(key.to_spki_der()) == key

    def test_generic_spki_loader(self):
        key = SimPublicKey(key_id=b"\xbb" * 16)
        assert public_key_from_spki(key.to_spki_der()) == key

    def test_digest_variants_differ(self):
        key = SimPrivateKey(key_id=b"k")
        assert key.sign(b"m", digest="sha256") != key.sign(b"m", digest="sha1")


class TestKeyFactory:
    def test_sim_keys_are_unique(self):
        factory = KeyFactory(mode="sim", seed=3)
        keys = {factory.new_key().key_id for _ in range(100)}
        assert len(keys) == 100

    def test_sim_mode_deterministic(self):
        a = KeyFactory(mode="sim", seed=5).new_key()
        b = KeyFactory(mode="sim", seed=5).new_key()
        assert a.key_id == b.key_id

    def test_rsa_mode_returns_real_keys(self):
        factory = KeyFactory(mode="rsa", seed=1)
        key = factory.new_key(bits=512)
        signature = key.sign(b"x")
        key.public_key.verify(b"x", signature)

    def test_rsa_mode_caches(self):
        factory = KeyFactory(mode="rsa", seed=1)
        keys = [factory.new_key(bits=512) for _ in range(10)]
        assert len({k.modulus for k in keys}) <= 4

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError_):
            KeyFactory(mode="dsa")
