"""Shared fixtures: one small and one medium study run per session."""

import pytest

from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig


@pytest.fixture(scope="session")
def small_study():
    """A quick run for structural tests."""
    return CampusStudy(config=ScenarioConfig(months=4, connections_per_month=400, seed=17))


@pytest.fixture(scope="session")
def small_result(small_study):
    return small_study.run()


@pytest.fixture(scope="session")
def medium_study():
    """A calibrated run for shape assertions (full 23-month timeline)."""
    return CampusStudy(config=ScenarioConfig(months=23, connections_per_month=1200, seed=23))


@pytest.fixture(scope="session")
def medium_result(medium_study):
    return medium_study.run()
