"""Shared fixtures: one small and one medium study run per session."""

import signal

import pytest

from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig


@pytest.fixture
def supervision_watchdog():
    """pytest-timeout equivalent for the parallel/supervisor modules.

    A supervision regression (a lost wakeup, an unkilled hung worker)
    would otherwise hang the whole suite; the alarm turns it into a
    test failure. Apply per module with
    ``pytestmark = pytest.mark.usefixtures("supervision_watchdog")``.
    """

    def _abort(signum, frame):  # pragma: no cover - fires only on regression
        raise TimeoutError("supervised-execution test exceeded 120s watchdog")

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_study():
    """A quick run for structural tests."""
    return CampusStudy(config=ScenarioConfig(months=4, connections_per_month=400, seed=17))


@pytest.fixture(scope="session")
def small_result(small_study):
    return small_study.run()


@pytest.fixture(scope="session")
def medium_study():
    """A calibrated run for shape assertions (full 23-month timeline)."""
    return CampusStudy(config=ScenarioConfig(months=23, connections_per_month=1200, seed=23))


@pytest.fixture(scope="session")
def medium_result(medium_study):
    return medium_study.run()
