"""MetricsRegistry contract: picklable state, exact round trips, and —
the load-bearing property — merge associativity / shard-order
insensitivity, pinned the same way ``test_protocol.py`` pins the
analysis partials. Values are drawn from dyadic rationals (k/8) so
float addition is exact and the equality assertions are legitimate.
"""

import json
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics, tracing
from repro.core.metrics import (
    COUNT_EDGES,
    DEFAULT_EDGES,
    Histogram,
    MetricsRegistry,
    Timer,
)

NAMES = ("alpha", "beta", "gamma", "delta")

#: Exact-in-binary floats, so sums are associative and == is honest.
dyadic = st.integers(min_value=-800, max_value=800).map(lambda k: k / 8)
positive_dyadic = st.integers(min_value=0, max_value=800).map(lambda k: k / 8)


def _edges_for(name: str) -> tuple[float, ...]:
    """Deterministic edges per metric name so merges never mismatch."""
    return DEFAULT_EDGES if name < "c" else COUNT_EDGES


events = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from(NAMES),
                  st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("gauge"), st.sampled_from(NAMES), dyadic),
        st.tuples(st.just("observe"), st.sampled_from(NAMES), positive_dyadic),
        st.tuples(st.just("time"), st.sampled_from(NAMES), positive_dyadic),
    ),
    max_size=60,
)


def _apply(registry: MetricsRegistry, batch) -> None:
    for kind, name, value in batch:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.set_gauge(name, value)
        elif kind == "observe":
            registry.observe(name, value, _edges_for(name))
        else:
            registry.add_time(name, value)


def _build(batch) -> MetricsRegistry:
    registry = MetricsRegistry()
    _apply(registry, batch)
    return registry


class TestPrimitives:
    def test_histogram_bucket_assignment(self):
        hist = Histogram(edges=(1.0, 10.0))
        for value in (0.0, 1.0):
            hist.observe(value)          # <= 1.0
        for value in (1.5, 10.0):
            hist.observe(value)          # <= 10.0
        hist.observe(11.0)               # overflow
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.total == pytest.approx(23.5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(edges=(10.0, 1.0))

    def test_histogram_merge_rejects_different_edges(self):
        with pytest.raises(ValueError, match="different bucket edges"):
            Histogram(edges=(1.0,)).merge(Histogram(edges=(2.0,)))

    def test_timer_tracks_total_count_max(self):
        timer = Timer()
        for seconds in (0.5, 2.0, 1.0):
            timer.add(seconds)
        assert (timer.total, timer.count, timer.max) == (3.5, 3, 2.0)
        other = Timer()
        other.add(5.0)
        timer.merge(other)
        assert (timer.total, timer.count, timer.max) == (8.5, 4, 5.0)

    def test_gauge_merge_keeps_max(self):
        a = _build([("gauge", "alpha", 3.0)])
        b = _build([("gauge", "alpha", 7.0), ("gauge", "beta", 1.0)])
        a.merge(b)
        assert a.gauges == {"alpha": 7.0, "beta": 1.0}


class TestStateRoundTrip:
    def test_state_dict_round_trips(self):
        registry = _build(
            [("inc", "alpha", 3), ("gauge", "beta", 2.5),
             ("observe", "gamma", 12.0), ("time", "delta", 0.25)]
        )
        clone = MetricsRegistry.from_state(registry.state_dict())
        assert clone.state_dict() == registry.state_dict()

    def test_state_dict_is_json_serializable(self):
        registry = _build([("inc", "alpha", 1), ("observe", "beta", 2.0)])
        parsed = json.loads(json.dumps(registry.state_dict()))
        assert MetricsRegistry.from_state(parsed).state_dict() == \
            registry.state_dict()

    def test_registry_is_picklable(self):
        registry = _build([("inc", "alpha", 2), ("time", "beta", 1.5)])
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.state_dict() == registry.state_dict()

    def test_from_state_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unsupported metrics"):
            MetricsRegistry.from_state({"format": "bogus/v9"})

    def test_merge_state_none_is_noop(self):
        registry = _build([("inc", "alpha", 1)])
        before = registry.state_dict()
        registry.merge_state(None)
        assert registry.state_dict() == before

    def test_empty_property(self):
        assert MetricsRegistry().empty
        assert not _build([("inc", "alpha", 1)]).empty


class TestMergeEquivalence:
    """Sequential == any shard split == any (shuffled) merge order."""

    @settings(max_examples=50, deadline=None)
    @given(a=events, b=events, c=events)
    def test_merge_is_associative(self, a, b, c):
        left = _build(a).merge(_build(b))
        left.merge(_build(c))
        right = _build(b).merge(_build(c))
        result = _build(a).merge(right)
        assert left.state_dict() == result.state_dict()

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_shard_order_insensitivity(self, data):
        stream = data.draw(events)
        sequential = _build(stream)
        n_chunks = data.draw(st.integers(min_value=1, max_value=5))
        bounds = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(stream)),
                    min_size=n_chunks - 1, max_size=n_chunks - 1,
                )
            )
        )
        bounds = [0, *bounds, len(stream)]
        shards = [
            _build(stream[bounds[i]:bounds[i + 1]])
            for i in range(len(bounds) - 1)
        ]
        order = list(range(len(shards)))
        random.Random(data.draw(st.integers(0, 2**16))).shuffle(order)
        merged = MetricsRegistry()
        for index in order:
            merged.merge(shards[index])
        # Gauges are last-write-wins per shard but max across shards;
        # a shuffled merge can only disagree with the sequential run on
        # gauges, so they are compared with max semantics applied.
        want = sequential.state_dict()
        got = merged.state_dict()
        assert got["counters"] == want["counters"]
        assert got["histograms"] == want["histograms"]
        assert got["timers"] == want["timers"]
        for name, value in got["gauges"].items():
            assert value >= want["gauges"][name] or value == max(
                v for kind, n, v in stream if kind == "gauge" and n == name
            )

    @settings(max_examples=25, deadline=None)
    @given(batch=events)
    def test_merge_empty_is_identity(self, batch):
        registry = _build(batch)
        before = registry.state_dict()
        registry.merge(MetricsRegistry())
        assert registry.state_dict() == before
        fresh = MetricsRegistry().merge(registry)
        assert fresh.state_dict() == before

    @settings(max_examples=25, deadline=None)
    @given(a=events, b=events)
    def test_merge_state_equals_merge(self, a, b):
        via_object = _build(a).merge(_build(b))
        via_state = _build(a).merge_state(_build(b).state_dict())
        assert via_object.state_dict() == via_state.state_dict()


class TestAmbientRegistry:
    def test_scoped_swaps_and_restores(self):
        outer = metrics.get_registry()
        inner = MetricsRegistry()
        with metrics.scoped(inner) as active:
            assert active is inner
            assert metrics.get_registry() is inner
            metrics.get_registry().inc("scoped.hits")
        assert metrics.get_registry() is outer
        assert inner.counters == {"scoped.hits": 1}

    def test_scoped_restores_on_exception(self):
        outer = metrics.get_registry()
        with pytest.raises(RuntimeError):
            with metrics.scoped(MetricsRegistry()):
                raise RuntimeError("boom")
        assert metrics.get_registry() is outer


class TestSpan:
    def test_span_feeds_ambient_timer(self):
        registry = MetricsRegistry()
        with metrics.scoped(registry):
            with tracing.span("phase.x"):
                pass
        assert registry.timers["phase.x"].count == 1
        assert registry.timers["phase.x"].total >= 0.0

    def test_span_emits_event_when_sink_configured(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracing.configure(sink)
        try:
            with metrics.scoped(MetricsRegistry()):
                with tracing.span("phase.traced", month="2023-01"):
                    pass
                with pytest.raises(ValueError):
                    with tracing.span("phase.failed"):
                        raise ValueError("boom")
        finally:
            tracing.configure(None)
        assert not tracing.enabled()
        spans = {e["name"]: e for e in tracing.read_trace(sink)}
        assert spans["phase.traced"]["status"] == "ok"
        assert spans["phase.traced"]["meta"] == {"month": "2023-01"}
        assert spans["phase.traced"]["format"] == tracing.TRACE_FORMAT
        assert spans["phase.failed"]["status"] == "error"

    def test_span_without_sink_emits_nothing(self, tmp_path):
        assert not tracing.enabled()
        with metrics.scoped(MetricsRegistry()):
            with tracing.span("phase.untraced"):
                pass
        assert list(tmp_path.iterdir()) == []


class TestDomainHelpers:
    def test_observe_ingest_maps_report_fields(self):
        from repro.zeek import IngestReport

        report = IngestReport()
        report.record_row()
        report.record_row()
        report.record_drop(
            path="ssl.log", line_number=3, category="field-count",
            reason="bad", raw="raw\tline",
        )
        registry = MetricsRegistry()
        registry.observe_ingest(report, "ssl")
        assert registry.counters["ingest.ssl.rows_ok"] == 2
        assert registry.counters["ingest.ssl.rows_dropped"] == 1
        assert registry.counters["ingest.ssl.rows_quarantined"] == 1
        assert registry.counters["ingest.ssl.dropped.field-count"] == 1

    def test_render_lists_every_metric(self):
        registry = _build(
            [("inc", "alpha", 5), ("gauge", "beta", 1.5),
             ("observe", "gamma", 3.0), ("time", "delta", 0.5)]
        )
        rendered = registry.render().render()
        assert "Run metrics" in rendered
        for name in ("alpha", "beta", "gamma", "delta"):
            assert name in rendered

    def test_render_empty_registry_notes_it(self):
        assert "no metrics recorded" in MetricsRegistry().render().render()
