"""FileLock: advisory flock semantics, holder diagnostics, timeouts.

Same-process conflict tests are valid because ``flock`` locks attach to
the open file description — two separately opened descriptors conflict
exactly like two processes (which is also why acquisitions of one lock
path must never nest in one process).
"""

import json
import os

import pytest

from repro.core.locks import DEFAULT_TIMEOUT, FileLock, LockTimeout, pid_alive


@pytest.fixture()
def lock_path(tmp_path):
    return tmp_path / ".lock"


class TestAcquireRelease:
    def test_exclusive_acquire_creates_lock_file(self, lock_path):
        lock = FileLock(lock_path)
        assert not lock.held
        lock.acquire(exclusive=True, op="test")
        try:
            assert lock.held
            assert lock_path.exists()
        finally:
            lock.release()
        assert not lock.held

    def test_release_is_idempotent(self, lock_path):
        lock = FileLock(lock_path)
        lock.acquire()
        lock.release()
        lock.release()  # no-op, no error
        assert not lock.held

    def test_double_acquire_same_instance_rejected(self, lock_path):
        lock = FileLock(lock_path)
        lock.acquire()
        try:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()
        finally:
            lock.release()

    def test_context_managers_release(self, lock_path):
        lock = FileLock(lock_path)
        with lock.exclusive(op="cm"):
            assert lock.held
        assert not lock.held
        with lock.shared():
            assert lock.held
        assert not lock.held

    def test_reacquire_after_release(self, lock_path):
        lock = FileLock(lock_path)
        with lock.exclusive():
            pass
        with lock.shared():
            assert lock.held


class TestConflicts:
    def test_exclusive_blocks_exclusive(self, lock_path):
        first, second = FileLock(lock_path), FileLock(lock_path)
        with first.exclusive(op="pack"):
            with pytest.raises(LockTimeout):
                second.acquire(exclusive=True, timeout=0)
        # Released: the second locker now succeeds.
        with second.exclusive():
            assert second.held

    def test_exclusive_blocks_shared(self, lock_path):
        writer, reader = FileLock(lock_path), FileLock(lock_path)
        with writer.exclusive(op="pack"):
            with pytest.raises(LockTimeout):
                reader.acquire(exclusive=False, timeout=0)

    def test_shared_blocks_exclusive(self, lock_path):
        reader, writer = FileLock(lock_path), FileLock(lock_path)
        with reader.shared():
            with pytest.raises(LockTimeout):
                writer.acquire(exclusive=True, timeout=0)

    def test_shared_coexists_with_shared(self, lock_path):
        a, b = FileLock(lock_path), FileLock(lock_path)
        with a.shared():
            with b.shared():
                assert a.held and b.held

    def test_short_timeout_waits_then_raises(self, lock_path):
        first, second = FileLock(lock_path), FileLock(lock_path)
        with first.exclusive():
            with pytest.raises(LockTimeout):
                second.acquire(timeout=0.15)


class TestDiagnostics:
    def test_exclusive_holder_records_pid_and_op(self, lock_path):
        lock = FileLock(lock_path)
        with lock.exclusive(op="pack"):
            info = lock.holder()
            assert info is not None
            assert info["pid"] == os.getpid()
            assert info["op"] == "pack"

    def test_live_holder_is_not_stale(self, lock_path):
        lock = FileLock(lock_path)
        with lock.exclusive(op="serve"):
            assert not lock.is_stale()

    def test_dead_holder_metadata_is_stale(self, lock_path):
        # Simulate a SIGKILLed holder: its flock evaporated with it, but
        # the metadata it wrote survives and names a dead pid. Find one
        # by forking a child that exits immediately.
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # pragma: no cover - child
        os.waitpid(pid, 0)
        assert not pid_alive(pid)
        lock_path.write_text(
            json.dumps({"pid": pid, "op": "pack", "time": 0}), encoding="utf-8"
        )
        lock = FileLock(lock_path)
        assert lock.is_stale()
        # And the flock itself is gone, so acquisition succeeds at once.
        with lock.exclusive(op="takeover"):
            assert lock.holder()["pid"] == os.getpid()

    def test_timeout_message_names_holder(self, lock_path):
        first, second = FileLock(lock_path), FileLock(lock_path)
        with first.exclusive(op="pack"):
            with pytest.raises(LockTimeout, match=r"pid \d+ \(pack, alive\)"):
                second.acquire(timeout=0)

    def test_holder_none_when_unreadable(self, lock_path):
        assert FileLock(lock_path).holder() is None
        lock_path.write_text("not json", encoding="utf-8")
        assert FileLock(lock_path).holder() is None
        assert not FileLock(lock_path).is_stale()


class TestPidAlive:
    def test_own_pid_alive(self):
        assert pid_alive(os.getpid())

    def test_nonpositive_never_alive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


def test_default_timeout_is_generous():
    assert DEFAULT_TIMEOUT >= 60
