"""Checkpoint/resume for the streaming analyzer.

The headline guarantee: kill the ingestion after month N, resume from
the JSON snapshot, and the final aggregates are identical to an
uninterrupted run — including eviction and dangling-fuid bookkeeping.
"""

import dataclasses
import json

import pytest

from repro.core.streaming import SNAPSHOT_FORMAT, StreamingAnalyzer
from repro.netsim import ScenarioConfig, TrafficGenerator


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(months=5, connections_per_month=300, seed=83)
    ).generate()


def _months(simulation):
    by_ssl: dict[str, list] = {}
    by_x509: dict[str, list] = {}
    for record in simulation.logs.ssl:
        by_ssl.setdefault(f"{record.ts:%Y-%m}", []).append(record)
    for record in simulation.logs.x509:
        by_x509.setdefault(f"{record.ts:%Y-%m}", []).append(record)
    return [
        (by_ssl[m], by_x509.get(m, [])) for m in sorted(by_ssl)
    ]


def _run(simulation, months, **kwargs):
    analyzer = StreamingAnalyzer(simulation.trust_bundle, **kwargs)
    for ssl, x509 in months:
        analyzer.add_month(ssl, x509)
    return analyzer


def _state(analyzer):
    return (
        analyzer.monthly_mutual_share(),
        analyzer.certificate_statistics(),
        analyzer.connections_seen,
        analyzer.dropped_unestablished,
        analyzer.dropped_dangling_fuid,
        analyzer.fuid_evictions,
    )


class TestSnapshotResume:
    @pytest.mark.parametrize("kill_after", [1, 2, 4])
    def test_resume_matches_uninterrupted(self, simulation, kill_after):
        months = _months(simulation)
        uninterrupted = _run(simulation, months)

        first = _run(simulation, months[:kill_after])
        wire = json.dumps(first.to_snapshot())  # the process dies here
        resumed = StreamingAnalyzer.from_snapshot(
            simulation.trust_bundle, json.loads(wire)
        )
        for ssl, x509 in months[kill_after:]:
            resumed.add_month(ssl, x509)
        assert _state(resumed) == _state(uninterrupted)

    def test_resume_matches_with_bounded_fuid_map(self, simulation):
        months = _months(simulation)
        bound = 50  # small enough to force evictions
        uninterrupted = _run(simulation, months, max_fuid_map=bound)
        assert uninterrupted.fuid_evictions > 0

        first = _run(simulation, months[:2], max_fuid_map=bound)
        resumed = StreamingAnalyzer.from_snapshot(
            simulation.trust_bundle, json.loads(json.dumps(first.to_snapshot()))
        )
        assert resumed.max_fuid_map == bound
        for ssl, x509 in months[2:]:
            resumed.add_month(ssl, x509)
        assert _state(resumed) == _state(uninterrupted)

    def test_snapshot_round_trip_is_stable(self, simulation):
        analyzer = _run(simulation, _months(simulation)[:2])
        snapshot = analyzer.to_snapshot()
        restored = StreamingAnalyzer.from_snapshot(
            simulation.trust_bundle, snapshot
        )
        assert restored.to_snapshot() == snapshot

    def test_snapshot_is_json_serializable(self, simulation):
        analyzer = _run(simulation, _months(simulation))
        encoded = json.dumps(analyzer.to_snapshot())
        assert json.loads(encoded)["format"] == SNAPSHOT_FORMAT

    def test_wrong_format_rejected(self, simulation):
        with pytest.raises(ValueError, match="unsupported snapshot format"):
            StreamingAnalyzer.from_snapshot(
                simulation.trust_bundle, {"format": "streaming-analyzer/v0"}
            )


class TestCheckpointFile:
    def test_write_and_read_checkpoint(self, simulation, tmp_path):
        months = _months(simulation)
        analyzer = _run(simulation, months[:3])
        path = analyzer.write_checkpoint(tmp_path / "ckpt.json")
        assert path.exists()
        assert not path.with_suffix(".json.tmp").exists()  # atomic rename

        resumed = StreamingAnalyzer.from_checkpoint(simulation.trust_bundle, path)
        for ssl, x509 in months[3:]:
            resumed.add_month(ssl, x509)
        assert _state(resumed) == _state(_run(simulation, months))

    def test_checkpoint_overwrites_previous(self, simulation, tmp_path):
        months = _months(simulation)
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        path = tmp_path / "ckpt.json"
        for ssl, x509 in months:
            analyzer.add_month(ssl, x509)
            analyzer.write_checkpoint(path)
        final = StreamingAnalyzer.from_checkpoint(simulation.trust_bundle, path)
        assert _state(final) == _state(analyzer)


class TestBoundedFuidMap:
    def test_rejects_nonpositive_bound(self, simulation):
        with pytest.raises(ValueError, match="max_fuid_map"):
            StreamingAnalyzer(simulation.trust_bundle, max_fuid_map=0)

    def test_eviction_produces_dangling_refs(self, simulation):
        months = _months(simulation)
        tight = _run(simulation, months, max_fuid_map=10)
        loose = _run(simulation, months)
        assert tight.fuid_evictions > 0
        assert tight.dropped_dangling_fuid >= loose.dropped_dangling_fuid

    def test_unbounded_run_has_no_evictions(self, simulation):
        analyzer = _run(simulation, _months(simulation))
        assert analyzer.fuid_evictions == 0

    def test_reannounced_fuid_refreshes_recency(self, simulation):
        bundle = simulation.trust_bundle
        x509 = [
            dataclasses.replace(r, fuid=f"F{i}")
            for i, r in enumerate(simulation.logs.x509[:3])
        ]
        analyzer = StreamingAnalyzer(bundle, max_fuid_map=3)
        analyzer.add_x509(x509)
        analyzer.add_x509([x509[0]])  # F0 re-announced: now most recent
        analyzer.add_x509([dataclasses.replace(x509[1], fuid="F9")])
        # The bound evicted exactly one entry, and it was not F0.
        assert analyzer.fuid_evictions == 1
        assert "F0" in analyzer._fuid_to_fp
        assert "F1" not in analyzer._fuid_to_fp


class TestSnapshotUpgrade:
    """v1 snapshots (pre-registry layout) must still load into v2."""

    def _v1_snapshot(self, analyzer):
        """Downgrade a v2 snapshot to the exact v1 on-disk layout."""
        v2 = analyzer.to_snapshot()
        return {
            "format": "streaming-analyzer/v1",
            "max_fuid_map": v2["max_fuid_map"],
            "fuid_to_fp": v2["fuid_to_fp"],
            "certs": v2["partials"]["table1"]["certs"],
            "monthly_total": v2["partials"]["figure1"]["total"],
            "monthly_mutual": v2["partials"]["figure1"]["mutual"],
            "connections_seen": v2["connections_seen"],
            "dropped_unestablished": v2["dropped_unestablished"],
            "dropped_dangling_fuid": v2["dropped_dangling_fuid"],
            "fuid_evictions": v2["fuid_evictions"],
        }

    def test_format_is_v2(self, simulation):
        assert SNAPSHOT_FORMAT == "streaming-analyzer/v2"
        analyzer = _run(simulation, _months(simulation))
        assert analyzer.to_snapshot()["format"] == SNAPSHOT_FORMAT

    def test_v2_embeds_registry_partials(self, simulation):
        snapshot = _run(simulation, _months(simulation)).to_snapshot()
        assert set(snapshot["partials"]) == {"figure1", "table1", "tls13"}

    def test_v1_loads_with_empty_new_fields(self, simulation):
        analyzer = _run(simulation, _months(simulation))
        v1 = self._v1_snapshot(analyzer)
        restored = StreamingAnalyzer.from_snapshot(
            simulation.trust_bundle, json.loads(json.dumps(v1))
        )
        # Everything v1 tracked survives ...
        assert restored.monthly_mutual_share() == analyzer.monthly_mutual_share()
        assert restored.certificate_statistics() == analyzer.certificate_statistics()
        assert restored.connections_seen == analyzer.connections_seen
        # ... and the field v1 never had starts empty.
        assert restored.tls13_blindspot().total_connections == 0

    def test_v1_resume_continues_correctly(self, simulation):
        """Resume from a v1 checkpoint mid-stream; old aggregates match
        an uninterrupted run (the blind spot only covers the tail)."""
        months = _months(simulation)
        uninterrupted = _run(simulation, months)
        first = _run(simulation, months[:2])
        v1 = self._v1_snapshot(first)
        resumed = StreamingAnalyzer.from_snapshot(simulation.trust_bundle, v1)
        for ssl, x509 in months[2:]:
            resumed.add_month(ssl, x509)
        assert resumed.monthly_mutual_share() == uninterrupted.monthly_mutual_share()
        assert (
            resumed.certificate_statistics()
            == uninterrupted.certificate_statistics()
        )
        tail = sum(1 for ssl, _ in months[2:] for r in ssl if r.established)
        assert resumed.tls13_blindspot().total_connections == tail

    def test_unknown_format_still_rejected(self, simulation):
        analyzer = _run(simulation, _months(simulation))
        snapshot = analyzer.to_snapshot()
        snapshot["format"] = "streaming-analyzer/v3"
        with pytest.raises(ValueError, match="unsupported snapshot format"):
            StreamingAnalyzer.from_snapshot(simulation.trust_bundle, snapshot)

    def test_streaming_blindspot_matches_batch(self, simulation):
        from repro.core.dataset import MtlsDataset
        from repro.core.tuples import tls13_blindspot

        analyzer = _run(simulation, _months(simulation))
        batch = tls13_blindspot(MtlsDataset.from_logs(simulation.logs))
        assert analyzer.tls13_blindspot() == batch


class TestDurableCheckpoint:
    """Crash-safe checkpoint files: fsync'd atomic writes, no stray tmp
    files, and a retained last-good fallback for torn primary writes."""

    def test_tmp_file_removed_on_write_failure(self, simulation, tmp_path):
        analyzer = _run(simulation, _months(simulation)[:1])
        path = tmp_path / "ckpt.json"
        with pytest.raises(TypeError):
            # A non-serializable rider poisons json.dump mid-write.
            analyzer.write_checkpoint(path, extra={"bad": object()})
        assert not path.with_suffix(".json.tmp").exists()
        assert not path.exists()

    def test_write_fsyncs_before_rename(self, simulation, tmp_path, monkeypatch):
        # Checkpoint writes route through the shared durable-write
        # sequence; the fsync must land before the publishing rename.
        import os as _os

        calls = []
        real_fsync = _os.fsync
        real_replace = _os.replace
        monkeypatch.setattr(
            "repro.core.durable.os.fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd)),
        )
        monkeypatch.setattr(
            "repro.core.durable.os.replace",
            lambda src, dst: (calls.append("replace"), real_replace(src, dst)),
        )
        analyzer = _run(simulation, _months(simulation)[:1])
        analyzer.write_checkpoint(tmp_path / "ckpt.json")
        assert "fsync" in calls, "checkpoint bytes must be fsync'd"
        assert calls.index("fsync") < calls.index("replace")

    def test_previous_checkpoint_retained(self, simulation, tmp_path):
        months = _months(simulation)
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        path = tmp_path / "ckpt.json"
        analyzer.add_month(*months[0])
        analyzer.write_checkpoint(path)
        first = path.read_text()
        analyzer.add_month(*months[1])
        analyzer.write_checkpoint(path)
        prev = path.with_suffix(".json.prev")
        assert prev.exists()
        assert prev.read_text() == first

    def test_corrupt_primary_falls_back_to_prev(self, simulation, tmp_path):
        months = _months(simulation)
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        path = tmp_path / "ckpt.json"
        analyzer.add_month(*months[0])
        analyzer.write_checkpoint(path)
        analyzer.add_month(*months[1])
        analyzer.write_checkpoint(path)
        # A torn write leaves truncated JSON in the primary file.
        path.write_text(path.read_text()[: 40])
        restored = StreamingAnalyzer.from_checkpoint(
            simulation.trust_bundle, path
        )
        expected = _run(simulation, months[:1])
        assert _state(restored) == _state(expected)
        assert restored.metrics.counters["streaming.checkpoint_fallbacks"] == 1

    def test_corrupt_primary_without_prev_raises(self, simulation, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            StreamingAnalyzer.from_checkpoint(simulation.trust_bundle, path)

    def test_clean_primary_counts_no_fallback(self, simulation, tmp_path):
        analyzer = _run(simulation, _months(simulation)[:1])
        path = analyzer.write_checkpoint(tmp_path / "ckpt.json")
        restored = StreamingAnalyzer.from_checkpoint(
            simulation.trust_bundle, path
        )
        assert "streaming.checkpoint_fallbacks" not in restored.metrics.counters


class TestKeepRecords:
    """`keep_records=True` retains the joinable x509 record per live
    fuid, with the same lifecycle as the fingerprint map — and the
    retained records survive a checkpoint round trip."""

    def test_lookup_follows_fuid_map(self, simulation):
        analyzer = StreamingAnalyzer(
            simulation.trust_bundle, keep_records=True
        )
        record = simulation.logs.x509[0]
        analyzer.add_x509([record])
        assert analyzer.x509_for_fuid(record.fuid) == record
        assert analyzer.x509_for_fuid("nope") is None
        assert analyzer.x509_for_fuid(None) is None

    def test_eviction_drops_record(self, simulation):
        x509 = [
            dataclasses.replace(r, fuid=f"F{i}")
            for i, r in enumerate(simulation.logs.x509[:3])
        ]
        analyzer = StreamingAnalyzer(
            simulation.trust_bundle, max_fuid_map=2, keep_records=True
        )
        analyzer.add_x509(x509)
        assert analyzer.x509_for_fuid("F0") is None  # evicted
        assert analyzer.x509_for_fuid("F2") is not None

    def test_snapshot_round_trip_keeps_records(self, simulation):
        analyzer = StreamingAnalyzer(
            simulation.trust_bundle, keep_records=True
        )
        analyzer.add_x509(simulation.logs.x509[:5])
        snapshot = json.loads(json.dumps(analyzer.to_snapshot()))
        restored = StreamingAnalyzer.from_snapshot(
            simulation.trust_bundle, snapshot
        )
        assert restored.keep_records
        for record in simulation.logs.x509[:5]:
            assert restored.x509_for_fuid(record.fuid) == record

    def test_default_mode_snapshot_has_no_records(self, simulation):
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        analyzer.add_x509(simulation.logs.x509[:5])
        assert "x509_records" not in analyzer.to_snapshot()
