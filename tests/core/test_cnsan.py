"""Tests for the CN/SAN information-type classifier (§6)."""

import pytest

from repro.core.cnsan import CnSanClassifier


@pytest.fixture(scope="module")
def classifier():
    return CnSanClassifier()


CAMPUS_ORG = "State University"


class TestClassifier:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("example.com", "Domain"),
            ("www.sub.example.co.uk", "Domain"),
            ("*.wildcard.example.org", "Domain"),
            ("192.0.2.15", "IP"),
            ("2001:db8::1", "IP"),
            ("12:34:56:AB:CD:EF", "MAC"),
            ("12-34-56-AB-CD-EF", "MAC"),
            ("sip:+14345551234@voip.university.edu", "SIP"),
            ("user@example.com", "Email"),
            ("localhost", "Localhost"),
            ("localhost.localdomain", "Localhost"),
            ("John Smith", "PersonalName"),
            ("Smith, John", "PersonalName"),
            ("WebRTC", "OrgProduct"),
            ("hangouts", "OrgProduct"),
            ("twilio", "OrgProduct"),
            ("Hybrid Runbook Worker", "OrgProduct"),
            ("Internet Widgits Pty Ltd", "OrgProduct"),
            ("d41d8cd98f00b204e9800998ecf8427e", "Unidentified"),
            ("123e4567-e89b-12d3-a456-426614174000", "Unidentified"),
            ("__transfer__", "Unidentified"),
            ("Dtls", "Unidentified"),
            ("", "Unidentified"),
        ],
    )
    def test_types(self, classifier, value, expected):
        assert classifier.classify(value) == expected

    def test_user_account_requires_campus_issuer(self, classifier):
        assert classifier.classify("hd7gr", issuer_org=CAMPUS_ORG) == "UserAccount"
        assert classifier.classify(
            "hd7gr", issuer_cn="State University Device CA"
        ) == "UserAccount"
        # Same pattern, non-campus issuer: falls through to Unidentified.
        assert classifier.classify("hd7gr", issuer_org="Acme Inc") != "UserAccount"
        assert classifier.classify("hd7gr") != "UserAccount"

    def test_priority_sip_over_email(self, classifier):
        # SIP URIs contain '@' but must classify as SIP.
        assert classifier.classify("sip:me@host.example.com") == "SIP"

    def test_priority_localhost_over_domain(self, classifier):
        assert classifier.classify("localhost.localdomain") == "Localhost"

    def test_custom_campus_markers(self):
        classifier = CnSanClassifier(campus_issuer_markers=("acme college",))
        assert classifier.classify("ab1cd", issuer_org="Acme College") == "UserAccount"


class TestTables:
    def test_utilization_groups(self, small_result):
        from repro.core.cnsan import utilization_table

        rows = utilization_table(small_result.enriched)
        groups = {r.group for r in rows}
        assert "Server certs." in groups and "Client certs." in groups
        for row in rows:
            assert 0 <= row.non_empty_cn <= row.total
            assert 0 <= row.non_empty_san <= row.total

    def test_cn_dominates_san(self, small_result):
        """Table 7's headline: CN is used far more than SAN."""
        from repro.core.cnsan import utilization_table

        rows = utilization_table(small_result.enriched)
        client = next(r for r in rows if r.group == "Client certs.")
        assert client.non_empty_cn > client.non_empty_san

    def test_information_types_matrix(self, small_result):
        from repro.core.cnsan import information_types

        matrix = information_types(small_result.enriched)
        total_cells = sum(sum(c.values()) for c in matrix.counts.values())
        assert total_cells > 0
        # Every counted type is a known type.
        from repro.core.cnsan import INFO_TYPES

        for counter in matrix.counts.values():
            assert set(counter) <= set(INFO_TYPES)

    def test_client_private_has_sensitive_types(self, medium_result):
        """§6.3.4: client certs from private CAs include user accounts
        and personal names."""
        from repro.core.cnsan import information_types

        matrix = information_types(medium_result.enriched)
        assert matrix.cell("Client/Private", "CN", "UserAccount") > 0
        assert matrix.cell("Client/Private", "CN", "PersonalName") > 0
        assert matrix.cell("Client/Private", "CN", "OrgProduct") > 0

    def test_server_public_dominated_by_domains(self, medium_result):
        from repro.core.cnsan import information_types

        matrix = information_types(medium_result.enriched)
        domains = matrix.cell("Server/Public", "CN", "Domain")
        total = matrix.total("Server/Public", "CN")
        assert total > 0
        # Paper: 99.94% domains; at simulation scale the FNMT cohort (the
        # paper's only non-domain server-public CNs) weighs more.
        assert domains / total > 0.6
        others = {
            t: matrix.cell("Server/Public", "CN", t)
            for t in ("PersonalName", "UserAccount", "Email", "MAC", "SIP")
        }
        assert not any(others.values()), others

    def test_unidentified_breakdown(self, medium_result):
        from repro.core.cnsan import unidentified_breakdown

        rows = unidentified_breakdown(medium_result.enriched)
        assert rows
        for row in rows:
            parts = (
                row.non_random + row.random_by_issuer + row.random_len8
                + row.random_len32 + row.random_len36 + row.random_other
            )
            assert parts == row.total

    def test_shared_population_disjoint_from_mutual(self, small_result):
        from repro.core.cnsan import mutual_population, shared_population

        mutual = {p.fingerprint for p in mutual_population(small_result.enriched)}
        shared = {p.fingerprint for p in shared_population(small_result.enriched)}
        assert not mutual & shared

    def test_non_mutual_population_excludes_mutual(self, small_result):
        from repro.core.cnsan import non_mutual_server_population

        for profile in non_mutual_server_population(small_result.enriched):
            assert not profile.used_in_mutual
            assert profile.used_as_server
