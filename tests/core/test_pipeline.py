"""Intra-shard pipelining determinism: pipelined == serial, always.

The pipelining contract (`repro.core.pipeline` + `_ShardStream` in
`repro.core.parallel`): streaming decoded ssl batches into
scan/enrich/analyze while the file is still being read changes *when*
work happens, never *what* comes out. Pinned here:

* every registry table, ingest report, and data-derived counter is
  byte-identical between ``pipeline="on"`` and ``pipeline="off"``, at
  any job count;
* the ``pipeline.*`` counters themselves are deterministic across job
  counts (they are emitted only in the read-every-month scan phase);
* an out-of-ts-order archive trips the order guard, falls back to the
  sorted serial rebuild, and still produces identical tables;
* error parity: a strict-mode ingest failure surfaces with exactly the
  serial path's error context, including ssl-error-wins precedence when
  both logs of a month are corrupt;
* a batch-mode `TailDecoder` checkpoint taken mid-batch resumes with no
  duplicated and no lost rows;
* a tiny `CertFactCache` forced to evict mid-batch still labels every
  connection identically to the uncached reference;
* the structural invariant the per-batch update/update_raw interleaving
  relies on: no registered analysis consumes both streams.
"""

import gzip
import io

import pytest

from repro.core import protocol
from repro.core.dataset import MtlsDataset
from repro.core.enrich import AssociationRules, Enricher, new_fact_cache
from repro.core.parallel import _ExecutorConfig, _ShardStream, analyze_directory
from repro.core.pipeline import BatchFeed, Pipeline
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    ErrorPolicy,
    IngestOptions,
    TailDecoder,
    TsvFormatError,
    read_ssl_log,
    ssl_log_to_string,
)
from repro.zeek.files import TsvDirectorySource, write_rotated_logs

pytestmark = pytest.mark.usefixtures("supervision_watchdog")


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(seed=17, months=3, connections_per_month=140)
    ).generate()


@pytest.fixture(scope="module")
def archive(simulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline-archive")
    write_rotated_logs(simulation.logs, directory)
    return directory


def _run(simulation, directory, *, jobs=1, pipeline="auto", on_error="strict"):
    return analyze_directory(
        directory,
        bundle=simulation.trust_bundle,
        ct_log=simulation.ct_log,
        options=IngestOptions(on_error=on_error),
        jobs=jobs,
        pipeline=pipeline,
    )


def _tables(campaign):
    return {name: str(p.finalize()) for name, p in campaign.partials.items()}


def _data_counters(campaign):
    return {
        name: value
        for name, value in campaign.metrics.counters.items()
        if not name.startswith("pipeline.")
    }


def _pipeline_counters(campaign):
    return {
        name: value
        for name, value in campaign.metrics.counters.items()
        if name.startswith("pipeline.")
    }


@pytest.fixture(scope="module")
def campaigns(simulation, archive):
    """The four (pipeline, jobs) corners, run once for the module."""
    return {
        ("on", 1): _run(simulation, archive, pipeline="on", jobs=1),
        ("off", 1): _run(simulation, archive, pipeline="off", jobs=1),
        ("on", 4): _run(simulation, archive, pipeline="on", jobs=4),
        ("off", 4): _run(simulation, archive, pipeline="off", jobs=4),
    }


class TestByteIdentical:
    def test_all_tables_identical(self, campaigns):
        baseline = _tables(campaigns[("off", 1)])
        assert len(baseline) >= 24
        for key in (("on", 1), ("on", 4), ("off", 4)):
            tables = _tables(campaigns[key])
            assert tables.keys() == baseline.keys()
            for name in baseline:
                assert tables[name] == baseline[name], (key, name)

    def test_ingest_and_dangling_accounting_identical(self, campaigns):
        baseline = campaigns[("off", 1)]
        for key in (("on", 1), ("on", 4), ("off", 4)):
            campaign = campaigns[key]
            assert campaign.ingest.to_dict() == baseline.ingest.to_dict(), key
            assert campaign.dangling_fuid_refs == baseline.dangling_fuid_refs
            assert campaign.months == baseline.months

    def test_pipelining_actually_engaged(self, campaigns):
        counters = _pipeline_counters(campaigns[("on", 1)])
        assert counters.get("pipeline.shards") == len(
            campaigns[("on", 1)].months
        )
        assert counters.get("pipeline.batches", 0) >= counters["pipeline.shards"]
        assert counters.get("pipeline.fallbacks", 0) == 0
        # The serial leg must not have pipelined anything.
        assert _pipeline_counters(campaigns[("off", 1)]) == {}


class TestDeterministicMetrics:
    def test_data_counters_equal_across_all_corners(self, campaigns):
        baseline = _data_counters(campaigns[("off", 1)])
        assert baseline
        for key in (("on", 1), ("on", 4), ("off", 4)):
            assert _data_counters(campaigns[key]) == baseline, key

    def test_histograms_equal_across_all_corners(self, campaigns):
        def state(campaign):
            return {
                name: h.state_dict()
                for name, h in campaign.metrics.histograms.items()
            }

        baseline = state(campaigns[("off", 1)])
        for key in (("on", 1), ("on", 4), ("off", 4)):
            assert state(campaigns[key]) == baseline, key

    def test_pipeline_counters_deterministic_across_jobs(self, campaigns):
        """pipeline.* is emitted only in the scan phase, which reads
        every month exactly once at any job count — so even the
        execution-strategy counters are reproducible."""
        assert _pipeline_counters(campaigns[("on", 1)]) == _pipeline_counters(
            campaigns[("on", 4)]
        )


class TestUnsortedArchiveFallback:
    @pytest.fixture()
    def shuffled_archive(self, simulation, tmp_path_factory):
        """A rotated archive with one ssl month's data rows reversed —
        ts order violated inside a single shard."""
        directory = tmp_path_factory.mktemp("shuffled-archive")
        write_rotated_logs(simulation.logs, directory)
        victim = sorted(directory.glob("ssl.*.log.gz"))[0]
        text = gzip.decompress(victim.read_bytes()).decode("utf-8")
        lines = text.splitlines(keepends=True)
        head = [l for l in lines if l.startswith("#") and not l.startswith("#close")]
        tail = [l for l in lines if l.startswith("#close")]
        rows = [l for l in lines if not l.startswith("#")]
        assert len(rows) > 1
        shuffled = "".join(head + rows[::-1] + tail)
        victim.write_bytes(gzip.compress(shuffled.encode("utf-8")))
        return directory

    def test_fallback_is_taken_and_identical(self, simulation, shuffled_archive):
        pipelined = _run(simulation, shuffled_archive, pipeline="on")
        serial = _run(simulation, shuffled_archive, pipeline="off")
        assert _pipeline_counters(pipelined).get("pipeline.fallbacks", 0) >= 1
        assert _tables(pipelined) == _tables(serial)
        assert pipelined.ingest.to_dict() == serial.ingest.to_dict()
        assert _data_counters(pipelined) == _data_counters(serial)


def _config_for(simulation, directory, on_error="strict"):
    return _ExecutorConfig(
        bundle=simulation.trust_bundle,
        ct_log=simulation.ct_log,
        rules=AssociationRules(),
        filter_interception=True,
        min_interception_domains=5,
        on_error=ErrorPolicy.coerce(on_error),
        names=None,
        source=TsvDirectorySource(directory),
    )


def _corrupt(directory, pattern):
    victim = sorted(directory.glob(pattern))[0]
    text = gzip.decompress(victim.read_bytes()).decode("utf-8")
    lines = text.splitlines(keepends=True)
    for i, line in enumerate(lines):
        if not line.startswith("#"):
            lines[i] = "garbage\trow\n"
            break
    victim.write_bytes(gzip.compress("".join(lines).encode("utf-8")))


def _error_tuple(error):
    return (str(error), error.reason, error.path, error.line_number, error.field)


class TestErrorParity:
    """Strict-mode failures must carry the serial path's exact context."""

    @pytest.fixture()
    def corrupt_archive(self, simulation, tmp_path_factory):
        directory = tmp_path_factory.mktemp("corrupt-both")
        write_rotated_logs(simulation.logs, directory)
        return directory

    def _serial_error(self, config, month):
        with pytest.raises(TsvFormatError) as excinfo:
            config.source.read_month(month, config.ingest_options())
        return excinfo.value

    def test_ssl_error_wins_when_both_logs_corrupt(
        self, simulation, corrupt_archive
    ):
        _corrupt(corrupt_archive, "ssl.*.log.gz")
        _corrupt(corrupt_archive, "x509.*.log.gz")
        config = _config_for(simulation, corrupt_archive)
        month = config.source.months()[0]
        serial = self._serial_error(config, month)
        assert "ssl" in serial.path
        with pytest.raises(TsvFormatError) as excinfo:
            stream = _ShardStream(config, month)
            for _ in stream.connections():
                pass
        assert _error_tuple(excinfo.value) == _error_tuple(serial)

    def test_x509_only_corruption_matches_serial(
        self, simulation, corrupt_archive
    ):
        _corrupt(corrupt_archive, "x509.*.log.gz")
        config = _config_for(simulation, corrupt_archive)
        month = config.source.months()[0]
        serial = self._serial_error(config, month)
        assert "x509" in serial.path
        with pytest.raises(TsvFormatError) as excinfo:
            stream = _ShardStream(config, month)
            for _ in stream.connections():
                pass
        assert _error_tuple(excinfo.value) == _error_tuple(serial)

    def test_ssl_only_corruption_matches_serial(
        self, simulation, corrupt_archive
    ):
        _corrupt(corrupt_archive, "ssl.*.log.gz")
        config = _config_for(simulation, corrupt_archive)
        month = config.source.months()[0]
        serial = self._serial_error(config, month)
        assert "ssl" in serial.path
        stream = _ShardStream(config, month)  # x509 is clean: init succeeds
        with pytest.raises(TsvFormatError) as excinfo:
            for _ in stream.connections():
                pass
        assert _error_tuple(excinfo.value) == _error_tuple(serial)


class TestCheckpointResumeMidBatch:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_no_duplicate_or_lost_rows(self, simulation, fraction):
        text = ssl_log_to_string(simulation.logs.ssl)
        reference = read_ssl_log(
            io.StringIO(text), IngestOptions(fast_path="batch", path="ssl.log")
        )

        cut = int(len(text) * fraction)
        first = TailDecoder("ssl", path="ssl.log", fast_path="batch")
        records = first.feed(text[:cut])
        state = first.state_dict()
        assert state["pending"]  # the checkpoint lands mid-record

        second = TailDecoder(
            "ssl", path="ssl.log", fast_path="batch", count_file=False
        )
        second.load_state(state)
        records += second.feed(text[cut:])
        records += second.finish()

        assert [repr(r) for r in records] == [repr(r) for r in reference]
        uids = [r.uid for r in records]
        assert len(uids) == len(set(uids))  # no duplicated rows


class TestFactCacheEvictionMidBatch:
    def test_tiny_cache_labels_identically(self, simulation):
        logs = simulation.logs
        dataset = MtlsDataset(logs.ssl, logs.x509)
        cache = new_fact_cache(simulation.trust_bundle, max_entries=2)
        small = Enricher(simulation.trust_bundle, fact_cache=cache)
        reference = Enricher(simulation.trust_bundle, fact_cache=False)

        for conn in dataset.connections:
            labelled = small.label(conn)
            expected = reference.label(conn)
            assert len(cache) <= 2
            assert labelled.direction == expected.direction
            assert labelled.server_public == expected.server_public
            assert labelled.client_public == expected.client_public
            assert labelled.association == expected.association
        # The bound genuinely bit: the corpus holds more than two
        # certificates, so labelling must have evicted along the way.
        assert cache.stats.evictions > 0


class TestPipelineCoerce:
    def test_values(self):
        assert Pipeline.coerce(None) is Pipeline.AUTO
        assert Pipeline.coerce(True) is Pipeline.ON
        assert Pipeline.coerce(False) is Pipeline.OFF
        assert Pipeline.coerce("on") is Pipeline.ON
        assert Pipeline.coerce("off") is Pipeline.OFF
        assert Pipeline.coerce("auto") is Pipeline.AUTO
        assert Pipeline.coerce(Pipeline.ON) is Pipeline.ON

    def test_enabled(self):
        assert Pipeline.ON.enabled
        assert Pipeline.AUTO.enabled
        assert not Pipeline.OFF.enabled

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="auto"):
            Pipeline.coerce("sideways")


class TestBatchFeed:
    def test_preserves_order_and_content(self):
        batches = [[i, i + 1] for i in range(0, 100, 2)]
        feed = BatchFeed(iter(batches))
        assert list(feed) == batches

    def test_error_raised_in_consumer_after_good_batches(self):
        def generator():
            yield [1]
            yield [2]
            raise ValueError("mid-stream failure")

        feed = BatchFeed(generator())
        seen = []
        with pytest.raises(ValueError, match="mid-stream failure"):
            for batch in feed:
                seen.append(batch)
        assert seen == [[1], [2]]

    def test_drain_error_returns_error_without_raising(self):
        def generator():
            yield [1]
            raise ValueError("boom")

        error = BatchFeed(generator()).drain_error()
        assert isinstance(error, ValueError)
        assert BatchFeed(iter([[1], [2]])).drain_error() is None

    def test_close_stops_feeder_thread(self):
        produced = []

        def endless():
            i = 0
            while True:
                produced.append(i)
                yield [i]
                i += 1

        feed = BatchFeed(endless())
        iterator = iter(feed)
        for _ in range(3):
            next(iterator)
        feed.close()
        assert not feed._thread.is_alive()
        # Backpressure bounded the feeder: it can only ever run a few
        # batches ahead of the consumer, never the whole stream.
        assert len(produced) < 64


class TestInterleavingInvariant:
    """`_pipelined_analysis` interleaves update() and update_raw() per
    batch instead of per stream; that is only sound while no analysis
    consumes both streams. Pin it structurally."""

    def test_no_analysis_defines_update_and_update_raw(self):
        base = protocol.AnalysisPartial
        classes = 0
        for analysis in protocol.iter_analyses():
            factory = analysis.factory
            if not (isinstance(factory, type) and issubclass(factory, base)):
                continue
            classes += 1
            has_update = factory.update is not base.update
            has_raw = factory.update_raw is not base.update_raw
            assert not (has_update and has_raw), analysis.name
            if has_raw:
                assert analysis.needs_raw, analysis.name
        assert classes >= 20  # the registry is actually class-backed
