"""Tests for JSON export, issuer diversity, and the direction split."""

import json

from repro.core.export import study_to_dict, study_to_json, table_to_dict
from repro.core.issuers import issuer_diversity, render_issuer_diversity
from repro.core.prevalence import direction_split_series
from repro.core.report import Table


class TestExport:
    def test_table_to_dict(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_note("hello")
        payload = table_to_dict(table)
        assert payload == {
            "title": "Demo", "headers": ["a", "b"],
            "rows": [["1", "x"]], "notes": ["hello"],
        }

    def test_study_to_dict_structure(self, small_study):
        payload = study_to_dict(small_study)
        assert payload["config"]["months"] == 4
        assert payload["summary"]["connections"] > 0
        assert payload["summary"]["unique_certificates"] > 0
        assert len(payload["tables"]) == 24
        for title, table in payload["tables"].items():
            assert table["title"] == title
            assert table["headers"]

    def test_study_to_json_parses(self, small_study):
        document = study_to_json(small_study)
        decoded = json.loads(document)
        assert decoded["summary"]["connections"] > 0

    def test_json_deterministic(self, small_study):
        assert study_to_json(small_study) == study_to_json(small_study)


class TestIssuerDiversity:
    def test_overall(self, medium_result):
        diversity = issuer_diversity(medium_result.enriched)
        assert diversity.population_size > 0
        assert 0 < diversity.distinct_issuers <= diversity.population_size
        assert diversity.certificates_per_issuer >= 1.0
        assert diversity.top_organizations

    def test_by_role(self, medium_result):
        servers = issuer_diversity(medium_result.enriched, role="server")
        clients = issuer_diversity(medium_result.enriched, role="client")
        overall = issuer_diversity(medium_result.enriched)
        assert servers.population_size + clients.population_size == overall.population_size

    def test_mutual_only_flag(self, medium_result):
        mutual = issuer_diversity(medium_result.enriched, mutual_only=True)
        everything = issuer_diversity(medium_result.enriched, mutual_only=False)
        assert everything.population_size >= mutual.population_size

    def test_category_counts_partition(self, medium_result):
        diversity = issuer_diversity(medium_result.enriched)
        assert sum(diversity.category_counts.values()) == diversity.population_size

    def test_render(self, medium_result):
        text = render_issuer_diversity(
            issuer_diversity(medium_result.enriched), "mutual TLS"
        ).render()
        assert "distinct issuer DNs" in text

    def test_empty_population(self, medium_result):
        diversity = issuer_diversity(
            medium_result.enriched, role="no-such-role"
        )
        assert diversity.population_size == 0
        assert diversity.certificates_per_issuer == 0.0


class TestDirectionSplit:
    def test_series_covers_campaign(self, medium_result):
        series = direction_split_series(medium_result.enriched)
        assert len(series) == 23
        assert series[0].label == "2022-05"

    def test_surge_is_inbound_driven(self, medium_result):
        """Figure 1's narrative: the Oct-Nov 2023 surge comes from inbound
        (health) traffic, not outbound."""
        series = {p.label: p for p in direction_split_series(medium_result.enriched)}
        baseline = series["2023-08"].inbound_mutual
        surged = series["2023-11"].inbound_mutual
        assert surged > baseline

    def test_totals_match_monthly_mutual(self, medium_result):
        from repro.core.prevalence import monthly_mutual_share

        split = direction_split_series(medium_result.enriched)
        monthly = monthly_mutual_share(medium_result.enriched)
        for point, month in zip(split, monthly):
            assert point.inbound_mutual + point.outbound_mutual == month.mutual_connections


class TestRegistryExport:
    def test_export_tables_dict_over_registry(self, small_study):
        from repro.core import protocol
        from repro.core.export import export_tables_dict

        payload = export_tables_dict(small_study)
        assert payload["order"] == list(protocol.analysis_names())
        for name in protocol.PAPER_TABLE_ORDER:
            entry = payload["analyses"][name]
            assert entry["analysis"] == name
            assert entry["title"]
            assert isinstance(entry["rows"], list)

    def test_export_tables_json_subset(self, small_study):
        from repro.core.export import export_tables_json

        payload = json.loads(
            export_tables_json(small_study, names=("tls13", "table1"))
        )
        assert payload["order"] == ["tls13", "table1"]
        assert payload["analyses"]["tls13"]["legacy"] == (
            "repro.core.tuples.tls13_blindspot"
        )
