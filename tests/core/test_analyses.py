"""Tests for the per-table analysis modules on simulated runs."""

import pytest

from repro.core import cnsan, dummy, issuers, prevalence, services, sharing, validity


class TestPrevalence:
    def test_monthly_share_ramp(self, medium_result):
        series = prevalence.monthly_mutual_share(medium_result.enriched)
        assert len(series) == 23
        assert series[0].label == "2022-05"
        assert series[-1].label == "2024-03"
        # Figure 1 shape: start ~2%, end ~3.6%, rising overall.
        assert 0.01 < series[0].share < 0.03
        assert 0.028 < series[-1].share < 0.047
        assert series[-1].share > series[0].share

    def test_health_surge_and_rapid7_drop(self, medium_result):
        series = prevalence.monthly_mutual_share(medium_result.enriched)
        by_label = {p.label: p.share for p in series}
        # Oct-Nov 2023 surge is a local peak; Dec 2023 dips below it.
        assert by_label["2023-11"] > by_label["2023-09"]
        assert by_label["2023-12"] < by_label["2023-11"]

    def test_certificate_statistics_shape(self, medium_result):
        rows = {r.label: r for r in prevalence.certificate_statistics(medium_result.enriched)}
        # Table 1 orderings from the paper.
        assert rows["Client"].mutual_share > 0.85          # paper: 94.34%
        assert 0.2 < rows["Server"].mutual_share < 0.6     # paper: 38.45%
        assert rows["Server/Private"].mutual_share > 0.6   # paper: 82.78%
        assert rows["Server/Public"].mutual_share < 0.15   # paper: 0.22%
        assert rows["Total"].total == rows["Server"].total + rows["Client"].total

    def test_renderers(self, small_result):
        series = prevalence.monthly_mutual_share(small_result.enriched)
        assert "Figure 1" in prevalence.render_monthly_share(series).render()
        rows = prevalence.certificate_statistics(small_result.enriched)
        assert "Table 1" in prevalence.render_certificate_statistics(rows).render()


class TestServices:
    def test_quadrants_nonempty(self, medium_result):
        breakdown = services.service_breakdown(medium_result.enriched)
        assert breakdown.inbound_mutual and breakdown.outbound_mutual
        assert breakdown.inbound_nonmutual and breakdown.outbound_nonmutual

    def test_https_dominates_everywhere(self, medium_result):
        breakdown = services.service_breakdown(medium_result.enriched)
        for quadrant in (
            breakdown.inbound_mutual, breakdown.outbound_mutual,
            breakdown.inbound_nonmutual, breakdown.outbound_nonmutual,
        ):
            assert quadrant[0].port_group == "443"

    def test_filewave_prominent_inbound_mutual(self, medium_result):
        """Table 2: FileWave (20017) is the #2 inbound mutual service."""
        breakdown = services.service_breakdown(medium_result.enriched)
        ports = [row.port_group for row in breakdown.inbound_mutual]
        assert "20017" in ports
        filewave = next(r for r in breakdown.inbound_mutual if r.port_group == "20017")
        assert filewave.share > 0.08  # paper: 24.89%

    def test_globus_range_collapsed(self, medium_result):
        breakdown = services.service_breakdown(medium_result.enriched)
        all_rows = services.service_breakdown(medium_result.enriched, top=10)
        groups = [r.port_group for r in all_rows.inbound_mutual]
        assert "50000-51000" in groups

    def test_outbound_nonmutual_https_share(self, medium_result):
        breakdown = services.service_breakdown(medium_result.enriched)
        https = breakdown.outbound_nonmutual[0]
        assert https.share > 0.95  # paper: 99.15%

    def test_render(self, small_result):
        breakdown = services.service_breakdown(small_result.enriched)
        assert "Table 2" in services.render_service_breakdown(breakdown).render()


class TestIssuerCategories:
    def test_inbound_association_rows(self, medium_result):
        rows = issuers.inbound_association_table(medium_result.enriched)
        by_name = {r.association: r for r in rows}
        # University Health dominates inbound mutual connections.
        assert rows[0].association == "University Health"
        assert by_name["University Health"].connection_share > 0.4
        assert by_name["University Health"].primary_issuer == "Private - Education"
        assert by_name["University Server"].primary_issuer == "Private - MissingIssuer"
        assert by_name["Local Organization"].primary_issuer == "Public"

    def test_association_shares_sum_to_one(self, medium_result):
        rows = issuers.inbound_association_table(medium_result.enriched)
        assert sum(r.connection_share for r in rows) == pytest.approx(1.0)

    def test_outbound_flows(self, medium_result):
        flows = issuers.outbound_flows(medium_result.enriched)
        assert flows.total_connections > 0
        # The 37.84% headline: missing issuer is the single largest
        # client-issuer category, at a comparable magnitude.
        assert flows.client_categories.most_common(1)[0][0] == "Private - MissingIssuer"
        assert 0.18 < flows.missing_issuer_share < 0.55
        # amazonaws / rapid7 are among the busiest SLDs.
        top_slds = [sld for sld, _ in flows.sld_connections.most_common(4)]
        assert "amazonaws.com" in top_slds
        assert "rapid7.com" in top_slds

    def test_public_server_missing_client_share(self, medium_result):
        # Paper: 45.71%. The direction of the finding (a sizable chunk of
        # public-server connections pairs with issuer-less client certs)
        # is what must survive the scale-down.
        flows = issuers.outbound_flows(medium_result.enriched)
        assert flows.public_server_missing_client_share > 0.04

    def test_renders(self, small_result):
        rows = issuers.inbound_association_table(small_result.enriched)
        assert "Table 3" in issuers.render_inbound_association_table(rows).render()
        flows = issuers.outbound_flows(small_result.enriched)
        assert "Figure 2" in issuers.render_outbound_flows(flows).render()


class TestDummy:
    def test_dummy_issuer_rows(self, medium_result):
        rows = dummy.dummy_issuer_table(medium_result.enriched)
        orgs = {r.issuer_org for r in rows}
        assert "Internet Widgits Pty Ltd" in orgs
        assert "Unspecified" in orgs or "Default Company Ltd" in orgs

    def test_dummy_both_endpoints(self, medium_result):
        rows = dummy.dummy_both_endpoints(medium_result.enriched)
        assert rows
        fireboard = [r for r in rows if r.sld == "fireboard.io"]
        assert fireboard
        # Table 10: the fireboard.io cohort is OpenSSL-default on both ends.
        assert any(
            r.client_issuer_org == "Internet Widgits Pty Ltd"
            and r.server_issuer_org == "Internet Widgits Pty Ltd"
            for r in fireboard
        )

    def test_serial_collisions_globus(self, medium_result):
        report = dummy.serial_collisions(medium_result.enriched, "inbound")
        assert report.groups
        globus = [g for g in report.groups if g.issuer_org == "Globus Online"]
        assert globus
        assert globus[0].serial == "00"
        assert len(globus[0].fingerprints) > 1

    def test_serial_collisions_guardicore(self, medium_result):
        report = dummy.serial_collisions(medium_result.enriched, "outbound")
        orgs = {g.issuer_org for g in report.groups}
        assert "GuardiCore" in orgs
        serials = {g.serial for g in report.groups if g.issuer_org == "GuardiCore"}
        assert serials == {"01", "03E8"}

    def test_renders(self, small_result):
        rows = dummy.dummy_issuer_table(small_result.enriched)
        assert "Table 4" in dummy.render_dummy_issuer_table(rows).render()
        report = dummy.serial_collisions(small_result.enriched, "inbound")
        assert "§5.1.2" in dummy.render_serial_collisions(report).render()


class TestSharing:
    def test_same_connection_rows(self, medium_result):
        rows = sharing.same_connection_sharing(medium_result.enriched)
        assert rows
        orgs = {r.issuer_org for r in rows}
        assert "Globus Online" in orgs
        # Public-CA rows exist too (the gray area of Table 5).
        assert any(r.issuer_public for r in rows)

    def test_globus_high_churn(self, medium_result):
        rows = sharing.same_connection_sharing(medium_result.enriched)
        globus = [r for r in rows if r.issuer_org == "Globus Online"]
        assert globus
        assert max(len(r.fingerprints) for r in globus) > 3  # 14-day reissue churn

    def test_cross_connection_subnets(self, medium_result):
        spread = sharing.cross_connection_subnets(medium_result.enriched)
        assert spread.shared_certificates > 0
        # Table 6 orderings: client spread exceeds server spread at the
        # tail; quantiles are monotone.
        for quantiles in (spread.server_quantiles, spread.client_quantiles):
            assert quantiles[50] <= quantiles[75] <= quantiles[99] <= quantiles[100]
        assert spread.client_quantiles[99] >= spread.server_quantiles[99]

    def test_renders(self, small_result):
        rows = sharing.same_connection_sharing(small_result.enriched)
        assert "Table 5" in sharing.render_same_connection_sharing(rows).render()
        spread = sharing.cross_connection_subnets(small_result.enriched)
        assert "Table 6" in sharing.render_cross_connection_subnets(spread).render()


class TestValidity:
    def test_incorrect_dates_found(self, medium_result):
        rows = validity.incorrect_dates(medium_result.enriched)
        orgs = {r.issuer_org for r in rows}
        assert "IDrive Inc Certificate Authority" in orgs
        assert "rcgen" in orgs or "SDS" in orgs

    def test_incorrect_dates_both_endpoints(self, medium_result):
        rows = validity.incorrect_dates_both_endpoints(medium_result.enriched)
        assert rows
        slds = set()
        for row in rows:
            slds |= row.slds
        assert "idrive.com" in slds or "(missing SNI)" in slds

    def test_validity_periods_extreme_tail(self, medium_result):
        stats = validity.validity_periods(medium_result.enriched)
        assert stats.extreme_certificates > 0
        assert stats.extreme_private >= stats.extreme_public
        # The 83,432-day outlier (~228 years).
        assert stats.longest_days > 80_000
        assert "tmdxdev.com" in stats.longest_slds

    def test_expired_report(self, medium_result):
        report = validity.expired_certificates(medium_result.enriched)
        assert report.inbound and report.outbound
        shares = report.inbound_association_shares()
        # Figure 5a: VPN is the top association for inbound expired certs.
        top = max(shares.items(), key=lambda kv: kv[1])[0]
        assert top in ("University VPN", "Local Organization")

    def test_expired_outbound_apple_cluster(self, medium_result):
        report = validity.expired_certificates(medium_result.enriched)
        cluster = report.outbound_cluster(min_days=700)
        assert cluster
        apple = sum(1 for u in cluster if (u.issuer_org or "") == "Apple")
        assert apple / len(cluster) > 0.7  # paper: 337 of 339

    def test_renders(self, small_result):
        rows = validity.incorrect_dates(small_result.enriched)
        assert "Figure 3" in validity.render_incorrect_dates(rows).render()
        stats = validity.validity_periods(small_result.enriched)
        assert "Figure 4" in validity.render_validity_periods(stats).render()
        report = validity.expired_certificates(small_result.enriched)
        assert "Figure 5" in validity.render_expired_report(report).render()
