"""Tests for the command-line interface."""

import pytest

from repro.cli import load_trust_bundle, main


@pytest.fixture(scope="module")
def generated_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign")
    code = main([
        "generate", "--out", str(out), "--months", "4", "--cpm", "400",
        "--seed", "9",
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_artifacts_written(self, generated_dir):
        assert (generated_dir / "ssl.log").exists()
        assert (generated_dir / "x509.log").exists()
        assert (generated_dir / "trust_bundle.txt").exists()

    def test_logs_parse_back(self, generated_dir):
        from repro.zeek import read_ssl_log, read_x509_log

        with (generated_dir / "ssl.log").open() as f:
            ssl = read_ssl_log(f)
        with (generated_dir / "x509.log").open() as f:
            x509 = read_x509_log(f)
        assert len(ssl) > 500
        assert len(x509) > 50

    def test_trust_bundle_round_trip(self, generated_dir):
        bundle = load_trust_bundle(generated_dir / "trust_bundle.txt")
        assert bundle.subject_dns
        assert bundle.organizations
        assert bundle.knows_organization("digicert inc")


class TestStudy:
    def test_single_table(self, capsys):
        code = main([
            "study", "--months", "3", "--cpm", "250", "--seed", "5",
            "--table", "table1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Server" in out

    def test_tls13_table(self, capsys):
        code = main([
            "study", "--months", "2", "--cpm", "200", "--seed", "5",
            "--table", "tls13",
        ])
        assert code == 0
        assert "§3.3" in capsys.readouterr().out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "--table", "table99"])


class TestAudit:
    def test_audit_finds_sensitive_values(self, generated_dir, capsys):
        code = main([
            "audit", str(generated_dir / "x509.log"),
            "--campus-marker", "university",
        ])
        out = capsys.readouterr().out
        assert "sensitive values across" in out
        # The generated campaign plants personal names / user accounts.
        assert code == 2
        assert "[PersonalName]" in out or "[UserAccount]" in out


class TestIntercept:
    def test_intercept_runs_on_generated_logs(self, generated_dir, capsys):
        code = main([
            "intercept",
            str(generated_dir / "ssl.log"),
            str(generated_dir / "x509.log"),
            "--trust-bundle", str(generated_dir / "trust_bundle.txt"),
            "--min-domains", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "issuers flagged" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
