"""Tests for the command-line interface."""

import pytest

from repro.cli import load_trust_bundle, main


@pytest.fixture(scope="module")
def generated_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign")
    code = main([
        "generate", "--out", str(out), "--months", "4", "--cpm", "400",
        "--seed", "9",
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_artifacts_written(self, generated_dir):
        assert (generated_dir / "ssl.log").exists()
        assert (generated_dir / "x509.log").exists()
        assert (generated_dir / "trust_bundle.txt").exists()

    def test_logs_parse_back(self, generated_dir):
        from repro.zeek import read_ssl_log, read_x509_log

        with (generated_dir / "ssl.log").open() as f:
            ssl = read_ssl_log(f)
        with (generated_dir / "x509.log").open() as f:
            x509 = read_x509_log(f)
        assert len(ssl) > 500
        assert len(x509) > 50

    def test_trust_bundle_round_trip(self, generated_dir):
        bundle = load_trust_bundle(generated_dir / "trust_bundle.txt")
        assert bundle.subject_dns
        assert bundle.organizations
        assert bundle.knows_organization("digicert inc")


class TestStudy:
    def test_single_table(self, capsys):
        code = main([
            "study", "--months", "3", "--cpm", "250", "--seed", "5",
            "--table", "table1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Server" in out

    def test_tls13_table(self, capsys):
        code = main([
            "study", "--months", "2", "--cpm", "200", "--seed", "5",
            "--table", "tls13",
        ])
        assert code == 0
        assert "§3.3" in capsys.readouterr().out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "--table", "table99"])


class TestAudit:
    def test_audit_finds_sensitive_values(self, generated_dir, capsys):
        code = main([
            "audit", str(generated_dir / "x509.log"),
            "--campus-marker", "university",
        ])
        out = capsys.readouterr().out
        assert "sensitive values across" in out
        # The generated campaign plants personal names / user accounts.
        assert code == 2
        assert "[PersonalName]" in out or "[UserAccount]" in out


class TestIntercept:
    def test_intercept_runs_on_generated_logs(self, generated_dir, capsys):
        code = main([
            "intercept",
            str(generated_dir / "ssl.log"),
            str(generated_dir / "x509.log"),
            "--trust-bundle", str(generated_dir / "trust_bundle.txt"),
            "--min-domains", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "issuers flagged" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.fixture(scope="module")
def rotated_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("rotated-campaign")
    code = main([
        "generate", "--out", str(out), "--months", "3", "--cpm", "150",
        "--seed", "13", "--rotated",
    ])
    assert code == 0
    return out


class TestAnalyze:
    def test_rotated_generate_layout(self, rotated_dir):
        assert len(list(rotated_dir.glob("ssl.*.log.gz"))) == 3
        assert len(list(rotated_dir.glob("x509.*.log.gz"))) == 3
        assert (rotated_dir / "trust_bundle.txt").exists()

    def test_analyze_single_table(self, rotated_dir, capsys):
        code = main([
            "analyze", str(rotated_dir),
            "--trust-bundle", str(rotated_dir / "trust_bundle.txt"),
            "--table", "table1",
        ])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_analyze_jobs_match_inline(self, rotated_dir, capsys):
        argv = [
            "analyze", str(rotated_dir),
            "--trust-bundle", str(rotated_dir / "trust_bundle.txt"),
        ]
        assert main(argv) == 0
        inline = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == inline

    def test_analyze_json_export(self, rotated_dir, capsys):
        import json

        code = main([
            "analyze", str(rotated_dir),
            "--trust-bundle", str(rotated_dir / "trust_bundle.txt"),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "table5" in payload["analyses"]
        assert payload["analyses"]["table5"]["legacy"] == (
            "repro.core.sharing.same_connection_sharing"
        )

    def test_study_jobs_single_table(self, capsys):
        code = main([
            "study", "--months", "2", "--cpm", "120", "--seed", "5",
            "--jobs", "2", "--table", "figure1",
        ])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_study_jobs_rejects_fault_rate(self, capsys):
        code = main([
            "study", "--months", "2", "--cpm", "120", "--jobs", "2",
            "--fault-rate", "0.01", "--on-error", "skip",
        ])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err


class TestAnalyzeSupervision:
    """Chaos flags: injected worker crashes, degrade policy, resume."""

    @pytest.fixture(scope="class")
    def first_month(self, rotated_dir):
        return sorted(
            p.name.split(".")[1] for p in rotated_dir.glob("ssl.*.log.gz")
        )[0]

    def _argv(self, rotated_dir, *extra):
        return [
            "analyze", str(rotated_dir),
            "--trust-bundle", str(rotated_dir / "trust_bundle.txt"),
            *extra,
        ]

    def test_injected_crash_partial_exits_degraded(
        self, rotated_dir, first_month, capsys
    ):
        from repro.cli import EXIT_DEGRADED

        code = main(self._argv(
            rotated_dir, "--jobs", "2", "--degrade", "partial",
            "--max-attempts", "2", "--inject-crash", first_month,
        ))
        assert code == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "Run health" in captured.out
        assert first_month in captured.out
        assert "campaign degraded" in captured.err
        assert first_month in captured.err

    def test_injected_crash_strict_fails(self, rotated_dir, first_month, capsys):
        code = main(self._argv(
            rotated_dir, "--jobs", "2", "--max-attempts", "2",
            "--inject-crash", first_month,
        ))
        assert code == 1
        err = capsys.readouterr().err
        assert "exhausted its retry budget" in err
        assert first_month in err

    def test_run_health_table_view(self, rotated_dir, capsys):
        code = main(self._argv(rotated_dir, "--table", "run-health"))
        assert code == 0
        out = capsys.readouterr().out
        assert "Run health" in out
        assert "Coverage (%)" in out

    def test_resume_after_strict_abort(
        self, rotated_dir, first_month, tmp_path, capsys
    ):
        """Simulated parent kill + `--resume`: the rerun must finish
        and print exactly what an uninterrupted run prints."""
        run_dir = tmp_path / "run"
        code = main(self._argv(rotated_dir, "--jobs", "2"))
        assert code == 0
        uninterrupted = capsys.readouterr().out

        code = main(self._argv(
            rotated_dir, "--jobs", "2", "--max-attempts", "2",
            "--inject-crash", first_month, "--resume", str(run_dir),
        ))
        assert code == 1
        capsys.readouterr()
        assert (run_dir / "manifest.json").exists()

        code = main(self._argv(
            rotated_dir, "--jobs", "2", "--resume", str(run_dir),
        ))
        assert code == 0
        assert capsys.readouterr().out == uninterrupted
