"""Tests for the §6.1.2 SAN-type usage analysis."""

import pytest

from repro.core.cnsan import SanTypeUsage, render_san_type_usage, san_type_usage


class TestSanTypeUsage:
    def test_basic_shape(self, medium_result):
        usage = san_type_usage(medium_result.enriched)
        assert usage.population > 0
        # DNS is the only commonly-populated type; the explicit types
        # are rare (the paper's 99%-empty finding).
        assert usage.with_dns >= usage.with_ip
        assert usage.with_dns >= usage.with_email
        assert usage.with_ip / usage.population < 0.05
        assert usage.with_email / usage.population < 0.05

    def test_explicit_types_conform_when_used(self, medium_result):
        usage = san_type_usage(medium_result.enriched)
        # When IP/email SAN types are used, every entry matches its type
        # — the paper's §6.1.2 contrast with the free-text SAN DNS.
        assert usage.ip_entries_valid == usage.ip_entries
        assert usage.email_entries_valid == usage.email_entries

    def test_dns_type_carries_non_domains(self, medium_result):
        usage = san_type_usage(medium_result.enriched)
        # SAN DNS does NOT conform: free text appears there.
        if usage.dns_entries:
            assert usage.dns_entries_domainlike <= usage.dns_entries

    def test_counts_consistent(self, medium_result):
        usage = san_type_usage(medium_result.enriched)
        for attr in ("with_dns", "with_ip", "with_email", "with_uri"):
            assert getattr(usage, attr) <= usage.population

    def test_custom_population(self, medium_result):
        from repro.core.cnsan import non_mutual_server_population

        population = non_mutual_server_population(medium_result.enriched)
        usage = san_type_usage(medium_result.enriched, population)
        assert usage.population == len(population)

    def test_empty_population(self, medium_result):
        usage = san_type_usage(medium_result.enriched, [])
        assert usage == SanTypeUsage(population=0)

    def test_render(self, medium_result):
        text = render_san_type_usage(san_type_usage(medium_result.enriched)).render()
        assert "§6.1.2" in text and "Email" in text
