"""Edge-case tests for report rendering and small helpers."""

import pytest

from repro.core.report import Table, fmt_count, percentage


class TestTable:
    def test_wrong_arity_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
        with pytest.raises(ValueError):
            table.add_row(1, 2, 3)

    def test_empty_table_renders(self):
        table = Table("Empty", ["only"])
        text = table.render()
        assert "Empty" in text and "only" in text

    def test_column_alignment(self):
        table = Table("T", ["col"])
        table.add_row("short")
        table.add_row("a much longer cell")
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all data/header lines padded equally

    def test_notes_rendered(self):
        table = Table("T", ["a"])
        table.add_note("remember this")
        assert "note: remember this" in table.render()

    def test_str_equals_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()

    def test_non_string_cells_stringified(self):
        table = Table("T", ["a", "b"])
        table.add_row(3.14159, None)
        text = table.render()
        assert "3.14159" in text and "None" in text


class TestHelpers:
    def test_percentage(self):
        assert percentage(1, 4) == "25.00"
        assert percentage(1, 3, digits=1) == "33.3"
        assert percentage(5, 0) == "-"
        assert percentage(0, 10) == "0.00"

    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"
        assert fmt_count(0) == "0"


class TestEnricherCustomization:
    def test_custom_is_internal_predicate(self):
        import datetime as dt

        from repro.core.dataset import MtlsDataset
        from repro.core.enrich import Enricher
        from repro.trust import TrustBundle
        from repro.zeek import SslRecord

        record = SslRecord(
            ts=dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc),
            uid="C1", id_orig_h="1.1.1.1", id_orig_p=1000,
            id_resp_h="203.0.113.7", id_resp_p=443, version="TLSv12",
            cipher="x", server_name=None, established=True,
        )
        bundle = TrustBundle(frozenset(), frozenset())
        enricher = Enricher(
            bundle, is_internal=lambda ip: ip.startswith("203.0.113.")
        )
        enriched = enricher.enrich(MtlsDataset([record], []))
        assert enriched.connections[0].direction == "inbound"
