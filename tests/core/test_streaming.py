"""Tests for the incremental analyzer: must match the batch pipeline."""

import pytest

from repro.core import prevalence
from repro.core.dataset import MtlsDataset
from repro.core.enrich import Enricher
from repro.core.streaming import StreamingAnalyzer
from repro.netsim import ScenarioConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    simulation = TrafficGenerator(
        ScenarioConfig(months=4, connections_per_month=400, seed=61)
    ).generate()
    batch = Enricher(
        bundle=simulation.trust_bundle, filter_interception=False
    ).enrich(MtlsDataset.from_logs(simulation.logs))
    return simulation, batch


def _feed_monthly(simulation, analyzer):
    """Feed the stream partitioned by month, as rotated logs would be."""
    by_month_ssl: dict[str, list] = {}
    by_month_x509: dict[str, list] = {}
    for record in simulation.logs.ssl:
        by_month_ssl.setdefault(f"{record.ts:%Y-%m}", []).append(record)
    for record in simulation.logs.x509:
        by_month_x509.setdefault(f"{record.ts:%Y-%m}", []).append(record)
    for month in sorted(by_month_ssl):
        analyzer.add_month(by_month_ssl[month], by_month_x509.get(month, []))


class TestStreamingMatchesBatch:
    def test_monthly_series_identical(self, world):
        simulation, batch = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        _feed_monthly(simulation, analyzer)
        assert analyzer.monthly_mutual_share() == prevalence.monthly_mutual_share(batch)

    def test_certificate_statistics_identical(self, world):
        simulation, batch = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        _feed_monthly(simulation, analyzer)
        streaming = {
            r.label: (r.total, r.mutual)
            for r in analyzer.certificate_statistics()
        }
        batch_stats = {
            r.label: (r.total, r.mutual)
            for r in prevalence.certificate_statistics(batch)
        }
        assert streaming == batch_stats

    def test_unique_certificates_match(self, world):
        simulation, batch = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        _feed_monthly(simulation, analyzer)
        assert analyzer.unique_certificates == len(batch.profiles)

    def test_incremental_queries_consistent(self, world):
        """Querying mid-stream then continuing must not corrupt state."""
        simulation, batch = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        analyzer.add_x509(simulation.logs.x509)
        half = len(simulation.logs.ssl) // 2
        analyzer.add_ssl(simulation.logs.ssl[:half])
        midpoint = analyzer.connections_seen
        analyzer.monthly_mutual_share()
        analyzer.certificate_statistics()
        analyzer.add_ssl(simulation.logs.ssl[half:])
        assert analyzer.connections_seen > midpoint
        assert analyzer.monthly_mutual_share() == prevalence.monthly_mutual_share(batch)

    def test_unestablished_dropped(self, world):
        simulation, _ = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        import dataclasses

        broken = dataclasses.replace(simulation.logs.ssl[0], established=False)
        analyzer.add_ssl([broken])
        assert analyzer.connections_seen == 0
        assert analyzer.dropped_unestablished == 1

    def test_unknown_fuid_tolerated(self, world):
        simulation, _ = world
        analyzer = StreamingAnalyzer(simulation.trust_bundle)
        import dataclasses

        orphan = dataclasses.replace(
            simulation.logs.ssl[0], cert_chain_fuids=("F_missing",)
        )
        analyzer.add_ssl([orphan])  # must not raise
        assert analyzer.unique_certificates == 0
