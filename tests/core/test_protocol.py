"""The mergeable-analysis contract: registry completeness, picklable
partials, and merge associativity / order-insensitivity.

The load-bearing property: for every registered analysis, feeding the
connection stream through ONE partial, or through partials over ANY
split of the stream merged in ANY order, finalizes to byte-identical
tables. That is what makes the shard executor provably equivalent to
the sequential pipeline.
"""

import importlib
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import protocol


@pytest.fixture(scope="module")
def context(small_result):
    return protocol.AnalysisContext.from_enriched(small_result.enriched)


def _finalized(partial):
    return partial.finalize().render()


def _run_split(analysis, context, connections, raw_views, splits, order):
    """Feed each chunk into its own partial, merge in the given order."""
    bounds = [0, *sorted(splits), len(connections)]
    chunks = [
        connections[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)
    ]
    raw_bounds = [0, *sorted(s % (len(raw_views) + 1) for s in splits), len(raw_views)]
    raw_bounds = sorted(raw_bounds)
    raw_chunks = [
        raw_views[raw_bounds[i]:raw_bounds[i + 1]]
        for i in range(len(raw_bounds) - 1)
    ]
    partials = []
    for index, chunk in enumerate(chunks):
        partial = analysis.factory(context)
        for conn in chunk:
            partial.update(conn)
        if analysis.needs_raw and index < len(raw_chunks):
            for view in raw_chunks[index]:
                partial.update_raw(view)
        partials.append(partial)
    ordered = [partials[i] for i in order] if order else partials
    merged = ordered[0]
    for other in ordered[1:]:
        merged.merge(other)
    return merged


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = protocol.analysis_names()
        for name in protocol.PAPER_TABLE_ORDER:
            assert name in names
        assert len(names) == len(set(names))

    def test_names_are_paper_ordered(self):
        names = protocol.analysis_names()
        in_order = [n for n in names if n in protocol.PAPER_TABLE_ORDER]
        assert tuple(in_order) == protocol.PAPER_TABLE_ORDER

    def test_legacy_names_resolve(self):
        """Every migration-table entry points at a real callable."""
        for analysis in protocol.iter_analyses():
            if not analysis.legacy:
                continue
            parts = analysis.legacy.split(".")
            target = None
            depth = 0
            for i in range(len(parts), 0, -1):
                try:
                    target = importlib.import_module(".".join(parts[:i]))
                    depth = i
                    break
                except ModuleNotFoundError:
                    continue
            assert target is not None, analysis.legacy
            for part in parts[depth:]:
                target = getattr(target, part)
            assert callable(target), analysis.legacy

    def test_duplicate_name_with_different_factory_rejected(self):
        existing = protocol.get_analysis("table1")
        with pytest.raises(ValueError, match="already registered"):
            protocol.register(
                protocol.Analysis(
                    name="table1", title="x", factory=lambda ctx: None
                )
            )
        assert protocol.get_analysis("table1") is existing

    def test_reregistering_same_factory_is_idempotent(self):
        existing = protocol.get_analysis("table1")
        protocol.register(existing)
        assert protocol.get_analysis("table1") is existing

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="table1"):
            protocol.get_analysis("no-such-analysis")


class TestPartialMechanics:
    def test_empty_partials_finalize(self, context):
        """A shard with zero connections must still merge and render."""
        for analysis in protocol.iter_analyses():
            empty = analysis.factory(context)
            table = empty.finalize()
            assert table.title, analysis.name

    def test_partials_are_picklable(self, context, small_result):
        """Partials cross process boundaries; pickling is load-bearing."""
        partials = protocol.run_analyses(
            small_result.enriched, raw=small_result.dataset, context=context
        )
        for name, partial in partials.items():
            clone = pickle.loads(pickle.dumps(partial))
            assert _finalized(clone) == _finalized(partial), name

    def test_run_analyses_subset(self, small_result):
        partials = protocol.run_analyses(small_result.enriched, ["table5", "tls13"])
        assert sorted(partials) == ["table5", "tls13"]

    def test_merge_empty_is_identity(self, context, small_result):
        for analysis in protocol.iter_analyses():
            full = analysis.factory(context)
            for conn in small_result.enriched.connections:
                full.update(conn)
            if analysis.needs_raw:
                for view in small_result.dataset.connections:
                    full.update_raw(view)
            reference = _finalized(full)
            full.merge(analysis.factory(context))
            assert _finalized(full) == reference, analysis.name


class TestMergeEquivalence:
    """Sequential == any shard split == any (shuffled) merge order."""

    def test_halves_match_sequential(self, context, small_result):
        connections = small_result.enriched.connections
        raw = small_result.dataset.connections
        mid = len(connections) // 2
        for analysis in protocol.iter_analyses():
            sequential = _run_split(analysis, context, connections, raw, [], [])
            halves = _run_split(analysis, context, connections, raw, [mid], [])
            assert _finalized(halves) == _finalized(sequential), analysis.name

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_splits_and_orders(self, data, context, small_result):
        connections = small_result.enriched.connections
        raw = small_result.dataset.connections
        n_chunks = data.draw(st.integers(min_value=2, max_value=5))
        splits = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(connections)),
                    min_size=n_chunks - 1, max_size=n_chunks - 1,
                )
            )
        )
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        order = list(range(n_chunks))
        random.Random(seed).shuffle(order)
        for analysis in protocol.iter_analyses():
            sequential = _run_split(analysis, context, connections, raw, [], [])
            shuffled = _run_split(
                analysis, context, connections, raw, splits, order
            )
            assert _finalized(shuffled) == _finalized(sequential), analysis.name
