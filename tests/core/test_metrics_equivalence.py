"""The metrics determinism contract: counters and histograms from a
``jobs=4`` campaign merge to exactly the values of the sequential
``jobs=1`` run. Timers and gauges measure the wall clock and the
schedule and are explicitly outside the equivalence (the jobs gauge
*should* differ).

Verified both at the API level (ShardExecutor) and end to end through
``repro analyze --metrics json``, whose document is the last stdout
line by contract.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.parallel import analyze_directory
from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek.files import write_rotated_logs

CONFIG = ScenarioConfig(seed=31, months=5, connections_per_month=150)


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    simulation = TrafficGenerator(CONFIG).generate()
    directory = tmp_path_factory.mktemp("equivalence-archive")
    write_rotated_logs(simulation.logs, directory)
    return simulation, directory


def _deterministic(state: dict) -> dict:
    return {"counters": state["counters"], "histograms": state["histograms"]}


def test_jobs4_counters_equal_jobs1(archive):
    simulation, directory = archive
    states = {}
    for jobs in (1, 4):
        campaign = analyze_directory(
            directory, simulation.trust_bundle, simulation.ct_log, jobs=jobs
        )
        assert campaign.metrics is not None
        states[jobs] = campaign.metrics.state_dict()
    assert _deterministic(states[1]) == _deterministic(states[4])
    assert states[1]["counters"], "campaign produced no counters"
    # The schedule-dependent side must NOT silently leak into counters.
    assert states[1]["gauges"]["supervisor.jobs"] == 1.0
    assert states[4]["gauges"]["supervisor.jobs"] == 4.0


def test_study_jobs_counters_match_inline_ingest_totals():
    """The sharded ingest counters agree with the rows the campaign
    actually contains (cross-check against the in-memory dataset)."""
    study = CampusStudy(config=CONFIG, jobs=2, on_error="skip")
    study.partials()
    counters = study.metrics.state_dict()["counters"]
    inline = CampusStudy(config=CONFIG)
    result = inline.run()
    assert counters["ingest.ssl.rows_ok"] == len(result.simulation.logs.ssl)
    assert counters["ingest.x509.rows_ok"] == len(result.simulation.logs.x509)
    assert counters["ingest.ssl.rows_dropped"] == 0


def _analyze_metrics_json(directory: Path, bundle_path: Path, jobs: int) -> dict:
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(directory),
         "--trust-bundle", str(bundle_path), "--jobs", str(jobs),
         "--table", "table1", "--metrics", "json"],
        capture_output=True, text=True, check=True,
    )
    last_line = completed.stdout.strip().splitlines()[-1]
    document = json.loads(last_line)
    assert document["format"] == "run-metrics/v1"
    return document


def test_cli_metrics_json_equivalence(archive, tmp_path):
    """End to end: `analyze --jobs 4 --metrics json` == `--jobs 1`."""
    simulation, directory = archive
    bundle_path = tmp_path / "trust_bundle.txt"
    with bundle_path.open("w") as out:
        for dn in sorted(simulation.trust_bundle.subject_dns):
            out.write(dn + "\n")
        for org in sorted(simulation.trust_bundle.organizations):
            out.write(f"org:{org}\n")
    sequential = _analyze_metrics_json(directory, bundle_path, jobs=1)
    parallel = _analyze_metrics_json(directory, bundle_path, jobs=4)
    assert _deterministic(sequential) == _deterministic(parallel)
    assert sequential["counters"]["supervisor.shards_completed"] == \
        CONFIG.months
