"""The live-tail subsystem, in process: rotation-safe tailing,
admission control, checkpoint/restore, and the headline equivalence —
a daemon that lived through rotations, truncations, and mid-write
reads produces byte-identical tables to a batch ``analyze`` of the
finished archive (sampling disabled).
"""

import json
import threading

import pytest

from repro.core.livetail import (
    AdmissionController,
    LiveAnalysisEngine,
    LiveTailDaemon,
    LogTailer,
)
from repro.core.parallel import analyze_directory
from repro.core.streaming import StreamingAnalyzer, load_checkpoint_json
from repro.netsim import LiveLogWriter, ScenarioConfig, TrafficGenerator


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(months=3, connections_per_month=120, seed=41)
    ).generate()


def _key(record):
    return (record.ts, getattr(record, "uid", None), getattr(record, "fuid", None))


def _batch_tables(directory, bundle):
    campaign = analyze_directory(directory, bundle, on_error="skip")
    return {
        name: campaign.table(name).render() for name in campaign.partials
    }, campaign.ingest


def _live_tables(engine):
    return {
        name: entry["table"].render()
        for name, entry in engine.tables().items()
    }


def _ingest_key(report):
    return (
        report.rows_ok,
        report.rows_dropped,
        report.files_read,
        report.files_missing_close,
        report.truncated_final_lines,
    )


def _merged_ingest_key(engine):
    return tuple(
        a + b
        for a, b in zip(
            _ingest_key(engine.ssl_report), _ingest_key(engine.x509_report)
        )
    )


class _Harness:
    """A daemon's moving parts without the loop: two tailers feeding
    one engine, driven explicitly by the test."""

    def __init__(self, directory, bundle, **engine_kwargs):
        self.engine = LiveAnalysisEngine(bundle, **engine_kwargs)
        self.ssl = LogTailer(
            directory, "ssl", report=self.engine.ssl_report
        )
        self.x509 = LogTailer(
            directory, "x509", report=self.engine.x509_report
        )

    def poll(self):
        ssl_records = self.ssl.poll()
        x509_records = self.x509.poll()
        self.engine.feed(ssl_records, x509_records)
        return len(ssl_records) + len(x509_records)


class TestLogTailer:
    def test_append_rotate_exactly_once(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        tailer = LogTailer(tmp_path, "ssl")
        collected = []
        while writer.remaining:
            writer.write_next(37)
            collected.extend(tailer.poll())
        writer.finalize()
        collected.extend(tailer.poll())
        assert tailer.poll() == []  # drained; nothing re-read
        assert sorted(map(_key, collected)) == sorted(
            map(_key, simulation.logs.ssl)
        )
        assert tailer.rotations_seen >= 1

    def test_preexisting_archive_read_once(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        writer.finalize()  # rotation happened before the tailer existed
        tailer = LogTailer(tmp_path, "x509")
        collected = tailer.poll()
        assert sorted(map(_key, collected)) == sorted(
            map(_key, simulation.logs.x509)
        )
        assert tailer.poll() == []

    def test_partial_write_is_buffered(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        # Advance until the next event is an ssl row, then cut it.
        while writer._events[writer._cursor][0] != "ssl":
            writer.write_next(1)
        writer.write_next(20)
        while writer._events[writer._cursor][0] != "ssl":
            writer.write_next(1)
        tailer = LogTailer(tmp_path, "ssl")
        baseline = len(tailer.poll())
        writer.partial_write()
        assert tailer.poll() == []  # the cut row waits for its newline
        assert tailer.report.rows_dropped == 0
        writer.write_next(1)  # completes the cut row, writes one more
        resumed = tailer.poll()
        assert len(resumed) >= 1
        assert baseline + len(resumed) == tailer.report.rows_ok

    def test_copytruncate_exactly_once(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        tailer = LogTailer(tmp_path, "ssl")
        collected = []
        writer.write_next(50)
        collected.extend(tailer.poll())
        writer.truncate("ssl")
        collected.extend(tailer.poll())  # observes the regression + copy
        assert tailer.truncations_seen == 1
        while writer.remaining:
            writer.write_next(50)
            collected.extend(tailer.poll())
        writer.finalize()
        collected.extend(tailer.poll())
        assert sorted(map(_key, collected)) == sorted(
            map(_key, simulation.logs.ssl)
        )

    def test_state_round_trip_moves_no_byte_twice(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        tailer = LogTailer(tmp_path, "ssl")
        collected = []
        writer.write_next(60)
        collected.extend(tailer.poll())
        state = json.loads(json.dumps(tailer.state_dict()))
        tailer.close()  # daemon dies here

        restored = LogTailer(tmp_path, "ssl")
        restored.load_state(state)
        while writer.remaining:
            writer.write_next(60)
            collected.extend(restored.poll())
        writer.finalize()
        collected.extend(restored.poll())
        assert sorted(map(_key, collected)) == sorted(
            map(_key, simulation.logs.ssl)
        )

    def test_restore_after_missed_rotation(self, simulation, tmp_path):
        """The checkpointed live instance rotated away while the daemon
        was down: its rotated file must be consumed from the recorded
        offset, not from byte zero."""
        writer = LiveLogWriter(simulation.logs, tmp_path)
        tailer = LogTailer(tmp_path, "ssl")
        collected = []
        writer.write_next(60)
        collected.extend(tailer.poll())
        state = json.loads(json.dumps(tailer.state_dict()))
        tailer.close()
        writer.write_next(len(writer._events))
        writer.finalize()  # rotation happens while "down"

        restored = LogTailer(tmp_path, "ssl")
        restored.load_state(state)
        collected.extend(restored.poll())
        assert sorted(map(_key, collected)) == sorted(
            map(_key, simulation.logs.ssl)
        )


class TestLiveBatchEquivalence:
    def test_faulted_live_run_matches_batch(self, simulation, tmp_path):
        """The acceptance-criteria core: rotations, a copytruncate, and
        partial writes along the way; the final tables and ingest
        accounting are identical to batch-analyzing the archive."""
        writer = LiveLogWriter(simulation.logs, tmp_path)
        harness = _Harness(tmp_path, simulation.trust_bundle)
        step = 0
        while writer.remaining:
            writer.write_next(25)
            if step == 2:
                writer.truncate("ssl")
                harness.poll()  # observe the regression before more rows
            if step == 4:
                writer.rotate("x509")
            if step % 3 == 0:
                writer.partial_write()
            harness.poll()
            step += 1
        writer.finalize()
        harness.poll()
        assert harness.ssl.truncations_seen == 1
        assert harness.ssl.rotations_seen + harness.x509.rotations_seen >= 4

        batch_tables, batch_ingest = _batch_tables(
            tmp_path, simulation.trust_bundle
        )
        assert _live_tables(harness.engine) == batch_tables
        assert _merged_ingest_key(harness.engine) == _ingest_key(batch_ingest)

    def test_no_sampling_status_when_disabled(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        harness = _Harness(tmp_path, simulation.trust_bundle)
        writer.finalize()
        harness.poll()
        assert all(
            entry["sampling"] is None
            for entry in harness.engine.tables().values()
        )


class TestCheckpointRestore:
    def test_kill_and_resume_matches_batch(self, simulation, tmp_path):
        logdir = tmp_path / "logs"
        ckpt = tmp_path / "ckpt.json"
        writer = LiveLogWriter(simulation.logs, logdir)
        harness = _Harness(logdir, simulation.trust_bundle)
        writer.write_next(150)
        harness.poll()
        harness.engine.checkpoint(
            ckpt,
            {"ssl": harness.ssl.state_dict(), "x509": harness.x509.state_dict()},
        )
        # SIGKILL: rows written after the checkpoint but consumed by the
        # first process are re-consumed by the resumed one — and only
        # those.
        writer.write_next(40)
        harness.poll()
        harness.ssl.close()
        harness.x509.close()
        del harness

        document, used_prev = load_checkpoint_json(ckpt)
        assert not used_prev
        engine = LiveAnalysisEngine.from_checkpoint_doc(
            simulation.trust_bundle, document
        )
        resumed = _Harness.__new__(_Harness)
        resumed.engine = engine
        resumed.ssl = LogTailer(logdir, "ssl", report=engine.ssl_report)
        resumed.x509 = LogTailer(logdir, "x509", report=engine.x509_report)
        tailers = document["livetail"]["tailers"]
        resumed.ssl.load_state(tailers["ssl"])
        resumed.x509.load_state(tailers["x509"])
        while writer.remaining:
            writer.write_next(80)
            resumed.poll()
        writer.finalize()
        resumed.poll()

        batch_tables, batch_ingest = _batch_tables(
            logdir, simulation.trust_bundle
        )
        assert _live_tables(resumed.engine) == batch_tables
        assert _merged_ingest_key(resumed.engine) == _ingest_key(batch_ingest)

    def test_bad_state_format_rejected(self, simulation):
        engine = LiveAnalysisEngine(simulation.trust_bundle)
        with pytest.raises(ValueError, match="livetail state format"):
            engine.load_extra({"format": "livetail/v0", "state_b64": ""})


class TestAdmissionController:
    def test_disabled_is_pass_through(self):
        ctrl = AdmissionController()
        assert not ctrl.enabled
        assert ctrl.observe_batch(10**9) is None
        assert not ctrl.sampling

    def test_watermark_transitions(self):
        ctrl = AdmissionController(high_watermark=100, low_watermark=10)
        assert ctrl.observe_batch(100) is None
        assert ctrl.observe_batch(101) == "enter"
        assert ctrl.sampling
        assert ctrl.observe_batch(50) is None  # between the watermarks
        assert ctrl.observe_batch(10) == "exit"

    def test_reservoir_is_bounded_and_accounted(self):
        ctrl = AdmissionController(
            high_watermark=1, reservoir_size=8, hot_tables=("t",)
        )
        ctrl.observe_batch(100)
        for i in range(100):
            ctrl.offer(i)
        assert len(ctrl.reservoir) == 8
        items = ctrl.close_window()
        assert len(items) == 8
        stats = ctrl.table_stats("t")
        assert stats == {
            "sampled": True, "offered": 100, "admitted": 8,
            "correction": pytest.approx(12.5),
        }
        assert not ctrl.sampling

    def test_open_window_included_on_request(self):
        ctrl = AdmissionController(
            high_watermark=1, reservoir_size=4, hot_tables=("t",)
        )
        ctrl.observe_batch(10)
        for i in range(10):
            ctrl.offer(i)
        assert ctrl.table_stats("t") == {
            "sampled": True, "offered": 0, "admitted": 0, "correction": 1.0,
        }
        live = ctrl.table_stats("t", include_open_window=True)
        assert live["offered"] == 10 and live["admitted"] == 4

    def test_unknown_table_has_no_stats(self):
        ctrl = AdmissionController(high_watermark=1, hot_tables=("t",))
        ctrl.observe_batch(10)
        assert ctrl.table_stats("other") is None

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(high_watermark=-1)
        with pytest.raises(ValueError):
            AdmissionController(high_watermark=5, low_watermark=6)


class TestOverloadSampling:
    def test_hot_tables_flagged_with_correction(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        admission = AdmissionController(
            high_watermark=20, low_watermark=0, reservoir_size=16
        )
        harness = _Harness(
            tmp_path, simulation.trust_bundle, admission=admission
        )
        writer.finalize()
        harness.poll()  # one huge batch: overload
        assert admission.sampling
        tables = harness.engine.tables()
        for name in harness.engine._hot:
            stats = tables[name]["sampling"]
            assert stats is not None and stats["sampled"]
            assert stats["correction"] > 1.0
        for name in harness.engine._cold:
            assert tables[name]["sampling"] is None
        counters = harness.engine.metrics.counters
        assert counters["livetail.admission.windows"] == 1
        assert counters["livetail.admission.deferred"] > 0

        harness.engine.publish_sampling_metrics()
        gauges = harness.engine.metrics.gauges
        for name in harness.engine._hot:
            assert gauges[f"livetail.sampled.{name}.correction"] > 1.0

    def test_window_exit_folds_reservoir(self, simulation, tmp_path):
        writer = LiveLogWriter(simulation.logs, tmp_path)
        admission = AdmissionController(
            high_watermark=20, low_watermark=5, reservoir_size=16
        )
        harness = _Harness(
            tmp_path, simulation.trust_bundle, admission=admission
        )
        writer.write_next(400)
        harness.poll()
        assert admission.sampling
        harness.poll()  # an empty batch (0 rows <= low) exits the window
        assert not admission.sampling
        assert harness.engine.metrics.counters["livetail.admission.folded"] > 0
        # Identity-level tables kept exact rows throughout.
        stats = harness.engine.tables()["table1"]["sampling"]
        assert stats is None


class TestDaemonLoop:
    def test_run_serves_and_checkpoints_on_stop(self, simulation, tmp_path):
        logdir = tmp_path / "logs"
        ckpt = tmp_path / "ckpt.json"
        writer = LiveLogWriter(simulation.logs, logdir)
        writer.write_next(100)
        daemon = LiveTailDaemon(
            logdir, simulation.trust_bundle,
            checkpoint_path=ckpt, checkpoint_interval=3600,
            poll_interval=0.005,
        )
        thread = threading.Thread(target=daemon.run)
        thread.start()
        try:
            writer.finalize()
            for _ in range(2000):
                if daemon.health()["rows"]["ssl"] >= len(simulation.logs.ssl):
                    break
                daemon.stop_event.wait(0.005)
        finally:
            daemon.stop()
            thread.join(timeout=30)
        assert not thread.is_alive()
        health = daemon.health()
        assert health["rows"]["ssl"] == len(simulation.logs.ssl)
        assert health["rows"]["x509"] == len(simulation.logs.x509)
        assert health["checkpoints_written"] >= 1
        # The final checkpoint loads and carries the full run.
        restored = StreamingAnalyzer.from_checkpoint(
            simulation.trust_bundle, ckpt
        )
        assert restored.connections_seen == daemon.engine.analyzer.connections_seen

    def test_resume_flag_with_no_checkpoint_starts_fresh(
        self, simulation, tmp_path
    ):
        daemon = LiveTailDaemon(
            tmp_path, simulation.trust_bundle,
            checkpoint_path=tmp_path / "none.json", resume=True,
        )
        assert not daemon.resumed
        assert daemon.poll_once() == 0
