"""Shard executor: byte-identical to sequential, 0/1/N-worker equal."""

import pickle

import pytest

from repro.core import protocol
from repro.core.dataset import MtlsDataset
from repro.core.enrich import Enricher
from repro.core.parallel import CampaignResult, ShardExecutor, analyze_directory
from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek.files import discover_shards, write_rotated_logs

pytestmark = pytest.mark.usefixtures("supervision_watchdog")

_SCENARIO = ScenarioConfig(months=4, connections_per_month=250, seed=29)


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(_SCENARIO).generate()


@pytest.fixture(scope="module")
def archive(simulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("rotated")
    write_rotated_logs(simulation.logs, directory)
    return directory


@pytest.fixture(scope="module")
def sequential_tables(simulation):
    """Reference: the in-memory sequential pipeline."""
    dataset = MtlsDataset.from_logs(simulation.logs)
    enriched = Enricher(
        bundle=simulation.trust_bundle, ct_log=simulation.ct_log
    ).enrich(dataset)
    partials = protocol.run_analyses(enriched, raw=dataset)
    return [p.finalize().render() for p in partials.values()]


class TestDiscovery:
    def test_one_shard_per_month(self, archive):
        shards = discover_shards(archive)
        assert [month for month, _, _ in shards] == sorted(
            month for month, _, _ in shards
        )
        assert len(shards) == _SCENARIO.months

    def test_x509_broadcast_to_every_shard(self, archive):
        shards = discover_shards(archive)
        x509_sets = {tuple(str(p) for p in x509) for _, _, x509 in shards}
        assert len(x509_sets) == 1
        (x509_paths,) = x509_sets
        assert len(x509_paths) == _SCENARIO.months

    def test_empty_directory_rejected(self, tmp_path):
        from repro.zeek.tsv import TsvFormatError

        with pytest.raises(TsvFormatError, match="no rotated"):
            discover_shards(tmp_path)


class TestExecutorEquivalence:
    def test_inline_matches_sequential(self, archive, simulation, sequential_tables):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log, jobs=1
        )
        assert [t.render() for t in campaign.tables()] == sequential_tables

    def test_parallel_matches_sequential(self, archive, simulation, sequential_tables):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log, jobs=3
        )
        assert [t.render() for t in campaign.tables()] == sequential_tables
        assert campaign.jobs == 3

    def test_jobs_capped_at_shard_count(self, archive, simulation):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log, jobs=64
        )
        assert campaign.jobs == _SCENARIO.months

    def test_interception_report_is_global(self, archive, simulation):
        """The filter decision must come from the merged scan."""
        dataset = MtlsDataset.from_logs(simulation.logs)
        enricher = Enricher(
            bundle=simulation.trust_bundle, ct_log=simulation.ct_log
        )
        expected = enricher.enrich(dataset).interception
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log, jobs=2
        )
        assert campaign.interception.flagged_issuers == expected.flagged_issuers
        assert (
            campaign.interception.excluded_fingerprints
            == expected.excluded_fingerprints
        )
        assert (
            campaign.interception.total_certificates
            == expected.total_certificates
        )

    def test_names_subset(self, archive, simulation):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log,
            names=("table1", "figure1"), jobs=1,
        )
        assert sorted(campaign.partials) == ["figure1", "table1"]
        with pytest.raises(KeyError, match="table5"):
            campaign.table("table5")

    def test_result_unknown_name_lists_known(self, archive, simulation):
        """result() is as helpful as table() about what exists."""
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log,
            names=("table1", "figure1"), jobs=1,
        )
        with pytest.raises(KeyError, match="have: table1, figure1"):
            campaign.result("table5")
        assert campaign.result("table1") is not None

    def test_merge_scans_does_not_mutate_inputs(self, simulation):
        """Scans may be cached in a resume manifest: merging must build
        a fresh scan, never fold sibling shards into scans[0]."""
        from repro.core.enrich import InterceptionScan

        first = InterceptionScan(simulation.trust_bundle, None)
        first.fingerprints = {"fp-a"}
        first.mismatched_domains = {"evil-ca": {"a.example"}}
        second = InterceptionScan(simulation.trust_bundle, None)
        second.fingerprints = {"fp-b"}
        second.mismatched_domains = {"evil-ca": {"b.example"}}
        executor = ShardExecutor(simulation.trust_bundle)
        report = executor._merge_scans([first, second])
        assert report.total_certificates == 2
        assert first.fingerprints == {"fp-a"}
        assert first.mismatched_domains == {"evil-ca": {"a.example"}}
        assert second.fingerprints == {"fp-b"}

    def test_ingest_accounting_counts_x509_once(self, archive, simulation):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log,
            on_error="skip", jobs=2,
        )
        assert campaign.ingest.rows_ok == len(simulation.logs.ssl) + len(
            simulation.logs.x509
        )
        assert campaign.ingest.rows_dropped == 0

    def test_empty_shard_list_rejected(self, simulation):
        executor = ShardExecutor(simulation.trust_bundle)
        with pytest.raises(ValueError, match="no shards"):
            executor.run([])

    def test_campaign_result_picklable(self, archive, simulation):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log, jobs=1
        )
        clone = pickle.loads(pickle.dumps(campaign))
        assert isinstance(clone, CampaignResult)
        assert [t.render() for t in clone.tables()] == [
            t.render() for t in campaign.tables()
        ]


class TestStudyJobs:
    """0/1/N-worker equivalence through CampusStudy(jobs=...)."""

    @pytest.fixture(scope="class")
    def reference(self):
        study = CampusStudy(seed=41, months=3, connections_per_month=200)
        return [t.render() for t in study.all_tables()]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_jobs_equal_in_memory(self, jobs, reference):
        study = CampusStudy(
            seed=41, months=3, connections_per_month=200, jobs=jobs
        )
        assert [t.render() for t in study.all_tables()] == reference

    def test_single_table_access(self):
        study = CampusStudy(
            seed=41, months=3, connections_per_month=200, jobs=2
        )
        assert study.table5().render() == study.table("table5").render()
        with pytest.raises(KeyError, match="unknown analysis"):
            study.table("nope")

    def test_fault_plan_incompatible_with_jobs(self):
        from repro.netsim import FaultPlan

        with pytest.raises(ValueError, match="fault injection"):
            CampusStudy(jobs=2, fault_plan=FaultPlan.uniform(0.01, seed=1))

    def test_lenient_policy_matches_through_shards(self):
        """on_error=skip over clean logs: same tables, plus ingest health."""
        base = CampusStudy(
            seed=41, months=3, connections_per_month=200, on_error="skip"
        )
        sharded = CampusStudy(
            seed=41, months=3, connections_per_month=200,
            on_error="skip", jobs=2,
        )
        ref = [t.render() for t in base.all_tables()]
        got = [t.render() for t in sharded.all_tables()]
        # Paper tables identical; the trailing ingest-health section
        # differs only in file accounting (2 files vs one per rotation).
        assert got[:-1] == ref[:-1]
        assert "Ingest health" in got[-1]
