"""Tests for study-export comparison."""

import pytest

from repro.core.compare import (
    StudyDiff,
    diff_studies,
    diff_study_json,
    diff_tables,
    render_study_diff,
)
from repro.core.export import study_to_dict, study_to_json


class TestDiffTables:
    def test_identical(self):
        table = {"rows": [["a", "1"], ["b", "2"]]}
        assert diff_tables("T", table, table).is_empty

    def test_changed_row(self):
        a = {"rows": [["a", "1"]]}
        b = {"rows": [["a", "2"]]}
        diff = diff_tables("T", a, b)
        assert diff.changed_rows == [("a", ["a", "1"], ["a", "2"])]

    def test_added_removed_rows(self):
        a = {"rows": [["a", "1"], ["b", "2"]]}
        b = {"rows": [["b", "2"], ["c", "3"]]}
        diff = diff_tables("T", a, b)
        assert diff.only_in_a == ["a"]
        assert diff.only_in_b == ["c"]


class TestDiffStudies:
    def test_same_study_no_diff(self, small_study):
        payload = study_to_dict(small_study)
        diff = diff_studies(payload, payload)
        assert diff.is_empty
        assert "no differences" in render_study_diff(diff).render()

    def test_different_seeds_differ(self, small_study):
        from repro.core.study import CampusStudy
        from repro.netsim import ScenarioConfig

        other = CampusStudy(
            config=ScenarioConfig(months=4, connections_per_month=400, seed=99)
        )
        diff = diff_studies(study_to_dict(small_study), study_to_dict(other))
        assert not diff.is_empty
        assert diff.summary_changes or diff.table_diffs

    def test_json_interface(self, small_study):
        document = study_to_json(small_study)
        assert diff_study_json(document, document).is_empty

    def test_summary_change_detected(self, small_study):
        a = study_to_dict(small_study)
        b = study_to_dict(small_study)
        b["summary"]["connections"] += 1
        diff = diff_studies(a, b)
        assert "connections" in diff.summary_changes

    def test_missing_table_detected(self, small_study):
        a = study_to_dict(small_study)
        b = study_to_dict(small_study)
        removed = next(iter(b["tables"]))
        del b["tables"][removed]
        diff = diff_studies(a, b)
        assert removed in diff.tables_only_in_a

    def test_render_truncation(self):
        a = {"summary": {}, "tables": {
            "T": {"rows": [[f"k{i}", "1"] for i in range(100)]}
        }}
        b = {"summary": {}, "tables": {
            "T": {"rows": [[f"k{i}", "2"] for i in range(100)]}
        }}
        diff = diff_studies(a, b)
        text = render_study_diff(diff, max_rows=5).render()
        assert "suppressed" in text
