"""Tests for enrichment: direction, public/private, interception filter."""

import datetime as dt

import pytest

from repro.core.dataset import MtlsDataset
from repro.core.enrich import AssociationRules, Enricher
from repro.trust import TrustBundle
from repro.zeek import SslRecord, X509Record

UTC = dt.timezone.utc
TS = dt.datetime(2023, 1, 1, tzinfo=UTC)

BUNDLE = TrustBundle(
    subject_dns=frozenset({"CN=Public Root,O=Public Org"}),
    organizations=frozenset({"public org"}),
)


def _ssl(uid, resp_h, sni="svc.example.com", server_fuids=(), client_fuids=(), **kw):
    base = dict(
        ts=TS, uid=uid, id_orig_h="198.18.0.7", id_orig_p=50000,
        id_resp_h=resp_h, id_resp_p=443, version="TLSv12", cipher="x",
        server_name=sni, established=True,
        cert_chain_fuids=tuple(server_fuids),
        client_cert_chain_fuids=tuple(client_fuids),
    )
    base.update(kw)
    return SslRecord(**base)


def _x509(fuid, issuer="CN=Private CA,O=Private Org", **kw):
    base = dict(
        ts=TS, fuid=fuid, fingerprint="f" + fuid, version=3, serial="01",
        subject=f"CN=subject-{fuid}", issuer=issuer,
        not_valid_before=dt.datetime(2022, 1, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2024, 1, 1, tzinfo=UTC),
        key_alg="rsaEncryption", sig_alg="sha256WithRSAEncryption",
        key_length=2048,
    )
    base.update(kw)
    return X509Record(**base)


class FakeCt:
    def __init__(self, issuers_by_domain):
        self._issuers = {k.lower(): v for k, v in issuers_by_domain.items()}

    def knows_domain(self, domain):
        return domain.lower() in self._issuers

    def issuers_for(self, domain):
        return self._issuers.get(domain.lower(), [])


class TestDirection:
    def test_inbound_outbound(self):
        dataset = MtlsDataset(
            [_ssl("C1", "10.16.0.5"), _ssl("C2", "198.18.3.3")], []
        )
        enriched = Enricher(BUNDLE).enrich(dataset)
        directions = [c.direction for c in enriched.connections]
        assert directions == ["inbound", "outbound"]


class TestPublicPrivate:
    def test_issuer_dn_match(self):
        dataset = MtlsDataset(
            [_ssl("C1", "198.18.1.1", server_fuids=("F1",))],
            [_x509("F1", issuer="CN=Public Root,O=Public Org")],
        )
        enriched = Enricher(BUNDLE).enrich(dataset)
        assert enriched.connections[0].server_public is True

    def test_issuer_org_match(self):
        dataset = MtlsDataset(
            [_ssl("C1", "198.18.1.1", server_fuids=("F1",))],
            [_x509("F1", issuer="CN=Unlisted Intermediate,O=Public Org")],
        )
        enriched = Enricher(BUNDLE).enrich(dataset)
        assert enriched.connections[0].server_public is True

    def test_private(self):
        dataset = MtlsDataset(
            [_ssl("C1", "198.18.1.1", server_fuids=("F1",))],
            [_x509("F1")],
        )
        enriched = Enricher(BUNDLE).enrich(dataset)
        assert enriched.connections[0].server_public is False

    def test_no_cert_is_none(self):
        dataset = MtlsDataset([_ssl("C1", "198.18.1.1")], [])
        enriched = Enricher(BUNDLE).enrich(dataset)
        assert enriched.connections[0].server_public is None


class TestAssociationRules:
    @pytest.mark.parametrize(
        "sni,expected",
        [
            ("portal.health.university.edu", "University Health"),
            ("vpn.university.edu", "University VPN"),
            ("www.its.university.edu", "University Server"),
            ("portal.localorg.org", "Local Organization"),
            ("svc.thirdparty.com", "Third Party Service"),
            ("FXP DCAU Cert", "Globus"),
            (None, "Unknown"),
        ],
    )
    def test_classification(self, sni, expected):
        rules = AssociationRules()
        dataset = MtlsDataset([_ssl("C1", "10.16.0.5", sni=sni)], [])
        assert rules.classify(dataset.connections[0]) == expected

    def test_missing_sni_with_globus_issuer(self):
        rules = AssociationRules()
        dataset = MtlsDataset(
            [_ssl("C1", "10.16.0.5", sni=None, server_fuids=("F1",))],
            [_x509("F1", issuer="CN=FXP DCAU Cert,O=Globus Online")],
        )
        assert rules.classify(dataset.connections[0]) == "Globus"


class TestInterceptionFilter:
    def _dataset(self):
        records = [
            # Five domains intercepted by the same proxy issuer.
            _ssl(f"C{i}", "198.18.1.1", sni=f"site{i}.example.com",
                 server_fuids=(f"F{i}",))
            for i in range(5)
        ]
        # A genuine private site (not in CT) and a misconfigured endpoint
        # contradicting CT on a single domain.
        records.append(
            _ssl("C9", "198.18.1.2", sni="private.example.com", server_fuids=("F9",))
        )
        records.append(
            _ssl("C10", "198.18.1.3", sni="solo.example.com", server_fuids=("F10",))
        )
        x509 = [
            _x509(f"F{i}", issuer="CN=Proxy CA,O=MiddleBox Inc") for i in range(5)
        ]
        x509.append(_x509("F9", issuer="CN=Own CA,O=Own Org"))
        x509.append(_x509("F10", issuer="CN=Oops CA,O=Oops Org"))
        ct = FakeCt(
            {
                **{f"site{i}.example.com": ["CN=Real CA,O=Public Org"] for i in range(5)},
                "solo.example.com": ["CN=Real CA,O=Public Org"],
            }
        )
        return MtlsDataset(records, x509), ct

    def test_proxy_flagged_and_excluded(self):
        dataset, ct = self._dataset()
        enricher = Enricher(BUNDLE, ct_log=ct, min_interception_domains=5)
        enriched = enricher.enrich(dataset)
        assert enriched.interception.flagged_issuers == {"CN=Proxy CA,O=MiddleBox Inc"}
        assert len(enriched.interception.excluded_fingerprints) == 5
        # The intercepted connections are gone from the analyzed dataset.
        uids = {c.view.ssl.uid for c in enriched.connections}
        assert uids == {"C9", "C10"}

    def test_single_domain_mismatch_not_flagged(self):
        dataset, ct = self._dataset()
        enriched = Enricher(BUNDLE, ct_log=ct, min_interception_domains=5).enrich(dataset)
        assert "CN=Oops CA,O=Oops Org" not in enriched.interception.flagged_issuers

    def test_threshold_configurable(self):
        dataset, ct = self._dataset()
        enriched = Enricher(BUNDLE, ct_log=ct, min_interception_domains=1).enrich(dataset)
        assert "CN=Oops CA,O=Oops Org" in enriched.interception.flagged_issuers

    def test_filter_can_be_disabled(self):
        dataset, ct = self._dataset()
        enriched = Enricher(
            BUNDLE, ct_log=ct, filter_interception=False
        ).enrich(dataset)
        assert not enriched.interception.excluded_fingerprints
        assert len(enriched.connections) == 7

    def test_no_ct_log_no_filtering(self):
        dataset, _ = self._dataset()
        enriched = Enricher(BUNDLE, ct_log=None).enrich(dataset)
        assert not enriched.interception.flagged_issuers

    def test_excluded_fraction(self):
        dataset, ct = self._dataset()
        enriched = Enricher(BUNDLE, ct_log=ct, min_interception_domains=5).enrich(dataset)
        assert enriched.interception.excluded_fraction == pytest.approx(5 / 7)
