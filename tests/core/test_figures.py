"""Tests for figure-data exports."""

import csv
import io

import pytest

from repro.core import figures


class TestCsvSerialization:
    def test_empty(self):
        assert figures.rows_to_csv([]) == ""

    def test_header_and_rows(self, medium_result):
        series = figures.figure1_series(medium_result.enriched)
        document = figures.rows_to_csv(series)
        parsed = list(csv.reader(io.StringIO(document)))
        assert parsed[0] == [
            "month", "total_connections", "mutual_connections", "mutual_share",
        ]
        assert len(parsed) == len(series) + 1


class TestFigure1:
    def test_series_matches_prevalence(self, medium_result):
        from repro.core.prevalence import monthly_mutual_share

        series = figures.figure1_series(medium_result.enriched)
        reference = monthly_mutual_share(medium_result.enriched)
        assert [p.month for p in series] == [p.label for p in reference]
        assert all(0 <= p.mutual_share <= 1 for p in series)


class TestFigure3:
    def test_segments_inverted(self, medium_result):
        segments = figures.figure3_segments(medium_result.enriched)
        assert segments
        for segment in segments:
            # Inverted (or equal, for the ayoba row): end <= start.
            assert segment.not_after_year <= segment.not_before_year
            assert segment.clients > 0


class TestFigure4:
    def test_points_unique_per_certificate(self, medium_result):
        points = figures.figure4_points(medium_result.enriched)
        assert points
        fingerprints = [p.fingerprint for p in points]
        assert len(fingerprints) == len(set(fingerprints))

    def test_no_inverted_certs(self, medium_result):
        for point in figures.figure4_points(medium_result.enriched):
            assert point.validity_days >= 0

    def test_category_consistent_with_public_flag(self, medium_result):
        for point in figures.figure4_points(medium_result.enriched):
            assert point.issuer_public == (point.issuer_category == "Public")

    def test_cdf(self):
        points = figures.cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]
        assert figures.cdf([]) == []


class TestFigure5:
    def test_points_positive_expiry(self, medium_result):
        points = figures.figure5_points(medium_result.enriched)
        assert points
        for point in points:
            assert point.days_expired_at_first_use > 0
            assert point.direction in ("inbound", "outbound")

    def test_apple_cluster_present(self, medium_result):
        points = figures.figure5_points(medium_result.enriched)
        apple = [p for p in points if p.issuer_org == "Apple"]
        assert apple
        assert all(p.issuer_public for p in apple)


class TestExportAll:
    def test_all_figures_exported(self, medium_result):
        documents = figures.export_all_figures(medium_result.enriched)
        assert set(documents) == {"figure1", "figure3", "figure4", "figure5"}
        for name, document in documents.items():
            assert document.startswith(("month", "issuer_org", "fingerprint")), name
