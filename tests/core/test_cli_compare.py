"""Tests for the `compare` CLI subcommand."""

import pytest

from repro.cli import main


def _write_export(path, months, cpm, seed):
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main([
            "study", "--months", str(months), "--cpm", str(cpm),
            "--seed", str(seed), "--json",
        ])
    assert code == 0
    path.write_text(buffer.getvalue())


class TestCompareCommand:
    def test_identical_exports(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        _write_export(a, 2, 120, 5)
        code = main(["compare", str(a), str(a)])
        assert code == 0
        assert "no differences" in capsys.readouterr().out

    def test_different_exports(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        _write_export(a, 2, 120, 5)
        _write_export(b, 2, 120, 6)
        code = main(["compare", str(a), str(b)])
        assert code == 3
        out = capsys.readouterr().out
        assert "Study comparison" in out
