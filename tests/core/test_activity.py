"""Tests for duration-of-activity statistics."""

import pytest

from repro.core.activity import (
    ActivityQuantiles,
    activity_report,
    render_activity_report,
)


class TestActivityQuantiles:
    def test_empty(self):
        quantiles = ActivityQuantiles.of([])
        assert quantiles.count == 0
        assert quantiles.maximum == 0.0

    def test_single_value(self):
        quantiles = ActivityQuantiles.of([42.0])
        assert quantiles.count == 1
        assert quantiles.p50 == quantiles.maximum == 42.0

    def test_monotone(self):
        quantiles = ActivityQuantiles.of([float(v) for v in range(100)])
        assert quantiles.p50 <= quantiles.p90 <= quantiles.p99 <= quantiles.maximum
        assert quantiles.maximum == 99.0

    def test_order_independent(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert ActivityQuantiles.of(values) == ActivityQuantiles.of(sorted(values))


class TestActivityReport:
    def test_default_population(self, medium_result):
        report = activity_report(medium_result.enriched)
        assert report.overall.count > 0
        assert "server" in report.by_role and "client" in report.by_role
        assert report.by_category

    def test_quantiles_bounded_by_campaign(self, medium_result):
        report = activity_report(medium_result.enriched)
        campaign_days = 23 * 31
        assert report.overall.maximum <= campaign_days

    def test_persistent_certs_exist(self, medium_result):
        """Long-lived cohorts (Globus, GuardiCore) persist through the
        campaign, exactly the paper's 'duration of activity' narrative."""
        report = activity_report(medium_result.enriched)
        assert report.persistent_fingerprints
        for fp in report.persistent_fingerprints:
            profile = medium_result.enriched.profiles[fp]
            assert profile.activity_days > 0.5 * report.overall.maximum

    def test_custom_population(self, medium_result):
        shared = [
            p for p in medium_result.enriched.profiles.values() if p.shared_roles
        ]
        report = activity_report(medium_result.enriched, population=shared)
        assert report.overall.count == len(shared)

    def test_counts_partition(self, medium_result):
        report = activity_report(medium_result.enriched)
        assert sum(q.count for q in report.by_role.values()) == report.overall.count
        assert sum(q.count for q in report.by_category.values()) == report.overall.count

    def test_render(self, medium_result):
        text = render_activity_report(activity_report(medium_result.enriched)).render()
        assert "Duration of activity" in text
        assert "role: client" in text
