"""durable_write: atomic publish, keep_prev retention, error-path
cleanup, and orphan sweeping."""

import json
import os

import pytest

from repro.core.durable import (
    TMP_SUFFIX,
    DurableIO,
    durable_write,
    durable_write_json,
    get_io,
    sweep_orphans,
    use_io,
)


def _tmp_siblings(directory):
    return [p for p in directory.iterdir() if p.name.endswith(TMP_SUFFIX)]


class TestDurableWrite:
    def test_writes_payload(self, tmp_path):
        target = tmp_path / "out.bin"
        result = durable_write(target, b"hello")
        assert result == target
        assert target.read_bytes() == b"hello"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        durable_write(target, b"new content")
        assert target.read_bytes() == b"new content"

    def test_no_temp_files_left_behind(self, tmp_path):
        durable_write(tmp_path / "out.bin", b"x" * 1024)
        assert _tmp_siblings(tmp_path) == []

    def test_empty_payload(self, tmp_path):
        target = tmp_path / "empty.bin"
        durable_write(target, b"")
        assert target.read_bytes() == b""

    def test_keep_prev_retains_old_content(self, tmp_path):
        target = tmp_path / "ckpt.json"
        durable_write(target, b"v1", keep_prev=True)
        assert not target.with_suffix(".json.prev").exists()
        durable_write(target, b"v2", keep_prev=True)
        assert target.read_bytes() == b"v2"
        assert target.with_suffix(".json.prev").read_bytes() == b"v1"

    def test_json_helper_round_trips(self, tmp_path):
        target = tmp_path / "doc.json"
        durable_write_json(target, {"a": 1, "b": [2, 3]})
        assert json.loads(target.read_text(encoding="utf-8")) == {
            "a": 1,
            "b": [2, 3],
        }


class _FailingIO(DurableIO):
    """Real I/O except one operation raises a survivable OSError."""

    def __init__(self, fail_op):
        self.fail_op = fail_op

    def fsync(self, fd):
        if self.fail_op == "fsync":
            raise OSError("injected fsync failure")
        super().fsync(fd)

    def replace(self, src, dst):
        if self.fail_op == "replace":
            raise OSError("injected replace failure")
        super().replace(src, dst)


class TestErrorCleanup:
    @pytest.mark.parametrize("fail_op", ["fsync", "replace"])
    def test_survivable_error_unlinks_temp_and_keeps_target(
        self, tmp_path, fail_op
    ):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with use_io(_FailingIO(fail_op)):
            with pytest.raises(OSError, match="injected"):
                durable_write(target, b"new")
        assert target.read_bytes() == b"old"
        assert _tmp_siblings(tmp_path) == []

    def test_use_io_restores_previous(self, tmp_path):
        original = get_io()
        shim = _FailingIO("fsync")
        with use_io(shim):
            assert get_io() is shim
        assert get_io() is original
        # Restored even when the block raises.
        with pytest.raises(ValueError):
            with use_io(shim):
                raise ValueError("boom")
        assert get_io() is original


class TestSweepOrphans:
    def test_removes_orphaned_temps(self, tmp_path):
        orphan = tmp_path / f"out.bin.abc123{TMP_SUFFIX}"
        orphan.write_bytes(b"half")
        keeper = tmp_path / "out.bin"
        keeper.write_bytes(b"whole")
        removed = sweep_orphans(tmp_path)
        assert removed == [orphan]
        assert not orphan.exists()
        assert keeper.read_bytes() == b"whole"

    def test_prefix_restricts_scope(self, tmp_path):
        mine = tmp_path / f"ckpt.json.x{TMP_SUFFIX}"
        other = tmp_path / f"ssl.log.y{TMP_SUFFIX}"
        mine.write_bytes(b"")
        other.write_bytes(b"")
        removed = sweep_orphans(tmp_path, prefix="ckpt.json")
        assert removed == [mine]
        assert other.exists()

    def test_missing_directory_is_safe(self, tmp_path):
        assert sweep_orphans(tmp_path / "nope") == []

    def test_ignores_directories(self, tmp_path):
        decoy = tmp_path / f"subdir{TMP_SUFFIX}"
        decoy.mkdir()
        assert sweep_orphans(tmp_path) == []
        assert decoy.is_dir()

    def test_writer_temps_match_sweep_key(self, tmp_path):
        """The name mkstemp generates is exactly what a later sweep (with
        the target's name as prefix) would remove."""
        io = DurableIO()
        fd, tmp = io.mkstemp(tmp_path, "target.col.")
        os.close(fd)
        name = os.path.basename(tmp)
        assert name.startswith("target.col.")
        assert name.endswith(TMP_SUFFIX)
        assert sweep_orphans(tmp_path, prefix="target.col") == [tmp_path / name]
