"""Tests for dataset joining and certificate profiles."""

import datetime as dt

import pytest

from repro.core.dataset import MtlsDataset
from repro.zeek import SslRecord, X509Record

UTC = dt.timezone.utc
TS = dt.datetime(2023, 1, 1, tzinfo=UTC)


def _ssl(uid, server_fuids=(), client_fuids=(), established=True, ts=TS, **kw):
    base = dict(
        ts=ts, uid=uid, id_orig_h="10.48.0.9", id_orig_p=50000,
        id_resp_h="198.18.0.9", id_resp_p=443, version="TLSv12",
        cipher="x", server_name="svc.example.com", established=established,
        cert_chain_fuids=tuple(server_fuids),
        client_cert_chain_fuids=tuple(client_fuids),
    )
    base.update(kw)
    return SslRecord(**base)


def _x509(fuid, fingerprint=None, **kw):
    base = dict(
        ts=TS, fuid=fuid, fingerprint=fingerprint or ("f" + fuid),
        version=3, serial="01", subject=f"CN=subject-{fuid}",
        issuer="CN=Issuer,O=Org",
        not_valid_before=dt.datetime(2022, 1, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2024, 1, 1, tzinfo=UTC),
        key_alg="rsaEncryption", sig_alg="sha256WithRSAEncryption",
        key_length=2048,
    )
    base.update(kw)
    return X509Record(**base)


class TestJoin:
    def test_leaf_is_first_fuid(self):
        dataset = MtlsDataset(
            [_ssl("C1", server_fuids=("F1", "F2"), client_fuids=("F3",))],
            [_x509("F1"), _x509("F2"), _x509("F3")],
        )
        conn = dataset.connections[0]
        assert conn.server_leaf.fuid == "F1"
        assert conn.client_leaf.fuid == "F3"
        assert conn.is_mutual

    def test_unestablished_dropped(self):
        dataset = MtlsDataset(
            [_ssl("C1", established=False), _ssl("C2")], []
        )
        assert len(dataset) == 1
        assert dataset.dropped_unestablished == 1

    def test_no_client_chain_not_mutual(self):
        dataset = MtlsDataset([_ssl("C1", server_fuids=("F1",))], [_x509("F1")])
        assert not dataset.connections[0].is_mutual
        assert dataset.mutual_connections == []

    def test_missing_x509_record_tolerated(self):
        dataset = MtlsDataset([_ssl("C1", server_fuids=("F9",))], [])
        assert dataset.connections[0].server_leaf is None


class TestProfiles:
    def test_roles_and_mutual_flag(self):
        records = [
            _ssl("C1", server_fuids=("F1",), client_fuids=("F2",)),
            _ssl("C2", server_fuids=("F1",)),
        ]
        dataset = MtlsDataset(records, [_x509("F1"), _x509("F2")])
        profiles = dataset.certificate_profiles()
        server = profiles["fF1"]
        client = profiles["fF2"]
        assert server.used_as_server and not server.used_as_client
        assert client.used_as_client and not client.used_as_server
        assert server.used_in_mutual and client.used_in_mutual
        assert server.connection_count == 2

    def test_shared_roles(self):
        records = [
            _ssl("C1", server_fuids=("F1",), client_fuids=("F1",)),
        ]
        dataset = MtlsDataset(records, [_x509("F1")])
        profile = dataset.certificate_profiles()["fF1"]
        assert profile.shared_roles
        assert profile.primary_role == "server"

    def test_activity_days(self):
        later = TS + dt.timedelta(days=10)
        records = [
            _ssl("C1", server_fuids=("F1",), ts=TS),
            _ssl("C2", server_fuids=("F1",), ts=later),
        ]
        dataset = MtlsDataset(records, [_x509("F1")])
        profile = dataset.certificate_profiles()["fF1"]
        assert profile.activity_days == pytest.approx(10.0)

    def test_dedup_across_fuids_with_same_fingerprint(self):
        # Two x509 rows (different fuids) for the same certificate must
        # collapse onto one profile.
        records = [
            _ssl("C1", server_fuids=("F1",)),
            _ssl("C2", server_fuids=("F2",)),
        ]
        dataset = MtlsDataset(
            records, [_x509("F1", fingerprint="same"), _x509("F2", fingerprint="same")]
        )
        profiles = dataset.certificate_profiles()
        assert len(profiles) == 1
        assert profiles["same"].connection_count == 2

    def test_subnet_tracking(self):
        records = [
            _ssl("C1", client_fuids=("F1",), id_orig_h="10.48.1.5"),
            _ssl("C2", client_fuids=("F1",), id_orig_h="10.48.2.5"),
            _ssl("C3", server_fuids=("F1",), id_resp_h="198.18.7.1"),
        ]
        dataset = MtlsDataset(records, [_x509("F1")])
        profile = dataset.certificate_profiles()["fF1"]
        assert len(profile.client_subnets) == 2
        assert len(profile.server_subnets) == 1


class TestExclusion:
    def test_without_fingerprints(self):
        records = [
            _ssl("C1", server_fuids=("F1",)),
            _ssl("C2", server_fuids=("F2",)),
        ]
        dataset = MtlsDataset(records, [_x509("F1"), _x509("F2")])
        filtered = dataset.without_fingerprints({"fF1"})
        assert len(filtered) == 1
        assert filtered.connections[0].ssl.uid == "C2"
        assert "fF1" not in filtered.certificate_profiles()
