"""Tests for EKU propagation and the EKU-mismatch extension analysis."""

import datetime as dt

import pytest

from repro.asn1 import OID
from repro.core.sharing import eku_mismatch_report, render_eku_mismatch
from repro.x509 import CertificateAuthority, CertificateError, KeyFactory, Name

NOW = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create_root(
        Name.build(common_name="EKU CA"), KeyFactory(mode="sim", seed=66)
    )


class TestEkuIssuance:
    def test_purposes_land_in_certificate(self, ca):
        cert, _ = ca.issue(
            Name.build(common_name="server"), now=NOW,
            purposes=(OID.EKU_SERVER_AUTH, OID.EKU_CLIENT_AUTH),
        )
        eku = cert.extended_key_usage
        assert eku is not None
        assert eku.server_auth and eku.client_auth

    def test_no_purposes_no_extension(self, ca):
        cert, _ = ca.issue(Name.build(common_name="bare"), now=NOW)
        assert cert.extended_key_usage is None

    def test_v1_rejects_purposes(self, ca):
        with pytest.raises(CertificateError):
            ca.issue(
                Name.build(common_name="old"), now=NOW, version=1,
                purposes=(OID.EKU_SERVER_AUTH,),
            )


class TestEkuInLogs:
    def test_eku_names_logged(self, small_result):
        records = [r for r in small_result.dataset.certificate_profiles().values()
                   if r.record.eku]
        assert records, "no certificates with EKU in the simulated run"
        names = set()
        for profile in records:
            names.update(profile.record.eku)
        assert "serverAuth" in names
        assert "clientAuth" in names

    def test_allows_helpers(self, small_result):
        from repro.zeek import X509Record

        for profile in small_result.dataset.certificate_profiles().values():
            record = profile.record
            if not record.eku:
                # Absent EKU permits any usage.
                assert record.allows_server_auth and record.allows_client_auth
            elif record.eku == ("serverAuth",):
                assert record.allows_server_auth
                assert not record.allows_client_auth


class TestEkuMismatch:
    def test_shared_public_certs_violate(self, medium_result):
        report = eku_mismatch_report(medium_result.enriched)
        # The Table 5 public rows and the Table 6 dual-use certs are
        # serverAuth-only certificates presented by clients.
        assert report.client_violations
        assert report.certificates_with_eku > 0

    def test_violations_are_genuine(self, medium_result):
        report = eku_mismatch_report(medium_result.enriched)
        for fp in report.client_violations:
            profile = medium_result.enriched.profiles[fp]
            assert profile.used_as_client
            assert not profile.record.allows_client_auth

    def test_ordinary_clients_do_not_violate(self, medium_result):
        report = eku_mismatch_report(medium_result.enriched)
        for profile in medium_result.enriched.profiles.values():
            record = profile.record
            if record.eku and "clientAuth" in record.eku and profile.used_as_client:
                assert record.fingerprint not in report.client_violations

    def test_render(self, medium_result):
        text = render_eku_mismatch(eku_mismatch_report(medium_result.enriched)).render()
        assert "clientAuth" in text
