"""Supervised shard execution: retries, timeouts, quarantine, resume.

Every failure is planted deterministically with a
:class:`~repro.netsim.faults.WorkerFaultPlan`, so the assertions are
exact: retry counts, quarantine membership, and — the headline property
— that degraded and resumed campaigns produce tables byte-identical to
clean runs over the same surviving months.
"""

import json

import pytest

from repro.core.enrich import InterceptionScan
from repro.core.parallel import ShardExecutor, ShardSpec, analyze_directory
from repro.core.report import render_run_health
from repro.core.supervisor import (
    CampaignDegradedError,
    DegradePolicy,
    RetryPolicy,
    RunHealth,
    ShardState,
)
from repro.netsim import (
    ScenarioConfig,
    SimulatedWorkerCrash,
    TrafficGenerator,
    TransientWorkerFault,
    WorkerFaultPlan,
)
from repro.zeek.files import discover_shards, write_rotated_logs

pytestmark = pytest.mark.usefixtures("supervision_watchdog")

#: Process-spawning fault-injection classes below carry these marks;
#: the default tier-1 run (`-m "not slow"`) skips them, the CI
#: full-matrix job runs everything.
CHAOS = [pytest.mark.slow, pytest.mark.chaos]

_SCENARIO = ScenarioConfig(months=4, connections_per_month=150, seed=29)

#: No backoff sleeping in tests; quarantine after the second attempt.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(_SCENARIO).generate()


@pytest.fixture(scope="module")
def archive(simulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("supervised")
    write_rotated_logs(simulation.logs, directory)
    return directory


@pytest.fixture(scope="module")
def months(archive):
    return [month for month, _, _ in discover_shards(archive)]


@pytest.fixture(scope="module")
def clean_campaign(archive, simulation):
    return analyze_directory(
        archive, simulation.trust_bundle, simulation.ct_log, jobs=2
    )


@pytest.fixture(scope="module")
def clean_tables(clean_campaign):
    return [t.render() for t in clean_campaign.tables()]


def _run(archive, simulation, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return analyze_directory(
        archive, simulation.trust_bundle, simulation.ct_log, **kwargs
    )


def _restricted_tables(archive, simulation, excluded: str):
    """A clean run over every shard except ``excluded``."""
    specs = [
        ShardSpec.from_discovery(t)
        for t in discover_shards(archive)
        if t[0] != excluded
    ]
    executor = ShardExecutor(simulation.trust_bundle, simulation.ct_log, jobs=2)
    return [t.render() for t in executor.run(specs).tables()]


class TestPolicies:
    def test_retry_backoff_schedule(self):
        retry = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert retry.delay(1) == 0.0
        assert retry.delay(2) == pytest.approx(0.1)
        assert retry.delay(3) == pytest.approx(0.2)
        assert retry.delay(5) == pytest.approx(0.3)  # capped

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=-1.0)

    def test_degrade_policy_coerce(self):
        assert DegradePolicy.coerce("partial") is DegradePolicy.PARTIAL
        assert DegradePolicy.coerce(DegradePolicy.STRICT) is DegradePolicy.STRICT
        with pytest.raises(ValueError, match="unknown degrade policy"):
            DegradePolicy.coerce("lenient")


class TestWorkerFaultPlan:
    def test_transient_budget(self):
        plan = WorkerFaultPlan(transient_failures=(("2022-05", 2),))
        assert plan.transient_budget("2022-05") == 2
        assert plan.transient_budget("2022-06") == 0

    def test_transient_fires_then_clears(self):
        plan = WorkerFaultPlan(transient_failures=(("m", 1),))
        with pytest.raises(TransientWorkerFault):
            plan.apply("m", "scan", attempt=1)
        plan.apply("m", "scan", attempt=2)  # attempt 2 succeeds

    def test_inline_crash_is_simulated(self):
        plan = WorkerFaultPlan(crash_months=("m",))
        with pytest.raises(SimulatedWorkerCrash):
            plan.apply("m", "scan", attempt=1, inline=True)

    def test_phase_restriction(self):
        plan = WorkerFaultPlan(crash_months=("m",), phase="analyze")
        plan.apply("m", "scan", attempt=1, inline=True)  # no fault
        with pytest.raises(SimulatedWorkerCrash):
            plan.apply("m", "analyze", attempt=1, inline=True)


class TestTransientFailures:
    pytestmark = CHAOS

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retried_to_success(self, archive, simulation, months, clean_tables, jobs):
        plan = WorkerFaultPlan(transient_failures=((months[1], 1),))
        campaign = _run(
            archive, simulation, jobs=jobs, fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        )
        assert [t.render() for t in campaign.tables()] == clean_tables
        health = campaign.health
        assert health.coverage == 1.0
        assert not health.quarantined_months
        # One failed-then-retried attempt per phase.
        assert health.shards[months[1]].retries == 2
        assert health.total_retries == 2
        assert not health.clean

    def test_exhausted_budget_quarantines(self, archive, simulation, months):
        plan = WorkerFaultPlan(transient_failures=((months[0], 5),))
        campaign = _run(
            archive, simulation, jobs=1, fault_plan=plan, degrade="partial"
        )
        assert campaign.health.quarantined_months == (months[0],)
        shard = campaign.health.shards[months[0]]
        assert shard.state is ShardState.QUARANTINED
        assert shard.attempts == FAST_RETRY.max_attempts
        assert any("TransientWorkerFault" in f for f in shard.failures)


class TestCrashFaults:
    pytestmark = CHAOS

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_partial_completes_from_survivors(
        self, archive, simulation, months, jobs
    ):
        """The acceptance property: one poison shard, PARTIAL policy,
        and the surviving months' tables are byte-identical to a clean
        run restricted to those months."""
        poison = months[2]
        plan = WorkerFaultPlan(crash_months=(poison,))
        campaign = _run(
            archive, simulation, jobs=jobs, fault_plan=plan, degrade="partial"
        )
        assert campaign.health.quarantined_months == (poison,)
        assert campaign.months == tuple(m for m in months if m != poison)
        assert campaign.health.coverage == pytest.approx(3 / 4)
        assert [t.render() for t in campaign.tables()] == _restricted_tables(
            archive, simulation, poison
        )

    def test_strict_raises(self, archive, simulation, months):
        plan = WorkerFaultPlan(crash_months=(months[1],))
        with pytest.raises(CampaignDegradedError) as excinfo:
            _run(archive, simulation, jobs=2, fault_plan=plan)
        assert excinfo.value.key == months[1]
        assert excinfo.value.phase == "scan"
        assert months[1] in str(excinfo.value)

    def test_analyze_phase_crash_quarantines(self, archive, simulation, months):
        plan = WorkerFaultPlan(crash_months=(months[0],), phase="analyze")
        campaign = _run(
            archive, simulation, jobs=2, fault_plan=plan, degrade="partial"
        )
        assert campaign.health.quarantined_months == (months[0],)
        assert any(
            f.startswith("analyze:")
            for f in campaign.health.shards[months[0]].failures
        )
        # The scan still contributed to the global interception report.
        assert campaign.health.shards[months[0]].attempts >= 3

    def test_worker_crash_reports_exit_code(self, archive, simulation, months):
        plan = WorkerFaultPlan(crash_months=(months[0],))
        campaign = _run(
            archive, simulation, jobs=2, fault_plan=plan, degrade="partial"
        )
        failures = campaign.health.shards[months[0]].failures
        assert any("worker crashed" in f and "137" in f for f in failures)


class TestHangFaults:
    pytestmark = CHAOS

    def test_hung_worker_killed_on_timeout(self, archive, simulation, months):
        plan = WorkerFaultPlan(hang_months=(months[0],), hang_seconds=30.0)
        campaign = _run(
            archive, simulation, jobs=2, fault_plan=plan, degrade="partial",
            retry=RetryPolicy(max_attempts=2, timeout=0.75, backoff_base=0.0),
        )
        assert campaign.health.quarantined_months == (months[0],)
        failures = campaign.health.shards[months[0]].failures
        assert any("timeout" in f for f in failures)

    def test_inline_timeout_enforced_post_hoc(self, archive, simulation, months):
        plan = WorkerFaultPlan(hang_months=(months[0],), hang_seconds=0.2)
        campaign = _run(
            archive, simulation, jobs=1, fault_plan=plan, degrade="partial",
            retry=RetryPolicy(max_attempts=2, timeout=0.05, backoff_base=0.0),
        )
        assert months[0] in campaign.health.quarantined_months


class TestResume:
    pytestmark = CHAOS

    def test_resume_after_strict_abort_is_byte_identical(
        self, archive, simulation, months, clean_tables, tmp_path
    ):
        """Simulated parent kill: a strict abort leaves spilled shards
        behind; the rerun reuses them and matches an uninterrupted run."""
        run_dir = tmp_path / "run"
        plan = WorkerFaultPlan(crash_months=(months[3],))
        with pytest.raises(CampaignDegradedError):
            _run(
                archive, simulation, jobs=2, fault_plan=plan,
                resume_dir=run_dir,
            )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        spilled = set(manifest["scans"])
        assert spilled  # at least one shard finished before the abort
        assert months[3] not in spilled

        campaign = _run(archive, simulation, jobs=2, resume_dir=run_dir)
        assert [t.render() for t in campaign.tables()] == clean_tables
        assert campaign.health.coverage == 1.0
        for month in spilled:
            assert "scan" in campaign.health.shards[month].resumed_phases

    def test_second_resume_runs_nothing(
        self, archive, simulation, months, clean_tables, tmp_path
    ):
        run_dir = tmp_path / "run"
        _run(archive, simulation, jobs=2, resume_dir=run_dir)
        campaign = _run(archive, simulation, jobs=1, resume_dir=run_dir)
        assert set(campaign.health.resumed_months) == set(months)
        for month in months:
            shard = campaign.health.shards[month]
            assert shard.state is ShardState.RESUMED
            assert shard.attempts == 0
        assert [t.render() for t in campaign.tables()] == clean_tables

    def test_quarantined_month_retried_on_resume(
        self, archive, simulation, months, clean_tables, tmp_path
    ):
        """A month poisoned in run 1 is not poisoned forever: the resumed
        run re-attempts it (the manifest only records successes) and the
        campaign converges to the uninterrupted tables."""
        run_dir = tmp_path / "run"
        plan = WorkerFaultPlan(crash_months=(months[1],))
        degraded = _run(
            archive, simulation, jobs=2, fault_plan=plan, degrade="partial",
            resume_dir=run_dir,
        )
        assert degraded.health.quarantined_months == (months[1],)
        campaign = _run(archive, simulation, jobs=2, resume_dir=run_dir)
        assert campaign.health.coverage == 1.0
        assert [t.render() for t in campaign.tables()] == clean_tables

    def test_metrics_survive_resume(
        self, archive, simulation, months, tmp_path
    ):
        """Metrics ride the manifest spills: a crashed-then-resumed
        campaign merges to exactly the pipeline counters of an
        uninterrupted run (supervisor bookkeeping excluded — the resumed
        run legitimately records the extra attempts and resumes)."""
        def pipeline_counters(campaign):
            return {
                name: value
                for name, value in
                campaign.metrics.state_dict()["counters"].items()
                if not name.startswith("supervisor.")
            }

        uninterrupted = _run(archive, simulation, jobs=2)
        run_dir = tmp_path / "run"
        plan = WorkerFaultPlan(crash_months=(months[3],))
        with pytest.raises(CampaignDegradedError):
            _run(
                archive, simulation, jobs=2, fault_plan=plan,
                resume_dir=run_dir,
            )
        resumed = _run(archive, simulation, jobs=2, resume_dir=run_dir)
        assert any(  # spilled scans were actually reused
            shard.resumed_phases for shard in resumed.health.shards.values()
        )
        counters = pipeline_counters(resumed)
        assert counters == pipeline_counters(uninterrupted)
        assert counters["ingest.ssl.rows_ok"] == len(simulation.logs.ssl)
        assert counters["ingest.x509.rows_ok"] == len(simulation.logs.x509)

    def test_manifest_rejects_different_campaign(
        self, archive, simulation, tmp_path
    ):
        run_dir = tmp_path / "run"
        _run(archive, simulation, jobs=1, resume_dir=run_dir)
        with pytest.raises(ValueError, match="different campaign"):
            analyze_directory(
                archive, simulation.trust_bundle, simulation.ct_log,
                jobs=1, min_interception_domains=9, resume_dir=run_dir,
            )

    def test_torn_spill_is_rerun_not_fatal(
        self, archive, simulation, months, clean_tables, tmp_path
    ):
        run_dir = tmp_path / "run"
        _run(archive, simulation, jobs=1, resume_dir=run_dir)
        (run_dir / f"scan.{months[0]}.pkl").write_bytes(b"torn write")
        campaign = _run(archive, simulation, jobs=1, resume_dir=run_dir)
        assert campaign.health.coverage == 1.0
        assert [t.render() for t in campaign.tables()] == clean_tables
        # The torn scan was re-run, not resumed.
        assert "scan" not in campaign.health.shards[months[0]].resumed_phases


class TestRunHealthReport:
    pytestmark = CHAOS

    def test_clean_health(self, clean_campaign):
        health = clean_campaign.health
        assert health.clean
        assert health.coverage == 1.0
        assert health.total_retries == 0
        rendered = render_run_health(health).render()
        assert "Coverage (%)" in rendered
        assert "100.00" in rendered
        assert "clean run" in rendered

    def test_degraded_health_table_names_month(
        self, archive, simulation, months
    ):
        plan = WorkerFaultPlan(crash_months=(months[2],))
        campaign = _run(
            archive, simulation, jobs=1, fault_plan=plan, degrade="partial"
        )
        rendered = render_run_health(campaign.health).render()
        assert months[2] in rendered
        assert "quarantined" in rendered
        assert "75.00" in rendered
        assert "degraded coverage" in rendered

    def test_summary_line(self, archive, simulation, months):
        plan = WorkerFaultPlan(crash_months=(months[0],))
        campaign = _run(
            archive, simulation, jobs=1, fault_plan=plan, degrade="partial"
        )
        summary = campaign.health.summary()
        assert "3/4 months completed" in summary
        assert months[0] in summary

    def test_empty_health_is_full_coverage(self):
        assert RunHealth().coverage == 1.0
        assert RunHealth().clean
