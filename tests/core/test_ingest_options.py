"""IngestOptions / RecordSource API: shims, warnings, and coercion."""

import io
import warnings

import pytest

from repro.core.parallel import ShardExecutor, analyze_directory
from repro.core.streaming import StreamingAnalyzer
from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    ErrorPolicy,
    FastPath,
    IngestOptions,
    IngestReport,
    RecordSource,
    read_ssl_log,
    ssl_log_to_string,
)
from repro.zeek.files import TsvDirectorySource


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(seed=3, months=2, connections_per_month=60)
    ).generate()


@pytest.fixture(scope="module")
def ssl_text(simulation):
    return ssl_log_to_string(simulation.logs.ssl)


class TestIngestOptions:
    def test_coerces_strings(self):
        options = IngestOptions(on_error="skip", fast_path="off")
        assert options.on_error is ErrorPolicy.SKIP
        assert options.fast_path is FastPath.OFF

    def test_for_path_keeps_policies(self):
        report = IngestReport()
        base = IngestOptions(on_error="quarantine")
        derived = base.for_path("ssl.log", report)
        assert derived.on_error is ErrorPolicy.QUARANTINE
        assert derived.path == "ssl.log"
        assert derived.report is report

    def test_identity_excludes_fast_path(self):
        fast = IngestOptions(fast_path="on")
        slow = IngestOptions(fast_path="off")
        assert fast.identity() == slow.identity()
        assert IngestOptions(on_error="skip").identity() != fast.identity()

    def test_sources_satisfy_protocol(self, tmp_path, simulation):
        from repro.zeek.files import write_rotated_logs

        write_rotated_logs(simulation.logs, tmp_path)
        assert isinstance(TsvDirectorySource(tmp_path), RecordSource)


class TestReaderShims:
    def test_legacy_kwargs_warn_and_match(self, ssl_text):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = read_ssl_log(io.StringIO(ssl_text), on_error="skip")
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "read_ssl_log" in str(w.message)
            for w in caught
        )
        current = read_ssl_log(
            io.StringIO(ssl_text), IngestOptions(on_error="skip")
        )
        assert legacy == current

    def test_options_path_is_silent(self, ssl_text):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            read_ssl_log(io.StringIO(ssl_text), IngestOptions())

    def test_mixing_options_and_kwargs_rejected(self, ssl_text):
        with pytest.raises(TypeError, match="not both"):
            read_ssl_log(
                io.StringIO(ssl_text), IngestOptions(), on_error="skip"
            )


class TestPipelineShims:
    def test_streaming_analyzer_fast_path_kwarg_warns(self, simulation):
        with pytest.deprecated_call(match="StreamingAnalyzer"):
            analyzer = StreamingAnalyzer(
                simulation.trust_bundle, fast_path="off"
            )
        assert analyzer.fast_path is FastPath.OFF

    def test_campus_study_on_error_kwarg_warns(self):
        with pytest.deprecated_call(match="CampusStudy"):
            study = CampusStudy(
                seed=1, months=1, connections_per_month=10, on_error="skip"
            )
        assert study.options.on_error is ErrorPolicy.SKIP

    def test_shard_executor_kwarg_warns(self, simulation):
        with pytest.deprecated_call(match="ShardExecutor"):
            executor = ShardExecutor(
                simulation.trust_bundle, on_error="quarantine"
            )
        assert executor.config.on_error is ErrorPolicy.QUARANTINE


class TestAnalyzeDirectorySignature:
    def test_positional_bundle_warns(self, simulation, tmp_path):
        from repro.zeek.files import write_rotated_logs

        write_rotated_logs(simulation.logs, tmp_path)
        with pytest.deprecated_call(match="positional bundle"):
            legacy = analyze_directory(tmp_path, simulation.trust_bundle)
        current = analyze_directory(tmp_path, bundle=simulation.trust_bundle)
        assert {n: str(p.finalize()) for n, p in legacy.partials.items()} == \
            {n: str(p.finalize()) for n, p in current.partials.items()}

    def test_bundle_required(self, tmp_path):
        with pytest.raises(TypeError, match="bundle"):
            analyze_directory(tmp_path)

    def test_too_many_positionals_rejected(self, simulation, tmp_path):
        with pytest.raises(TypeError, match="positional"):
            analyze_directory(
                tmp_path, simulation.trust_bundle, simulation.ct_log, object()
            )

    def test_duplicated_positional_and_keyword_rejected(
        self, simulation, tmp_path
    ):
        with pytest.raises(TypeError, match="bundle"):
            analyze_directory(
                tmp_path, simulation.trust_bundle,
                bundle=simulation.trust_bundle,
            )
