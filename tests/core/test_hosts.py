"""Tests for the per-host certificate inventory."""

import pytest

from repro.core.hosts import host_inventory, render_host_inventory


class TestHostInventory:
    def test_maps_are_inverses(self, medium_result):
        inventory = host_inventory(medium_result.enriched)
        for host, fingerprints in inventory.certs_by_host.items():
            for fingerprint in fingerprints:
                assert host in inventory.hosts_by_cert[fingerprint]
        for fingerprint, hosts in inventory.hosts_by_cert.items():
            for host in hosts:
                assert fingerprint in inventory.certs_by_host[host]

    def test_counts_positive(self, medium_result):
        inventory = host_inventory(medium_result.enriched)
        assert inventory.host_count > 0
        assert inventory.certificate_count > 0

    def test_churny_hosts_detected(self, medium_result):
        """Renewing sites / Globus churn give some hosts many certs."""
        inventory = host_inventory(medium_result.enriched)
        churny = inventory.hosts_with_many_certs(threshold=2)
        assert churny
        # Sorted busiest-first.
        counts = [count for _, count in churny]
        assert counts == sorted(counts, reverse=True)

    def test_multi_host_certs_detected(self, medium_result):
        """Table 6's dual-use certs appear on several server IPs."""
        inventory = host_inventory(medium_result.enriched)
        spread = inventory.certs_on_many_hosts(threshold=2)
        assert spread

    def test_internal_only_subset(self, medium_result):
        full = host_inventory(medium_result.enriched)
        internal = host_inventory(medium_result.enriched, internal_only=True)
        assert internal.host_count <= full.host_count
        assert set(internal.certs_by_host) <= set(full.certs_by_host)

    def test_internal_hosts_are_campus(self, medium_result):
        from repro.netsim import AddressSpace

        space = AddressSpace()
        inventory = host_inventory(medium_result.enriched, internal_only=True)
        for host in inventory.certs_by_host:
            assert space.is_internal(host)

    def test_render(self, medium_result):
        text = render_host_inventory(host_inventory(medium_result.enriched)).render()
        assert "known_certs" in text
