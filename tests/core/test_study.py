"""Tests for the CampusStudy orchestration layer."""

import pytest

from repro.core.study import CampusStudy
from repro.netsim import ScenarioConfig


class TestCampusStudy:
    def test_run_is_cached(self, small_study):
        assert small_study.run() is small_study.run()

    def test_every_table_renders(self, small_study):
        tables = small_study.all_tables()
        assert len(tables) == 24
        for table in tables:
            text = table.render()
            assert text.strip()
            assert "\n" in text

    def test_table_titles_cover_all_experiments(self, small_study):
        titles = " ".join(t.title for t in small_study.all_tables())
        for marker in (
            "Table 1", "Figure 1", "Table 2", "Table 3", "Figure 2",
            "Table 4", "§5.1.2", "Table 5", "Table 6", "Figure 3",
            "Figure 4", "Figure 5", "Table 7", "Table 8", "Table 9",
            "Table 13a", "Table 13b", "Table 14a", "Table 14b",
            "§6.1.2", "§5.1.1", "§3.3", "§3.2",
        ):
            assert marker in titles, f"missing experiment: {marker}"

    def test_interception_filter_toggle(self):
        # Needs enough traffic for each middlebox to cross the
        # 5-distinct-domains detection threshold.
        config = ScenarioConfig(months=12, connections_per_month=1200, seed=31)
        filtered = CampusStudy(config=config).run()
        unfiltered = CampusStudy(config=config, filter_interception=False).run()
        assert len(unfiltered.enriched.connections) >= len(filtered.enriched.connections)
        assert not unfiltered.enriched.interception.excluded_fingerprints
        assert filtered.enriched.interception.excluded_fingerprints

    def test_constructor_shorthand(self):
        study = CampusStudy(seed=3, months=2, connections_per_month=100)
        assert study.config.months == 2
        assert study.config.connections_per_month == 100


class TestPipelineRecoversGroundTruth:
    """Integration: the analysis must rediscover what the simulator planted."""

    def test_interception_recall_and_precision(self, medium_result):
        gt = medium_result.simulation.ground_truth
        report = medium_result.enriched.interception
        planted_orgs = gt.interception_issuer_orgs
        flagged_orgs = {
            issuer.split("O=")[-1].split(",")[0]
            for issuer in report.flagged_issuers
        }
        # Every flagged issuer is a genuine interception middlebox
        # (precision 1.0) and most middleboxes are caught.
        assert flagged_orgs <= planted_orgs
        assert len(flagged_orgs) >= len(planted_orgs) - 1
        # Excluded certs are exactly interception artifacts.
        assert report.excluded_fingerprints <= gt.interception_fingerprints

    def test_excluded_fraction_in_paper_ballpark(self, medium_result):
        fraction = medium_result.enriched.interception.excluded_fraction
        assert 0.02 < fraction < 0.20  # paper: 8.4%

    def test_planted_cohort_certs_survive_filter(self, medium_result):
        gt = medium_result.simulation.ground_truth
        analyzed = set(medium_result.enriched.profiles)
        for cohort in ("guardicore", "viptela", "extreme_outlier", "fnmt"):
            planted = gt.cohort_fingerprints.get(cohort, set())
            assert planted
            assert planted <= analyzed, f"{cohort} certs lost by the pipeline"

    def test_mutual_counts_match_ground_truth(self, medium_result):
        gt = medium_result.simulation.ground_truth
        observed_mutual = sum(1 for c in medium_result.enriched.connections if c.is_mutual)
        planted_mutual = sum(gt.monthly_visible_mutual)
        # Interception filtering only removes non-mutual connections, so
        # the mutual count survives nearly intact.
        assert abs(observed_mutual - planted_mutual) <= planted_mutual * 0.02

    def test_hidden_mutual_invisible(self, medium_result):
        """TLS 1.3 mutual connections must NOT be counted as mutual."""
        gt = medium_result.simulation.ground_truth
        assert gt.hidden_mutual_connections > 0
        for conn in medium_result.enriched.connections:
            if conn.view.ssl.version == "TLSv13":
                assert not conn.is_mutual
