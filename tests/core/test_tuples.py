"""Tests for connection tuples, the TLS 1.3 blind spot, and weak crypto."""

import pytest

from repro.core import tuples
from repro.core.dummy import weak_crypto_report, render_weak_crypto


class TestConnectionTuples:
    def test_tuples_unique(self, small_result):
        all_tuples = tuples.connection_tuples(small_result.enriched)
        assert all_tuples
        # Tuple count is bounded by mutual connection count.
        mutual = sum(1 for c in small_result.enriched.connections if c.is_mutual)
        assert len(all_tuples) <= mutual

    def test_tuples_have_four_parts(self, small_result):
        for item in tuples.connection_tuples(small_result.enriched):
            assert len(item) == 4
            client_ip, client_fp, server_ip, server_fp = item
            assert client_fp in small_result.enriched.profiles
            assert server_fp in small_result.enriched.profiles

    def test_tuples_for_fingerprints_subset(self, small_result):
        all_tuples = tuples.connection_tuples(small_result.enriched)
        some_fp = next(iter(all_tuples))[1]
        selected = tuples.tuples_for_fingerprints(small_result.enriched, {some_fp})
        assert selected
        assert selected <= all_tuples
        assert all(t[1] == some_fp or t[3] == some_fp for t in selected)

    def test_empty_fingerprints(self, small_result):
        assert tuples.tuples_for_fingerprints(small_result.enriched, set()) == set()


class TestTls13Blindspot:
    def test_shares_in_range(self, medium_result):
        blindspot = tuples.tls13_blindspot(medium_result.dataset)
        # The generator plants ~40.86% TLS 1.3 among non-mutual traffic,
        # diluted by the visible mutual slice.
        assert 0.15 < blindspot.connection_share < 0.55      # paper 40.86%
        assert 0 < blindspot.server_ip_share <= 1.0          # paper 25.35%
        assert 0 < blindspot.client_ip_share <= 1.0          # paper 32.23%

    def test_ip_counts_consistent(self, medium_result):
        blindspot = tuples.tls13_blindspot(medium_result.dataset)
        assert blindspot.tls13_server_ips <= blindspot.total_server_ips
        assert blindspot.tls13_client_ips <= blindspot.total_client_ips
        assert blindspot.tls13_connections <= blindspot.total_connections

    def test_render(self, small_result):
        blindspot = tuples.tls13_blindspot(small_result.dataset)
        text = tuples.render_tls13_blindspot(blindspot).render()
        assert "§3.3" in text and "paper" in text

    def test_empty_dataset(self):
        from repro.core.dataset import MtlsDataset

        blindspot = tuples.tls13_blindspot(MtlsDataset([], []))
        assert blindspot.connection_share == 0.0
        assert blindspot.server_ip_share == 0.0
        assert blindspot.client_ip_share == 0.0


class TestWeakCrypto:
    def test_report_on_medium_run(self, medium_result):
        report = weak_crypto_report(medium_result.enriched)
        # The generator plants v1 certs under 'Internet Widgits Pty Ltd'
        # and 1024-bit keys under 'Unspecified' probabilistically; at
        # medium scale at least one class shows up.
        assert len(report.v1_fingerprints) + len(report.weak_key_fingerprints) >= 0
        # Tuple counts only exist where certs exist.
        if not report.v1_fingerprints:
            assert report.v1_tuples == 0
        if not report.weak_key_fingerprints:
            assert report.weak_key_tuples == 0

    def test_v1_certs_are_dummy_issued(self, medium_result):
        report = weak_crypto_report(medium_result.enriched)
        for fp in report.v1_fingerprints:
            record = medium_result.enriched.profiles[fp].record
            assert record.version == 1

    def test_weak_key_threshold_configurable(self, medium_result):
        generous = weak_crypto_report(medium_result.enriched, weak_bits=4096)
        strict = weak_crypto_report(medium_result.enriched, weak_bits=512)
        assert len(generous.weak_key_fingerprints) >= len(strict.weak_key_fingerprints)

    def test_render(self, medium_result):
        text = render_weak_crypto(weak_crypto_report(medium_result.enriched)).render()
        assert "§5.1.1" in text and "1024" in text
