"""Tests for the deterministic fault-injection harness."""

import io

import pytest

from repro.netsim import (
    FaultPlan,
    LogCorruptor,
    ScenarioConfig,
    TrafficGenerator,
)
from repro.zeek import (
    ErrorPolicy,
    IngestReport,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)


@pytest.fixture(scope="module")
def logs():
    return TrafficGenerator(
        ScenarioConfig(months=3, connections_per_month=250, seed=41)
    ).generate().logs


@pytest.fixture(scope="module")
def ssl_text(logs):
    return ssl_log_to_string(logs.ssl)


@pytest.fixture(scope="module")
def x509_text(logs):
    return x509_log_to_string(logs.x509)


def _read(text, kind, policy=ErrorPolicy.SKIP):
    report = IngestReport()
    reader = read_ssl_log if kind == "ssl" else read_x509_log
    records = reader(
        io.StringIO(text), on_error=policy, report=report, path=f"{kind}.log"
    )
    return records, report


class TestFaultPlan:
    def test_uniform_splits_rate(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        assert plan.flip_rate == pytest.approx(0.04)
        assert plan.garbage_rate == pytest.approx(0.02)
        assert plan.duplicate_rate == pytest.approx(0.02)
        assert plan.drop_x509_rate == pytest.approx(0.02)
        assert plan.reorder_columns and plan.truncate_final_record
        assert plan.drop_close

    def test_uniform_zero_is_a_noop_plan(self):
        plan = FaultPlan.uniform(0.0)
        assert not plan.reorder_columns
        assert not plan.truncate_final_record

    def test_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            FaultPlan.uniform(-0.1)

    def test_scaled(self):
        plan = FaultPlan.uniform(0.1).scaled(0.5)
        assert plan.flip_rate == pytest.approx(0.02)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown log kind"):
            LogCorruptor(FaultPlan()).corrupt("", "conn")


class TestDeterminism:
    def test_same_plan_same_output(self, ssl_text):
        plan = FaultPlan.uniform(0.08, seed=9)
        out_a, sum_a = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        out_b, sum_b = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert out_a == out_b
        assert sum_a == sum_b

    def test_call_order_independent(self, ssl_text, x509_text):
        plan = FaultPlan.uniform(0.08, seed=9)
        ssl_first, _ = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        corruptor = LogCorruptor(plan)
        corruptor.corrupt(x509_text, "x509")  # interleave another call
        ssl_second, _ = corruptor.corrupt(ssl_text, "ssl")
        assert ssl_first == ssl_second

    def test_different_seeds_differ(self, ssl_text):
        out_a, _ = LogCorruptor(FaultPlan.uniform(0.08, seed=1)).corrupt(
            ssl_text, "ssl"
        )
        out_b, _ = LogCorruptor(FaultPlan.uniform(0.08, seed=2)).corrupt(
            ssl_text, "ssl"
        )
        assert out_a != out_b


class TestIndividualFaults:
    def test_noop_plan_is_identity(self, ssl_text):
        out, summary = LogCorruptor(FaultPlan()).corrupt(ssl_text, "ssl")
        assert out == ssl_text
        assert summary.expected_reader_drops == 0

    def test_flips_drop_exactly_flipped_lines(self, ssl_text):
        plan = FaultPlan(seed=5, flip_rate=0.05)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert summary.flipped_lines > 0
        records, report = _read(out, "ssl")
        assert report.rows_dropped == summary.flipped_lines
        assert report.dropped_by_category == {"bad-field": summary.flipped_lines}

    def test_garbage_lines_always_fail_cell_count(self, ssl_text):
        plan = FaultPlan(seed=5, garbage_rate=0.05)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert summary.garbage_lines > 0
        records, report = _read(out, "ssl")
        assert report.dropped_by_category == {"cell-count": summary.garbage_lines}

    def test_duplicates_parse_fine(self, ssl_text):
        clean, _ = _read(ssl_text, "ssl")
        plan = FaultPlan(seed=5, duplicate_rate=0.1)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        records, report = _read(out, "ssl")
        assert summary.duplicated_lines > 0
        assert report.rows_dropped == 0
        assert len(records) == len(clean) + summary.duplicated_lines

    def test_x509_drops_record_dangling_fuids(self, x509_text):
        clean, _ = _read(x509_text, "x509")
        plan = FaultPlan(seed=5, drop_x509_rate=0.1)
        out, summary = LogCorruptor(plan).corrupt(x509_text, "x509")
        records, report = _read(out, "x509")
        assert summary.dropped_x509_rows > 0
        assert len(records) == len(clean) - summary.dropped_x509_rows
        assert report.rows_dropped == 0  # surviving rows are well-formed
        surviving = {r.fuid for r in records}
        assert summary.dropped_fuids
        assert not (summary.dropped_fuids & surviving)

    def test_x509_rate_ignored_for_ssl_logs(self, ssl_text):
        plan = FaultPlan(seed=5, drop_x509_rate=0.5)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert out == ssl_text
        assert summary.dropped_x509_rows == 0

    def test_reorder_is_lossless_for_lenient_reader(self, ssl_text):
        clean, _ = _read(ssl_text, "ssl")
        plan = FaultPlan(seed=5, reorder_columns=True)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert summary.reordered_columns
        assert out != ssl_text
        records, report = _read(out, "ssl")
        assert records == clean
        assert report.header_recoveries == 1
        assert report.rows_dropped == 0

    def test_truncation_cuts_exactly_one_row_and_the_tail(self, ssl_text):
        clean, _ = _read(ssl_text, "ssl")
        plan = FaultPlan(seed=5, truncate_final_record=True)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert summary.truncated_records == 1
        assert not out.endswith("\n")
        records, report = _read(out, "ssl")
        assert len(records) == len(clean) - 1
        assert report.truncated_final_lines == 1
        assert report.files_missing_close == 1  # the tail took #close with it

    def test_drop_close_only_loses_the_footer(self, ssl_text):
        clean, _ = _read(ssl_text, "ssl")
        plan = FaultPlan(seed=5, drop_close=True)
        out, summary = LogCorruptor(plan).corrupt(ssl_text, "ssl")
        assert summary.dropped_close
        assert "#close" not in out
        records, report = _read(out, "ssl")
        assert records == clean
        assert report.files_missing_close == 1
        assert report.rows_dropped == 0


class TestExactAccounting:
    """The harness's reason to exist: planted faults == reader drops."""

    @pytest.mark.parametrize("rate", [0.02, 0.05, 0.10])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_mixed_plan_accounts_exactly(self, ssl_text, x509_text, rate, seed):
        plan = FaultPlan.uniform(rate, seed=seed)
        ssl_out, x509_out, summary = LogCorruptor(plan).corrupt_logs(
            ssl_text, x509_text
        )
        report = IngestReport()
        read_ssl_log(
            io.StringIO(ssl_out), on_error=ErrorPolicy.SKIP,
            report=report, path="ssl.log",
        )
        read_x509_log(
            io.StringIO(x509_out), on_error=ErrorPolicy.SKIP,
            report=report, path="x509.log",
        )
        assert report.rows_dropped == summary.expected_reader_drops
        assert report.truncated_final_lines == summary.truncated_records == 2

    def test_merge_sums_counters(self):
        plan = FaultPlan.uniform(0.05, seed=3)
        a = LogCorruptor(plan).corrupt("", "ssl")[1]
        from repro.netsim import CorruptionSummary

        left = CorruptionSummary(
            flipped_lines=2, truncated_records=1, dropped_fuids={"A"}
        )
        right = CorruptionSummary(
            garbage_lines=3, truncated_records=1, dropped_fuids={"B"}
        )
        merged = left.merge(right)
        assert merged.expected_reader_drops == 2 + 3 + 2
        assert merged.dropped_fuids == {"A", "B"}
        assert a.expected_reader_drops == 0  # empty input: nothing planted
