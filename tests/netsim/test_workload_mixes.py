"""Statistical checks on the generator's planted marginals.

These assert, on the raw generated logs (no analysis pipeline), that the
workload mixes land near their scenario targets — the contract the
calibration in `scenario.py` promises.
"""

import ipaddress
from collections import Counter

import pytest

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.netsim.network import INTERNAL_PREFIXES


@pytest.fixture(scope="module")
def run():
    config = ScenarioConfig(months=10, connections_per_month=1500, seed=37)
    return TrafficGenerator(config).generate(), config


def _is_internal(ip: str) -> bool:
    address = ipaddress.ip_address(ip)
    return any(address in prefix for prefix in INTERNAL_PREFIXES)


class TestVersionMix:
    def test_tls13_share_near_target(self, run):
        result, config = run
        versions = Counter(r.version for r in result.logs.ssl)
        total = sum(versions.values())
        share = versions["TLSv13"] / total
        # Mutual traffic is pinned below 1.3, so the overall share sits a
        # bit under the non-mutual target.
        assert 0.25 < share < config.tls13_share + 0.05

    def test_legacy_versions_present(self, run):
        result, _ = run
        versions = {r.version for r in result.logs.ssl}
        assert {"TLSv12", "TLSv13"} <= versions
        assert versions & {"TLSv10", "TLSv11"}


class TestDirectionMix:
    def test_nonmutual_mostly_outbound(self, run):
        result, config = run
        nonmutual = [r for r in result.logs.ssl if not r.is_mutual]
        outbound = sum(1 for r in nonmutual if not _is_internal(r.id_resp_h))
        share = outbound / len(nonmutual)
        assert abs(share - config.nonmutual_outbound_fraction) < 0.10

    def test_mutual_inbound_fraction(self, run):
        result, config = run
        mutual = [r for r in result.logs.ssl if r.is_mutual]
        inbound = sum(1 for r in mutual if _is_internal(r.id_resp_h))
        share = inbound / len(mutual)
        # Cohorts skew this; the configured split must still be visible.
        assert 0.3 < share < 0.8


class TestPortMarginals:
    def test_outbound_nonmutual_port_mix(self, run):
        """The quadrant with the least cohort interference must match
        Table 2's marginals closely."""
        result, _ = run
        rows = [
            r for r in result.logs.ssl
            if not r.is_mutual and not _is_internal(r.id_resp_h)
        ]
        counts = Counter(r.id_resp_p for r in rows)
        total = sum(counts.values())
        assert counts[443] / total > 0.96            # target 99.15%
        assert counts[993] / total < 0.02

    def test_inbound_nonmutual_has_dvtel_and_unknown(self, run):
        result, _ = run
        rows = [
            r for r in result.logs.ssl
            if not r.is_mutual and _is_internal(r.id_resp_h)
        ]
        ports = {r.id_resp_p for r in rows}
        assert 33854 in ports                        # Corp. - DvTel
        assert 52730 in ports                        # Univ. - Unknown


class TestClientAddressing:
    def test_outbound_clients_internal(self, run):
        # Outbound mutual clients sit inside the campus (WebRTC peers
        # excepted — they may be on either side of the NAT), so the
        # aggregate internal share must dominate.
        result, _ = run
        outbound_mutual = [
            r for r in result.logs.ssl
            if r.is_mutual and not _is_internal(r.id_resp_h)
        ]
        internal_clients = sum(
            1 for r in outbound_mutual if _is_internal(r.id_orig_h)
        )
        assert internal_clients / len(outbound_mutual) > 0.7

    def test_ephemeral_ports(self, run):
        result, _ = run
        for record in result.logs.ssl[:500]:
            assert 1024 <= record.id_orig_p <= 65535


class TestGroundTruthConsistency:
    def test_monthly_sums(self, run):
        result, _ = run
        gt = result.ground_truth
        assert sum(gt.monthly_total) == len(result.logs.ssl)
        assert sum(gt.monthly_visible_mutual) == sum(
            1 for r in result.logs.ssl if r.is_mutual
        )

    def test_interception_certs_never_mutual(self, run):
        result, _ = run
        fake = result.ground_truth.interception_fingerprints
        fuid_to_fp = {x.fuid: x.fingerprint for x in result.logs.x509}
        for record in result.logs.ssl:
            if not record.is_mutual:
                continue
            for fuid in record.cert_chain_fuids:
                assert fuid_to_fp.get(fuid) not in fake
