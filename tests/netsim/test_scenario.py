"""Tests for the scenario configuration."""

import pytest

from repro.netsim.scenario import (
    DUMMY_ISSUER_COHORTS,
    INBOUND_ASSOCIATIONS,
    INBOUND_MUTUAL_PORTS,
    MONTH_DEC_2023,
    MONTH_NOV_2023,
    MONTH_OCT_2023,
    OUTBOUND_CLIENT_ISSUERS,
    SHARED_CERT_COHORTS,
    ScenarioConfig,
)


class TestMutualShare:
    def test_endpoints(self):
        config = ScenarioConfig()
        assert config.mutual_share(0) == pytest.approx(0.0199)
        assert config.mutual_share(22) == pytest.approx(0.0361)

    def test_monotone_outside_events(self):
        config = ScenarioConfig()
        shares = [config.mutual_share(i) for i in range(23)]
        # Outside the surge/dip window the ramp is non-decreasing.
        plain = shares[:MONTH_OCT_2023]
        assert plain == sorted(plain)

    def test_surge_and_dip(self):
        config = ScenarioConfig()
        assert config.mutual_share(MONTH_OCT_2023) > config.mutual_share(16)
        assert config.mutual_share(MONTH_NOV_2023) > config.mutual_share(16)
        assert config.mutual_share(MONTH_DEC_2023) < config.mutual_share(MONTH_NOV_2023)

    def test_short_campaign_has_no_calendar_events(self):
        config = ScenarioConfig(months=6)
        shares = [config.mutual_share(i) for i in range(6)]
        assert shares == sorted(shares)

    def test_single_month(self):
        config = ScenarioConfig(months=1)
        assert config.mutual_share(0) == pytest.approx(config.mutual_share_end)


class TestScaling:
    def test_scaled_respects_cap(self):
        config = ScenarioConfig(connections_per_month=1000, months=10)
        cap = config.cohort_client_cap
        assert config.scaled(10_000_000) == cap
        assert config.scaled(1) == 1

    def test_cap_grows_with_run_size(self):
        small = ScenarioConfig(connections_per_month=200, months=4)
        large = ScenarioConfig(connections_per_month=4000, months=23)
        assert large.cohort_client_cap > small.cohort_client_cap

    def test_campaign_mutual_estimate(self):
        config = ScenarioConfig(connections_per_month=1000, months=10)
        average = (config.mutual_share_start + config.mutual_share_end) / 2
        assert config.campaign_mutual_estimate == pytest.approx(10_000 * average)


class TestCalibrationConstants:
    def test_port_mixes_normalized(self):
        for mix in (INBOUND_MUTUAL_PORTS,):
            assert sum(mix.values()) == pytest.approx(1.0, abs=0.01)

    def test_association_shares_normalized(self):
        total = sum(row[0] for row in INBOUND_ASSOCIATIONS.values())
        assert total == pytest.approx(1.0, abs=0.01)

    def test_outbound_issuer_mix_normalized(self):
        assert sum(OUTBOUND_CLIENT_ISSUERS.values()) == pytest.approx(1.0, abs=0.01)

    def test_table4_rows_present(self):
        orgs = {c.issuer_org for c in DUMMY_ISSUER_COHORTS}
        assert orgs == {
            "Internet Widgits Pty Ltd", "Default Company Ltd",
            "Unspecified", "Acme Co",
        }

    def test_table5_rows_present(self):
        orgs = {c.issuer_org for c in SHARED_CERT_COHORTS}
        assert "Globus Online" in orgs
        assert "Outset Medical" in orgs
        assert "IdenTrust" in orgs
        public = [c for c in SHARED_CERT_COHORTS if c.issuer_public]
        assert len(public) == 5  # the gray rows of Table 5


class TestResidentialProfile:
    def test_profile_contrasts(self):
        campus = ScenarioConfig()
        home = ScenarioConfig.residential()
        assert home.mutual_share_end < campus.mutual_share_start
        assert home.tls13_share > campus.tls13_share
        assert home.interception_fraction == 0.0
        assert not home.include_misconfig_cohorts
        assert home.mutual_inbound_fraction < campus.mutual_inbound_fraction

    def test_profile_generates(self):
        from repro.netsim import TrafficGenerator

        config = ScenarioConfig.residential(months=2, connections_per_month=200)
        result = TrafficGenerator(config).generate()
        assert result.logs.ssl
        # No campus cohorts planted.
        labels = set(result.ground_truth.cohort_fingerprints)
        assert not any(label.startswith("shared:") for label in labels)


class TestEnterpriseProfile:
    def test_contrasts(self):
        campus = ScenarioConfig()
        enterprise = ScenarioConfig.enterprise()
        assert enterprise.mutual_share_start > campus.mutual_share_start
        assert enterprise.interception_fraction > campus.interception_fraction
        assert enterprise.include_misconfig_cohorts

    def test_generates_with_cohorts(self):
        from repro.netsim import TrafficGenerator

        config = ScenarioConfig.enterprise(months=2, connections_per_month=200)
        result = TrafficGenerator(config).generate()
        labels = set(result.ground_truth.cohort_fingerprints)
        assert any(label.startswith("shared:") for label in labels)
        # Higher mutual adoption than the campus default.
        gt = result.ground_truth
        share = sum(gt.monthly_visible_mutual) / sum(gt.monthly_total)
        assert share > 0.03
