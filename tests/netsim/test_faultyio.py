"""FaultyIO: the deterministic filesystem fault-injection shim, proven
against durable_write's old-state-or-new-state contract at unit scale
(the full crash matrix over real artifacts lives in tests/chaos)."""

import errno
import os

import pytest

from repro.core.durable import TMP_SUFFIX, durable_write, get_io
from repro.netsim.faults import FaultyIO, IoFault, SimulatedCrash, flip_byte


def _tmp_siblings(directory):
    return [p for p in directory.iterdir() if p.name.endswith(TMP_SUFFIX)]


class TestCrashMode:
    def test_crash_leaves_orphan_and_old_target(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        shim = FaultyIO(IoFault(op="fsync"))
        with shim.install():
            with pytest.raises(SimulatedCrash):
                durable_write(target, b"new")
        # A crash runs no cleanup: the temp survives, the target is the
        # complete old content.
        assert target.read_bytes() == b"old"
        assert len(_tmp_siblings(tmp_path)) == 1

    def test_crash_at_replace_keeps_old_target(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        shim = FaultyIO(IoFault(op="replace"))
        with shim.install():
            with pytest.raises(SimulatedCrash):
                durable_write(target, b"new")
        assert target.read_bytes() == b"old"

    def test_crash_after_replace_publishes_new(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        shim = FaultyIO(IoFault(op="fsync_dir"))
        with shim.install():
            with pytest.raises(SimulatedCrash):
                durable_write(target, b"new")
        # Crash after the rename: the *new* state is already complete.
        assert target.read_bytes() == b"new"

    def test_dead_shim_refuses_every_later_call(self, tmp_path):
        shim = FaultyIO(IoFault(op="write"))
        with shim.install():
            with pytest.raises(SimulatedCrash):
                durable_write(tmp_path / "a.bin", b"x")
            assert shim.dead
            with pytest.raises(SimulatedCrash, match="dead"):
                durable_write(tmp_path / "b.bin", b"y")

    def test_dead_close_still_releases_descriptor(self, tmp_path):
        # The kernel closes a killed process's fds; the shim mirrors
        # that — the real descriptor is released, then the crash
        # propagates so the caller's sequence cannot continue.
        shim = FaultyIO(IoFault(op="fsync"))
        with shim.install():
            with pytest.raises(SimulatedCrash):
                durable_write(tmp_path / "out.bin", b"x")
        assert not shim._open_fds

    def test_install_restores_real_io_and_closes_leaks(self, tmp_path):
        real = get_io()
        shim = FaultyIO(IoFault(op="fsync"))
        with shim.install():
            # A writer that abandons its fd after the crash (never calls
            # close) leaks it; install() tidies on exit.
            fd, _ = shim.mkstemp(tmp_path, "leak.")
            assert fd in shim._open_fds
        assert get_io() is real
        assert not shim._open_fds
        with pytest.raises(OSError):
            os.fstat(fd)


class TestTornWrite:
    def test_after_bytes_leaves_exact_prefix(self, tmp_path):
        payload = bytes(range(100))
        shim = FaultyIO(IoFault(op="write", after_bytes=10))
        with shim.install():
            with pytest.raises(SimulatedCrash, match="torn at byte 10"):
                durable_write(tmp_path / "out.bin", payload)
        (orphan,) = _tmp_siblings(tmp_path)
        assert orphan.read_bytes() == payload[:10]
        assert not (tmp_path / "out.bin").exists()

    def test_after_bytes_lets_small_writes_through(self, tmp_path):
        # The fault watches cumulative bytes per file: a write that stays
        # under the threshold passes untouched and the shim keeps
        # watching the same file.
        shim = FaultyIO(IoFault(op="write", after_bytes=1000))
        with shim.install():
            durable_write(tmp_path / "out.bin", b"tiny")
        assert (tmp_path / "out.bin").read_bytes() == b"tiny"
        assert not shim.fired


class TestSurvivableModes:
    @pytest.mark.parametrize(
        "mode,code", [("enospc", errno.ENOSPC), ("eio", errno.EIO)]
    )
    def test_errno_faults_clean_abort(self, tmp_path, mode, code):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        shim = FaultyIO(IoFault(op="write", mode=mode))
        with shim.install():
            with pytest.raises(OSError) as excinfo:
                durable_write(target, b"new")
            assert excinfo.value.errno == code
            assert not shim.dead
            # Survivable: cleanup ran — no orphan, target untouched —
            # and the shim stays alive so a retry succeeds.
            assert target.read_bytes() == b"old"
            assert _tmp_siblings(tmp_path) == []
            durable_write(target, b"new")
        assert target.read_bytes() == b"new"

    def test_enospc_after_bytes(self, tmp_path):
        shim = FaultyIO(IoFault(op="write", mode="enospc", after_bytes=8))
        with shim.install():
            with pytest.raises(OSError) as excinfo:
                durable_write(tmp_path / "out.bin", b"z" * 64)
            assert excinfo.value.errno == errno.ENOSPC
        assert _tmp_siblings(tmp_path) == []

    def test_flip_is_silent_and_deterministic(self, tmp_path):
        payload = b"q" * 256
        out = []
        for attempt in range(2):
            target = tmp_path / f"out{attempt}.bin"
            with FaultyIO(IoFault(op="write", mode="flip"), seed=7).install():
                durable_write(target, payload)
            out.append(target.read_bytes())
        assert out[0] == out[1]  # same seed, same corruption
        diff = [i for i in range(len(payload)) if out[0][i] != payload[i]]
        assert len(diff) == 1
        assert out[0][diff[0]] == payload[diff[0]] ^ 0xFF

    def test_short_write_tolerated_by_loop(self, tmp_path):
        # durable_write's write loop must absorb a short count.
        target = tmp_path / "out.bin"
        payload = bytes(range(256)) * 4
        with FaultyIO(IoFault(op="write", mode="short")).install():
            durable_write(target, payload)
        assert target.read_bytes() == payload


class TestTargeting:
    def test_index_selects_ordinal(self, tmp_path):
        shim = FaultyIO(IoFault(op="replace", index=1))
        with shim.install():
            durable_write(tmp_path / "a.bin", b"a")  # replace #0: passes
            with pytest.raises(SimulatedCrash):
                durable_write(tmp_path / "b.bin", b"b")  # replace #1
        assert (tmp_path / "a.bin").read_bytes() == b"a"
        assert not (tmp_path / "b.bin").exists()

    def test_path_substring_filter(self, tmp_path):
        shim = FaultyIO(IoFault(op="replace", path="manifest.json"))
        with shim.install():
            durable_write(tmp_path / "data.col", b"col")
            with pytest.raises(SimulatedCrash):
                durable_write(tmp_path / "manifest.json", b"{}")
        assert (tmp_path / "data.col").read_bytes() == b"col"
        assert not (tmp_path / "manifest.json").exists()


class TestFlipByte:
    def test_deterministic_offset_past_framing(self, tmp_path):
        blob = bytes(range(256))
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(blob)
        b.write_bytes(blob)
        off_a = flip_byte(a, seed=3)
        off_b = flip_byte(b, seed=3)
        assert off_a == off_b >= 16
        assert a.read_bytes() == b.read_bytes() != blob

    def test_explicit_offset(self, tmp_path):
        target = tmp_path / "a.bin"
        target.write_bytes(b"\x00" * 32)
        assert flip_byte(target, 5) == 5
        assert target.read_bytes()[5] == 0xFF

    def test_empty_file_rejected(self, tmp_path):
        target = tmp_path / "empty.bin"
        target.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            flip_byte(target)
