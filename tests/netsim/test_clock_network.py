"""Tests for the campaign clock, address space, and CT log."""

import datetime as dt
import random

import pytest

from repro.netsim import AddressSpace, CampaignClock, CtLog
from repro.netsim.clock import CAMPAIGN_MONTHS, CAMPAIGN_START
from repro.netsim.network import subnet24
from repro.x509 import CertificateAuthority, KeyFactory, Name

UTC = dt.timezone.utc


class TestCampaignClock:
    def test_default_window(self):
        clock = CampaignClock()
        assert clock.start == CAMPAIGN_START
        assert clock.months == CAMPAIGN_MONTHS
        months = list(clock)
        assert months[0].label == "2022-05"
        assert months[-1].label == "2024-03"
        assert len(months) == 23

    def test_month_boundaries(self):
        clock = CampaignClock()
        feb = next(m for m in clock if m.label == "2024-02")
        assert feb.days == 29  # 2024 is a leap year

    def test_year_rollover(self):
        clock = CampaignClock()
        assert clock.month(7).label == "2022-12"
        assert clock.month(8).label == "2023-01"

    def test_out_of_range(self):
        clock = CampaignClock(months=3)
        with pytest.raises(IndexError):
            clock.month(3)
        with pytest.raises(ValueError):
            CampaignClock(months=0)

    def test_sample_instant_within_month(self):
        clock = CampaignClock()
        rng = random.Random(1)
        window = clock.month(5)
        for _ in range(50):
            instant = window.sample_instant(rng)
            assert window.start <= instant < window.end

    def test_month_of(self):
        clock = CampaignClock()
        assert clock.month_of(dt.datetime(2022, 5, 15, tzinfo=UTC)) == 0
        assert clock.month_of(dt.datetime(2024, 3, 31, tzinfo=UTC)) == 22
        assert clock.month_of(dt.datetime(2020, 1, 1, tzinfo=UTC)) is None


class TestAddressSpace:
    def test_internal_external_disjoint(self):
        space = AddressSpace(seed=1)
        internal = space.internal_ip("server-a")
        external = space.external_ip("site-b")
        assert space.is_internal(internal)
        assert not space.is_internal(external)

    def test_stable_assignment(self):
        space = AddressSpace(seed=1)
        assert space.internal_ip("x") == space.internal_ip("x")
        assert space.external_ip("y") == space.external_ip("y")

    def test_distinct_keys_distinct_ips(self):
        space = AddressSpace(seed=1)
        ips = {space.internal_ip(f"host-{i}") for i in range(100)}
        assert len(ips) == 100

    def test_prefix_selection(self):
        space = AddressSpace(seed=1)
        health = space.internal_ip("records", prefix_index=1)
        assert health.startswith("10.32.")

    def test_ephemeral_port_range(self):
        space = AddressSpace(seed=1)
        for _ in range(100):
            assert 32768 <= space.ephemeral_port() <= 60999

    def test_subnet24(self):
        assert subnet24("10.16.3.77") == "10.16.3.0/24"
        assert subnet24("198.18.0.200") == "198.18.0.0/24"


class TestCtLog:
    @pytest.fixture()
    def ca(self):
        return CertificateAuthority.create_root(
            Name.build(common_name="CT Test CA", organization="CT Org"),
            KeyFactory(mode="sim", seed=4),
        )

    def test_submit_and_lookup(self, ca):
        ct = CtLog()
        cert, _ = ca.issue(
            Name.build(common_name="example.com"),
            now=dt.datetime(2023, 1, 1, tzinfo=UTC),
        )
        ct.submit("example.com", cert)
        assert ct.knows_domain("EXAMPLE.COM")
        assert ct.issuers_for("example.com") == [ca.name.rfc4514()]
        assert ct.has_issuer("example.com", ca.name.rfc4514())
        assert len(ct) == 1

    def test_unknown_domain(self):
        ct = CtLog()
        assert not ct.knows_domain("nope.example")
        assert ct.issuers_for("nope.example") == []

    def test_multiple_issuers_deduped(self, ca):
        ct = CtLog()
        now = dt.datetime(2023, 1, 1, tzinfo=UTC)
        first, _ = ca.issue(Name.build(common_name="example.com"), now=now)
        second, _ = ca.issue(Name.build(common_name="example.com"), now=now)
        ct.submit("example.com", first)
        ct.submit("example.com", second)
        assert len(ct.issuers_for("example.com")) == 1
        assert len(ct) == 2
