"""Tests for the traffic generator (small-scale runs)."""

import pytest

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.tls.versions import TlsVersion


@pytest.fixture(scope="module")
def small_result():
    config = ScenarioConfig(months=4, connections_per_month=400, seed=11)
    return TrafficGenerator(config).generate()


class TestGeneratorBasics:
    def test_monthly_totals_recorded(self, small_result):
        gt = small_result.ground_truth
        assert len(gt.monthly_total) == 4
        assert all(total > 0 for total in gt.monthly_total)
        assert sum(gt.monthly_total) == len(small_result.logs.ssl)

    def test_all_connections_established(self, small_result):
        assert all(r.established for r in small_result.logs.ssl)

    def test_deterministic(self):
        config = ScenarioConfig(months=2, connections_per_month=150, seed=3)
        first = TrafficGenerator(config).generate()
        second = TrafficGenerator(config).generate()
        assert len(first.logs.ssl) == len(second.logs.ssl)
        assert [r.uid for r in first.logs.ssl] == [r.uid for r in second.logs.ssl]
        assert [r.fingerprint for r in first.logs.x509] == [
            r.fingerprint for r in second.logs.x509
        ]

    def test_different_seeds_differ(self):
        a = TrafficGenerator(ScenarioConfig(months=2, connections_per_month=150, seed=1)).generate()
        b = TrafficGenerator(ScenarioConfig(months=2, connections_per_month=150, seed=2)).generate()
        assert {r.fingerprint for r in a.logs.x509} != {r.fingerprint for r in b.logs.x509}

    def test_timestamps_ordered_within_month(self, small_result):
        records = small_result.logs.ssl
        months = [small_result.clock.month_of(r.ts) for r in records]
        assert months == sorted(m for m in months)


class TestTlsVisibility:
    def test_tls13_records_have_no_chains(self, small_result):
        for record in small_result.logs.ssl:
            if record.version == "TLSv13":
                assert record.cert_chain_fuids == ()
                assert record.client_cert_chain_fuids == ()

    def test_tls13_present_in_traffic(self, small_result):
        versions = {r.version for r in small_result.logs.ssl}
        assert "TLSv13" in versions and "TLSv12" in versions

    def test_hidden_mutual_counted(self, small_result):
        assert small_result.ground_truth.hidden_mutual_connections > 0


class TestPlantedCohorts:
    def test_cohort_certs_appear_in_logs(self, small_result):
        logged = {r.fingerprint for r in small_result.logs.x509}
        gt = small_result.ground_truth
        for cohort in ("guardicore", "viptela", "extreme_outlier", "fnmt"):
            planted = gt.cohort_fingerprints.get(cohort, set())
            assert planted, f"cohort {cohort} planted nothing"
            assert planted <= logged, f"cohort {cohort} certs missing from x509 log"

    def test_globus_serial_collisions_planted(self, small_result):
        gt = small_result.ground_truth
        globus_labels = [k for k in gt.cohort_fingerprints if "Globus Online" in k]
        assert globus_labels
        by_fp = {r.fingerprint: r for r in small_result.logs.x509}
        serials = {
            by_fp[fp].serial
            for label in globus_labels
            for fp in gt.cohort_fingerprints[label]
            if fp in by_fp
        }
        assert serials == {"00"}

    def test_guardicore_serials(self, small_result):
        gt = small_result.ground_truth
        by_fp = {r.fingerprint: r for r in small_result.logs.x509}
        serials = {
            by_fp[fp].serial
            for fp in gt.cohort_fingerprints["guardicore"]
            if fp in by_fp
        }
        assert serials == {"01", "03E8"}

    def test_incorrect_date_cohorts_inverted(self, small_result):
        gt = small_result.ground_truth
        by_fp = {r.fingerprint: r for r in small_result.logs.x509}
        labels = [k for k in gt.cohort_fingerprints if k.startswith("incorrect:")]
        assert labels
        inverted = 0
        for label in labels:
            for fp in gt.cohort_fingerprints[label]:
                record = by_fp.get(fp)
                if record is not None and record.not_valid_before > record.not_valid_after:
                    inverted += 1
        assert inverted > 0

    def test_shared_cert_same_fuid_both_sides(self, small_result):
        shared_labels = {
            label
            for label in small_result.ground_truth.cohort_fingerprints
            if label.startswith("shared:")
        }
        assert shared_labels
        found = 0
        for record in small_result.logs.ssl:
            if (
                record.cert_chain_fuids
                and record.cert_chain_fuids == record.client_cert_chain_fuids
            ):
                found += 1
        assert found > 0

    def test_interception_certs_logged(self, small_result):
        gt = small_result.ground_truth
        assert gt.interception_fingerprints
        logged = {r.fingerprint for r in small_result.logs.x509}
        assert gt.interception_fingerprints & logged

    def test_tunneling_connections(self, small_result):
        gt = small_result.ground_truth
        assert gt.tunneling_connections > 0
        tunneling = [
            r for r in small_result.logs.ssl
            if r.client_cert_chain_fuids and not r.cert_chain_fuids
            and r.version != "TLSv13"
        ]
        assert len(tunneling) >= gt.tunneling_connections * 0.9

    def test_expired_apple_cluster(self, small_result):
        gt = small_result.ground_truth
        apple = gt.cohort_fingerprints.get("expired_public:Apple", set())
        microsoft = gt.cohort_fingerprints.get("expired_public:Microsoft", set())
        assert len(apple) >= 8
        assert len(microsoft) == 2
        by_fp = {r.fingerprint: r for r in small_result.logs.x509}
        for fp in apple:
            record = by_fp.get(fp)
            if record is not None:
                assert record.not_valid_after < small_result.clock.start

    def test_cohorts_can_be_disabled(self):
        config = ScenarioConfig(
            months=2, connections_per_month=150, seed=4,
            include_misconfig_cohorts=False,
        )
        result = TrafficGenerator(config).generate()
        labels = set(result.ground_truth.cohort_fingerprints)
        assert not any(label.startswith("shared:") for label in labels)
        assert "guardicore" not in labels


@pytest.fixture(scope="module")
def calibration_result():
    config = ScenarioConfig(months=6, connections_per_month=1500, seed=8)
    return TrafficGenerator(config).generate(), config


class TestMutualCalibration:
    def test_mutual_share_close_to_target(self, calibration_result):
        result, config = calibration_result
        gt = result.ground_truth
        for index, (mutual, total) in enumerate(
            zip(gt.monthly_visible_mutual, gt.monthly_total)
        ):
            target = config.mutual_share(index)
            assert abs(mutual / total - target) < 0.02

    def test_port_mix_mutual_inbound(self, calibration_result):
        import ipaddress

        from repro.netsim.network import INTERNAL_PREFIXES

        result, _config = calibration_result

        def is_internal(ip):
            address = ipaddress.ip_address(ip)
            return any(address in p for p in INTERNAL_PREFIXES)

        inbound_mutual = [
            r for r in result.logs.ssl
            if r.is_mutual and is_internal(r.id_resp_h)
        ]
        assert inbound_mutual
        https = sum(1 for r in inbound_mutual if r.id_resp_p in (443, 8443))
        filewave = sum(1 for r in inbound_mutual if r.id_resp_p == 20017)
        assert https > filewave > 0
