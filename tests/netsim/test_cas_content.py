"""Tests for the CA universe and content synthesizers."""

import random
import re

import pytest

from repro.netsim.cas import CaUniverse, DUMMY_ISSUER_ORGS
from repro.netsim.content import ContentSynthesizer
from repro.x509 import KeyFactory


@pytest.fixture(scope="module")
def universe():
    return CaUniverse(KeyFactory(mode="sim", seed=2), random.Random(2))


class TestCaUniverse:
    def test_public_roots_in_stores(self, universe):
        digicert = universe.public("digicert-geotrust")
        # The intermediate's issuer (the root) is store-listed.
        assert universe.trust_stores.knows_issuer(digicert.certificate.issuer)

    def test_public_intermediates_listed_in_ccadb(self, universe):
        intermediate = universe.public("lets-encrypt-r3")
        assert universe.trust_stores.store("ccadb").contains_certificate(
            intermediate.certificate
        )

    def test_private_not_in_stores(self, universe):
        campus = universe.education(0)
        assert not universe.trust_stores.contains_certificate(campus.certificate)
        assert not universe.trust_stores.knows_issuer(campus.name)

    def test_private_cached_by_identity(self, universe):
        assert universe.education(0) is universe.education(0)
        assert universe.private("Acme", "Acme CA") is universe.private("Acme", "Acme CA")
        assert universe.education(0) is not universe.education(1)

    def test_missing_issuer_has_empty_name(self, universe):
        ca = universe.missing_issuer()
        assert ca.name.is_empty
        assert ca.certificate.issuer.rfc4514() == ""

    def test_dummy_requires_known_org(self, universe):
        assert universe.dummy("Internet Widgits Pty Ltd").organization == (
            "Internet Widgits Pty Ltd"
        )
        with pytest.raises(ValueError):
            universe.dummy("Some Real Company")

    def test_globus_policy(self, universe):
        import datetime as dt

        globus = universe.globus()
        now = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)
        from repro.x509 import Name

        certs = [globus.issue(Name.build(common_name=f"n{i}"), now=now)[0]
                 for i in range(3)]
        assert all(c.serial_number == 0 for c in certs)
        assert all(abs(c.validity.period_days - 14) < 0.01 for c in certs)
        assert globus.common_name == "FXP DCAU Cert"

    def test_guardicore_policies(self, universe):
        import datetime as dt

        from repro.x509 import Name

        now = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)
        client_cert, _ = universe.guardicore_client().issue(
            Name.build(common_name="agent"), now=now
        )
        server_cert, _ = universe.guardicore_server().issue(
            Name.build(common_name="aggregator"), now=now
        )
        assert client_cert.serial_hex == "01"
        assert server_cert.serial_hex == "03E8"
        assert client_cert.validity.period_days > 730

    def test_interception_proxies_distinct(self, universe):
        proxies = universe.interception_proxies(5)
        orgs = {p.issuer_organization for p in proxies}
        assert len(orgs) == 5
        assert all(universe.is_interception_issuer(org) for org in orgs)
        assert not universe.is_interception_issuer("DigiCert Inc")
        assert not universe.is_interception_issuer(None)

    def test_dummy_orgs_catalog(self):
        assert "Internet Widgits Pty Ltd" in DUMMY_ISSUER_ORGS
        assert "Unspecified" in DUMMY_ISSUER_ORGS


class TestContentSynthesizer:
    @pytest.fixture()
    def content(self):
        return ContentSynthesizer(random.Random(9))

    def test_user_account_format(self, content):
        for _ in range(20):
            account = content.user_account()
            assert re.fullmatch(r"[a-z]{2,3}\d[a-z]{2,3}", account)

    def test_personal_name_two_tokens(self, content):
        name = content.personal_name()
        first, last = name.split()
        assert first[0].isupper() and last[0].isupper()

    def test_uuid_shape(self, content):
        from repro.text import is_uuid

        assert is_uuid(content.uuid_string())

    def test_sip_mac_email(self, content):
        assert content.sip_address().startswith("sip:")
        assert re.fullmatch(r"([0-9A-F]{2}:){5}[0-9A-F]{2}", content.mac_address())
        assert "@" in content.email_address()

    def test_org_product_weights(self, content):
        values = [content.org_product() for _ in range(500)]
        webrtc_share = values.count("WebRTC") / len(values)
        assert 0.8 < webrtc_share < 0.95

    def test_synthesize_all_kinds(self, content):
        kinds = (
            "user_account", "personal_name", "random_8", "random_32",
            "random_uuid", "random_azure_sphere", "random_apple_uuid", "sip",
            "mac", "email", "localhost", "domain", "domain_plain",
            "domain_email_service", "domain_webex", "org_product",
            "org_product_hrw", "nonrandom_opaque", "ip",
        )
        for kind in kinds:
            result = content.synthesize(kind)
            assert result.common_name
            assert result.kind == kind

    def test_unknown_kind_rejected(self, content):
        with pytest.raises(ValueError):
            content.synthesize("nope")

    def test_pick_kind_respects_weights(self, content):
        mix = {"a": 0.9, "b": 0.1}
        draws = [content.pick_kind(mix) for _ in range(300)]
        assert draws.count("a") > draws.count("b")
