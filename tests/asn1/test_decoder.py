"""Unit tests for the DER decoder, including malformed-input rejection."""

import datetime as dt

import pytest

from repro.asn1 import (
    DerDecodeError,
    DerReader,
    ObjectIdentifier,
    Tag,
    decode_bit_string,
    decode_boolean,
    decode_generalized_time,
    decode_integer,
    decode_null,
    decode_octet_string,
    decode_oid,
    decode_string,
    decode_time,
    decode_utc_time,
    encode_boolean,
    encode_generalized_time,
    encode_integer,
    encode_printable_string,
    encode_sequence,
    encode_utc_time,
    encode_utf8_string,
    read_single_tlv,
)
from repro.asn1.tags import TagNumber


class TestDerReader:
    def test_walks_sequence_members(self):
        data = encode_sequence([encode_integer(5), encode_boolean(False)])
        outer = read_single_tlv(data)
        inner = outer.reader()
        assert decode_integer(inner.read_tlv()) == 5
        assert decode_boolean(inner.read_tlv()) is False
        assert inner.at_end()

    def test_finish_raises_on_trailing(self):
        reader = DerReader(encode_integer(1) + b"\x00")
        reader.read_tlv()
        with pytest.raises(DerDecodeError):
            reader.finish()

    def test_read_single_tlv_rejects_trailing(self):
        with pytest.raises(DerDecodeError):
            read_single_tlv(encode_integer(1) + encode_integer(2))

    def test_truncated_content(self):
        with pytest.raises(DerDecodeError):
            read_single_tlv(b"\x02\x05\x01")

    def test_truncated_tag(self):
        with pytest.raises(DerDecodeError):
            read_single_tlv(b"")

    def test_truncated_length(self):
        with pytest.raises(DerDecodeError):
            read_single_tlv(b"\x02")

    def test_indefinite_length_rejected(self):
        with pytest.raises(DerDecodeError, match="indefinite"):
            read_single_tlv(b"\x30\x80\x00\x00")

    def test_non_minimal_long_length_rejected(self):
        # 0x81 0x05 is long form for a length that fits short form.
        with pytest.raises(DerDecodeError):
            read_single_tlv(b"\x02\x81\x05\x01\x02\x03\x04\x05")

    def test_long_form_length_leading_zero_rejected(self):
        with pytest.raises(DerDecodeError):
            read_single_tlv(b"\x04\x82\x00\x81" + b"\x00" * 0x81)

    def test_read_optional_present(self):
        reader = DerReader(encode_integer(9))
        tlv = reader.read_optional(Tag.universal(TagNumber.INTEGER))
        assert tlv is not None and decode_integer(tlv) == 9

    def test_read_optional_absent(self):
        reader = DerReader(encode_boolean(True))
        assert reader.read_optional(Tag.universal(TagNumber.INTEGER)) is None
        # The boolean is still unconsumed.
        assert decode_boolean(reader.read_tlv()) is True

    def test_offsets_track_nesting(self):
        data = encode_sequence([encode_integer(1)])
        outer = read_single_tlv(data)
        inner = outer.reader().read_tlv()
        assert inner.offset == 2  # after the outer tag + length octets

    def test_expect_mismatch_mentions_offset(self):
        tlv = read_single_tlv(encode_integer(1))
        with pytest.raises(DerDecodeError, match="offset 0"):
            tlv.expect(Tag.universal(TagNumber.BOOLEAN))

    def test_reader_on_primitive_rejected(self):
        tlv = read_single_tlv(encode_integer(1))
        with pytest.raises(DerDecodeError):
            tlv.reader()


class TestDecodeInteger:
    @pytest.mark.parametrize("value", [0, 1, -1, 127, 128, -128, -129, 2**64, -(2**64)])
    def test_round_trip(self, value):
        assert decode_integer(read_single_tlv(encode_integer(value))) == value

    def test_empty_content_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_integer(read_single_tlv(b"\x02\x00"))

    def test_non_minimal_positive_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_integer(read_single_tlv(b"\x02\x02\x00\x01"))

    def test_non_minimal_negative_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_integer(read_single_tlv(b"\x02\x02\xff\xff"))

    def test_minimal_with_sign_padding_accepted(self):
        # 0x00 0x80 is the minimal encoding of +128.
        assert decode_integer(read_single_tlv(b"\x02\x02\x00\x80")) == 128


class TestDecodeBoolean:
    def test_values(self):
        assert decode_boolean(read_single_tlv(b"\x01\x01\xff")) is True
        assert decode_boolean(read_single_tlv(b"\x01\x01\x00")) is False

    def test_ber_true_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_boolean(read_single_tlv(b"\x01\x01\x01"))

    def test_wrong_length_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_boolean(read_single_tlv(b"\x01\x02\x00\x00"))


class TestDecodeMisc:
    def test_null(self):
        assert decode_null(read_single_tlv(b"\x05\x00")) is None

    def test_null_nonempty_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_null(read_single_tlv(b"\x05\x01\x00"))

    def test_octet_string(self):
        assert decode_octet_string(read_single_tlv(b"\x04\x02\xab\xcd")) == b"\xab\xcd"

    def test_bit_string(self):
        value, unused = decode_bit_string(read_single_tlv(b"\x03\x02\x04\xa0"))
        assert value == b"\xa0" and unused == 4

    def test_bit_string_bad_unused(self):
        with pytest.raises(DerDecodeError):
            decode_bit_string(read_single_tlv(b"\x03\x02\x08\xa0"))

    def test_bit_string_empty_content(self):
        with pytest.raises(DerDecodeError):
            decode_bit_string(read_single_tlv(b"\x03\x00"))


class TestDecodeOid:
    @pytest.mark.parametrize(
        "dotted", ["2.5.4.3", "1.2.840.113549.1.1.11", "0.9.2342.19200300.100.1.25", "2.999"]
    )
    def test_round_trip(self, dotted):
        oid = ObjectIdentifier(dotted)
        from repro.asn1 import encode_oid

        assert decode_oid(read_single_tlv(encode_oid(oid))) == oid

    def test_empty_content_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_oid(read_single_tlv(b"\x06\x00"))

    def test_trailing_continuation_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_oid(read_single_tlv(b"\x06\x02\x55\x84"))

    def test_padded_subidentifier_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_oid(read_single_tlv(b"\x06\x03\x55\x80\x03"))


class TestDecodeStrings:
    def test_printable(self):
        assert decode_string(read_single_tlv(encode_printable_string("Acme Co"))) == "Acme Co"

    def test_utf8(self):
        assert decode_string(read_single_tlv(encode_utf8_string("Mañana"))) == "Mañana"

    def test_wrong_type_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_string(read_single_tlv(encode_integer(1)))


class TestDecodeTime:
    def test_utc_round_trip(self):
        value = dt.datetime(2022, 5, 1, 0, 0, 0, tzinfo=dt.timezone.utc)
        assert decode_utc_time(read_single_tlv(encode_utc_time(value))) == value

    def test_utc_century_split(self):
        # '49' maps to 2049 and '50' maps to 1950 per RFC 5280.
        late = read_single_tlv(b"\x17\x0d490101000000Z")
        early = read_single_tlv(b"\x17\x0d500101000000Z")
        assert decode_utc_time(late).year == 2049
        assert decode_utc_time(early).year == 1950

    def test_generalized_round_trip(self):
        value = dt.datetime(2157, 11, 16, 8, 9, 10, tzinfo=dt.timezone.utc)
        assert decode_generalized_time(read_single_tlv(encode_generalized_time(value))) == value

    def test_decode_time_handles_both(self):
        utc = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)
        gen = dt.datetime(2157, 1, 1, tzinfo=dt.timezone.utc)
        assert decode_time(read_single_tlv(encode_utc_time(utc))) == utc
        assert decode_time(read_single_tlv(encode_generalized_time(gen))) == gen

    def test_bad_calendar_date_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_utc_time(read_single_tlv(b"\x17\x0d231345000000Z"))

    def test_missing_z_suffix_rejected(self):
        with pytest.raises(DerDecodeError):
            decode_utc_time(read_single_tlv(b"\x17\x0d2306151230450"))
