"""Tests for the DER dump tool."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asn1 import (
    DerDecodeError,
    ObjectIdentifier,
    encode_boolean,
    encode_integer,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_utc_time,
)
from repro.asn1.dump import dump_der
from repro.x509 import CertificateAuthority, KeyFactory, Name

NOW = dt.datetime(2023, 1, 1, tzinfo=dt.timezone.utc)


class TestDump:
    def test_scalars(self):
        data = encode_sequence([
            encode_integer(42),
            encode_boolean(True),
            encode_null(),
            encode_printable_string("hello"),
            encode_octet_string(b"\xde\xad"),
        ])
        text = dump_der(data)
        assert "SEQUENCE" in text
        assert "INTEGER: 42" in text
        assert "BOOLEAN: True" in text
        assert "NULL" in text
        assert "PrintableString: 'hello'" in text
        assert "dead" in text

    def test_oid_named(self):
        text = dump_der(encode_oid(ObjectIdentifier("2.5.4.3")))
        assert "commonName" in text

    def test_unknown_oid_dotted(self):
        text = dump_der(encode_oid(ObjectIdentifier("1.2.3.4.5")))
        assert "1.2.3.4.5" in text

    def test_time_rendered_iso(self):
        text = dump_der(encode_utc_time(NOW))
        assert "2023-01-01T00:00:00" in text

    def test_nesting_indented(self):
        inner = encode_sequence([encode_integer(1)])
        text = dump_der(encode_sequence([inner]))
        lines = text.splitlines()
        assert len(lines) == 3
        # Offsets ascend and indentation deepens.
        assert lines[1].count("  ") > lines[0].count("  ")

    def test_full_certificate_dumps(self):
        ca = CertificateAuthority.create_root(
            Name.build(common_name="Dump CA", organization="Dump Org"),
            KeyFactory(mode="sim", seed=77),
        )
        cert, _ = ca.issue(Name.build(common_name="leaf.example"), now=NOW)
        text = dump_der(cert.to_der())
        assert "commonName" in text
        assert "'leaf.example'" in text
        assert "UTCTime" in text
        assert "BIT STRING" in text

    def test_garbage_rejected(self):
        with pytest.raises(DerDecodeError):
            dump_der(b"\x02\x05\x01")

    def test_long_values_truncated(self):
        text = dump_der(encode_octet_string(b"\xab" * 100))
        assert "..." in text

    @given(st.integers(-(2**64), 2**64))
    def test_integers_always_render(self, value):
        assert "INTEGER" in dump_der(encode_integer(value))
