"""Unit tests for the DER encoder primitives."""

import datetime as dt

import pytest

from repro.asn1 import (
    DerEncodeError,
    ObjectIdentifier,
    Tag,
    encode_bit_string,
    encode_boolean,
    encode_context,
    encode_explicit,
    encode_generalized_time,
    encode_ia5_string,
    encode_integer,
    encode_length,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_tag,
    encode_utc_time,
    encode_utf8_string,
)
from repro.asn1.tags import TagClass


class TestEncodeTag:
    def test_low_tag_primitive(self):
        assert encode_tag(Tag.universal(2)) == b"\x02"

    def test_low_tag_constructed(self):
        assert encode_tag(Tag.universal(16, constructed=True)) == b"\x30"

    def test_context_tag(self):
        assert encode_tag(Tag.context(0)) == b"\xa0"

    def test_context_primitive_tag(self):
        assert encode_tag(Tag.context(2, constructed=False)) == b"\x82"

    def test_high_tag_number(self):
        # Tag number 31 needs the high-tag-number form.
        assert encode_tag(Tag.universal(31)) == b"\x1f\x1f"

    def test_high_tag_number_multibyte(self):
        assert encode_tag(Tag.universal(200)) == b"\x1f\x81\x48"

    def test_private_class(self):
        assert encode_tag(Tag(TagClass.PRIVATE, False, 1)) == b"\xc1"


class TestEncodeLength:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form_one_byte(self):
        assert encode_length(128) == b"\x81\x80"
        assert encode_length(255) == b"\x81\xff"

    def test_long_form_two_bytes(self):
        assert encode_length(256) == b"\x82\x01\x00"

    def test_negative_rejected(self):
        with pytest.raises(DerEncodeError):
            encode_length(-1)


class TestEncodeInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (1, b"\x02\x01\x01"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (256, b"\x02\x02\x01\x00"),
            (-1, b"\x02\x01\xff"),
            (-128, b"\x02\x01\x80"),
            (-129, b"\x02\x02\xff\x7f"),
        ],
    )
    def test_known_values(self, value, expected):
        assert encode_integer(value) == expected

    def test_large_serial_number(self):
        encoded = encode_integer(2**159)
        assert encoded[0] == 0x02
        # 160-bit positive value: 20 bytes of magnitude + 1 sign byte.
        assert encoded[1] == 21


class TestEncodeBoolean:
    def test_true_is_ff(self):
        assert encode_boolean(True) == b"\x01\x01\xff"

    def test_false(self):
        assert encode_boolean(False) == b"\x01\x01\x00"


class TestSimpleTypes:
    def test_null(self):
        assert encode_null() == b"\x05\x00"

    def test_octet_string(self):
        assert encode_octet_string(b"\x01\x02") == b"\x04\x02\x01\x02"

    def test_bit_string_no_unused(self):
        assert encode_bit_string(b"\xAB") == b"\x03\x02\x00\xab"

    def test_bit_string_unused_bits(self):
        assert encode_bit_string(b"\xA0", unused_bits=4) == b"\x03\x02\x04\xa0"

    def test_bit_string_bad_unused(self):
        with pytest.raises(DerEncodeError):
            encode_bit_string(b"\x00", unused_bits=8)

    def test_empty_bit_string_with_unused_rejected(self):
        with pytest.raises(DerEncodeError):
            encode_bit_string(b"", unused_bits=1)


class TestEncodeOid:
    def test_common_name(self):
        assert encode_oid(ObjectIdentifier("2.5.4.3")) == b"\x06\x03\x55\x04\x03"

    def test_rsa_encryption(self):
        expected = b"\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x01"
        assert encode_oid(ObjectIdentifier("1.2.840.113549.1.1.1")) == expected

    def test_two_arc(self):
        assert encode_oid(ObjectIdentifier("2.5")) == b"\x06\x01\x55"

    def test_bad_first_arc(self):
        with pytest.raises(DerEncodeError):
            ObjectIdentifier("3.1")

    def test_bad_second_arc(self):
        with pytest.raises(DerEncodeError):
            ObjectIdentifier("1.40")


class TestEncodeStrings:
    def test_printable(self):
        assert encode_printable_string("Hi") == b"\x13\x02Hi"

    def test_printable_rejects_illegal(self):
        with pytest.raises(DerEncodeError):
            encode_printable_string("héllo")

    def test_printable_rejects_at_sign(self):
        with pytest.raises(DerEncodeError):
            encode_printable_string("a@b")

    def test_utf8(self):
        assert encode_utf8_string("é") == b"\x0c\x02\xc3\xa9"

    def test_ia5(self):
        assert encode_ia5_string("a@b.example") == b"\x16\x0ba@b.example"

    def test_ia5_rejects_non_ascii(self):
        with pytest.raises(DerEncodeError):
            encode_ia5_string("café")


class TestEncodeTime:
    def test_utc_time(self):
        value = dt.datetime(2023, 6, 15, 12, 30, 45, tzinfo=dt.timezone.utc)
        assert encode_utc_time(value) == b"\x17\x0d230615123045Z"

    def test_utc_time_rejects_out_of_range(self):
        with pytest.raises(DerEncodeError):
            encode_utc_time(dt.datetime(2157, 1, 1, tzinfo=dt.timezone.utc))

    def test_generalized_time(self):
        value = dt.datetime(2157, 1, 2, 3, 4, 5, tzinfo=dt.timezone.utc)
        assert encode_generalized_time(value) == b"\x18\x0f21570102030405Z"

    def test_naive_datetime_assumed_utc(self):
        naive = dt.datetime(2023, 6, 15, 12, 30, 45)
        aware = dt.datetime(2023, 6, 15, 12, 30, 45, tzinfo=dt.timezone.utc)
        assert encode_utc_time(naive) == encode_utc_time(aware)


class TestComposite:
    def test_sequence(self):
        inner = encode_integer(1) + encode_boolean(True)
        assert encode_sequence([encode_integer(1), encode_boolean(True)]) == (
            b"\x30" + bytes([len(inner)]) + inner
        )

    def test_set_sorts_members(self):
        a, b = encode_integer(2), encode_integer(1)
        encoded = encode_set([a, b])
        # DER SET OF orders by encoded bytes: INTEGER 1 before INTEGER 2.
        assert encoded == b"\x31\x06" + b + a

    def test_context(self):
        assert encode_context(0, b"\x02\x01\x05") == b"\xa0\x03\x02\x01\x05"

    def test_explicit_wraps_tlv(self):
        inner = encode_integer(7)
        assert encode_explicit(3, inner) == b"\xa3\x03" + inner
