"""Property-based round-trip tests for the DER codec."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1 import (
    DerReader,
    ObjectIdentifier,
    decode_bit_string,
    decode_boolean,
    decode_generalized_time,
    decode_integer,
    decode_octet_string,
    decode_oid,
    decode_string,
    decode_utc_time,
    encode_bit_string,
    encode_boolean,
    encode_generalized_time,
    encode_integer,
    encode_octet_string,
    encode_oid,
    encode_sequence,
    encode_utc_time,
    encode_utf8_string,
    read_single_tlv,
)

utc_datetimes = st.datetimes(
    min_value=dt.datetime(1950, 1, 1),
    max_value=dt.datetime(2049, 12, 31, 23, 59, 59),
).map(lambda d: d.replace(microsecond=0, tzinfo=dt.timezone.utc))

generalized_datetimes = st.datetimes(
    min_value=dt.datetime(1, 1, 1),
    max_value=dt.datetime(9999, 12, 31, 23, 59, 59),
).map(lambda d: d.replace(microsecond=0, tzinfo=dt.timezone.utc))

oids = st.builds(
    lambda first, second, rest: ObjectIdentifier.from_arcs([first, second] + rest),
    st.integers(0, 1),
    st.integers(0, 39),
    st.lists(st.integers(0, 2**40), max_size=6),
)


@given(st.integers(-(2**512), 2**512))
def test_integer_round_trip(value):
    assert decode_integer(read_single_tlv(encode_integer(value))) == value


@given(st.booleans())
def test_boolean_round_trip(value):
    assert decode_boolean(read_single_tlv(encode_boolean(value))) is value


@given(st.binary(max_size=512))
def test_octet_string_round_trip(value):
    assert decode_octet_string(read_single_tlv(encode_octet_string(value))) == value


@given(st.binary(min_size=1, max_size=64), st.integers(0, 7))
def test_bit_string_round_trip(value, unused):
    decoded, decoded_unused = decode_bit_string(
        read_single_tlv(encode_bit_string(value, unused))
    )
    assert decoded == value and decoded_unused == unused


@given(oids)
def test_oid_round_trip(oid):
    assert decode_oid(read_single_tlv(encode_oid(oid))) == oid


@given(st.text(max_size=128))
def test_utf8_string_round_trip(value):
    assert decode_string(read_single_tlv(encode_utf8_string(value))) == value


@given(utc_datetimes)
def test_utc_time_round_trip(value):
    assert decode_utc_time(read_single_tlv(encode_utc_time(value))) == value


@given(generalized_datetimes)
def test_generalized_time_round_trip(value):
    decoded = decode_generalized_time(read_single_tlv(encode_generalized_time(value)))
    assert decoded == value


@settings(max_examples=50)
@given(st.lists(st.integers(-(2**64), 2**64), max_size=20))
def test_sequence_of_integers_round_trip(values):
    encoded = encode_sequence([encode_integer(v) for v in values])
    reader = read_single_tlv(encoded).reader() if values else None
    if reader is None:
        outer = read_single_tlv(encoded)
        assert outer.content == b""
        return
    decoded = [decode_integer(tlv) for tlv in reader.read_all()]
    assert decoded == values


@settings(max_examples=50)
@given(st.binary(max_size=256))
def test_decoder_never_crashes_on_garbage(data):
    """The reader must either parse or raise DerDecodeError — never crash."""
    from repro.asn1 import DerDecodeError

    reader = DerReader(data)
    try:
        while not reader.at_end():
            reader.read_tlv()
    except DerDecodeError:
        pass


@given(st.integers(-(2**128), 2**128))
def test_integer_encoding_is_minimal(value):
    encoded = encode_integer(value)
    content = encoded[2:]
    if len(content) > 1:
        assert not (content[0] == 0x00 and not content[1] & 0x80)
        assert not (content[0] == 0xFF and content[1] & 0x80)
