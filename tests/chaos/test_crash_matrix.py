"""The on-disk failure model, proven: a deterministic crash (or disk
fault) at EVERY instrumented point of the durable-write sequence leaves
each artifact as either the complete old state or the complete new
state — never a half state — and a restart recovers byte-identically.

Three artifact classes are driven through :class:`FaultyIO`:

- a generic durable file (the sequence itself, including keep_prev);
- a store pack (many files, manifest published last);
- a live-tail/streaming checkpoint (keep_prev + last-good fallback).
"""

import errno
import json

import pytest

from repro.core.durable import TMP_SUFFIX, durable_write
from repro.core.parallel import CampaignManifest
from repro.core.streaming import atomic_write_json, load_checkpoint_json
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.netsim.faults import FaultyIO, IoFault, SimulatedCrash
from repro.store import ColumnTable, MANIFEST_NAME, ensure_store, fsck, pack_archive
from repro.store.codec import StoreFormatError
from repro.zeek.files import write_rotated_logs

pytestmark = [pytest.mark.slow, pytest.mark.chaos]


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    logs = TrafficGenerator(
        ScenarioConfig(seed=29, months=3, connections_per_month=60)
    ).generate().logs
    write_rotated_logs(logs, directory)
    return directory


def _store_state(store_dir):
    """Every published file's bytes (temps, locks, and quarantine are
    bookkeeping, not store content)."""
    return {
        p.name: p.read_bytes()
        for p in sorted(store_dir.iterdir())
        if p.is_file()
        and not p.name.endswith(TMP_SUFFIX)
        and p.name != ".lock"
    }


@pytest.fixture(scope="module")
def clean_state(archive, tmp_path_factory):
    store = tmp_path_factory.mktemp("clean") / "store"
    pack_archive(archive, store)
    return _store_state(store)


#: One crash per instrumented operation of a single durable_write.
SEQUENCE_FAULTS = [
    IoFault(op="mkstemp"),
    IoFault(op="write"),
    IoFault(op="write", after_bytes=7),
    IoFault(op="fsync"),
    IoFault(op="close"),
    IoFault(op="replace"),
    IoFault(op="fsync_dir"),
]


class TestDurableSequence:
    @pytest.mark.parametrize(
        "fault", SEQUENCE_FAULTS, ids=lambda f: f"{f.op}@{f.after_bytes}"
    )
    def test_crash_leaves_old_or_new(self, tmp_path, fault):
        target = tmp_path / "artifact.bin"
        old, new = b"old state", b"new state!"
        target.write_bytes(old)
        with FaultyIO(fault).install():
            with pytest.raises(SimulatedCrash):
                durable_write(target, new)
        assert target.read_bytes() in (old, new)

    @pytest.mark.parametrize(
        "fault", SEQUENCE_FAULTS, ids=lambda f: f"{f.op}@{f.after_bytes}"
    )
    def test_crash_with_keep_prev_never_loses_both(self, tmp_path, fault):
        target = tmp_path / "ckpt.json"
        atomic_write_json(target, {"v": 1})
        with FaultyIO(fault).install():
            with pytest.raises(SimulatedCrash):
                atomic_write_json(target, {"v": 2})
        # The loader must always find a complete document: the new one,
        # the old one still in place, or the old one retained as .prev.
        document, _ = load_checkpoint_json(target)
        assert document in ({"v": 1}, {"v": 2})

    @pytest.mark.parametrize("mode", ["enospc", "eio"])
    def test_disk_faults_abort_cleanly_and_retry_succeeds(self, tmp_path, mode):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"old")
        shim = FaultyIO(IoFault(op="write", mode=mode, after_bytes=2))
        with shim.install():
            with pytest.raises(OSError) as excinfo:
                durable_write(target, b"new content")
            assert excinfo.value.errno == getattr(errno, mode.upper())
            assert target.read_bytes() == b"old"
            assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))
            durable_write(target, b"new content")  # disk "recovered"
        assert target.read_bytes() == b"new content"


#: Crash points spread across a whole pack: first temp file, a torn
#: column write, mid-pack fsync/close/publish, the manifest's own
#: write/publish, and the final directory fsync (after which the new
#: state is already complete).
PACK_FAULTS = [
    IoFault(op="mkstemp"),
    IoFault(op="write", after_bytes=64, path=".col"),
    IoFault(op="fsync", index=1),
    IoFault(op="close", index=2),
    IoFault(op="replace", index=2),
    IoFault(op="write", path="manifest.json"),
    IoFault(op="replace", path="manifest.json"),
    IoFault(op="fsync_dir", path="", index=3),
]


class TestPackCrashMatrix:
    @pytest.mark.parametrize(
        "fault", PACK_FAULTS, ids=lambda f: f"{f.op}#{f.index}:{f.path or '*'}"
    )
    def test_crashed_pack_is_never_half_a_store(
        self, archive, tmp_path, clean_state, fault
    ):
        store = tmp_path / "store"
        with FaultyIO(fault).install():
            with pytest.raises(SimulatedCrash):
                pack_archive(archive, store)

        # Invariant 1: no torn column file is ever *published* — every
        # .col in the directory parses and verifies end to end (torn
        # bytes only ever live in a *.tmp orphan).
        for path in store.glob("*.col"):
            ColumnTable(path.read_bytes(), name=path.name)

        # Invariant 2: the manifest commits the store. Absent ⇒ the old
        # state ("no store here") — readers refuse it. Present ⇒ it was
        # published after every column file, so the store is complete.
        if (store / MANIFEST_NAME).exists():
            assert fsck(store).ok
        else:
            from repro.store import ColumnarStoreSource

            with pytest.raises(StoreFormatError, match="manifest"):
                ColumnarStoreSource(store)

        # Recovery: a restart packs the rest, sweeps the orphans, and
        # converges on the byte-identical clean store.
        ensure_store(archive, store)
        assert not list(store.glob(f"*{TMP_SUFFIX}"))
        assert _store_state(store) == clean_state
        assert fsck(store).ok

    def test_enospc_mid_pack_aborts_store_less(self, archive, tmp_path):
        store = tmp_path / "store"
        shim = FaultyIO(IoFault(op="write", mode="enospc", after_bytes=4096))
        with shim.install():
            with pytest.raises(OSError) as excinfo:
                pack_archive(archive, store)
        assert excinfo.value.errno == errno.ENOSPC
        # Clean abort: no manifest, no orphaned temp for the failed file.
        assert not (store / MANIFEST_NAME).exists()

    def test_repack_crash_preserves_readable_old_manifest(
        self, archive, tmp_path, clean_state
    ):
        """A crash *before the manifest publish* of a repack leaves the
        old manifest — and every old column file it describes is still
        byte-identical (same archive ⇒ deterministic identical bytes),
        so the store stays servable throughout."""
        store = tmp_path / "store"
        pack_archive(archive, store)
        with FaultyIO(IoFault(op="replace", path="manifest.json")).install():
            with pytest.raises(SimulatedCrash):
                pack_archive(archive, store)
        assert fsck(store).ok
        ensure_store(archive, store)
        assert _store_state(store) == clean_state


class TestOrphanSweeps:
    def test_restarted_pack_sweeps_orphans(self, archive, tmp_path):
        store = tmp_path / "store"
        with FaultyIO(IoFault(op="fsync", index=1)).install():
            with pytest.raises(SimulatedCrash):
                pack_archive(archive, store)
        assert list(store.glob(f"*{TMP_SUFFIX}"))  # the dead writer's mess
        pack_archive(archive, store)
        assert not list(store.glob(f"*{TMP_SUFFIX}"))

    def test_campaign_manifest_sweeps_on_open(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        orphan = run_dir / f"manifest.json.abc{TMP_SUFFIX}"
        orphan.write_bytes(b"half")
        CampaignManifest(run_dir, "fingerprint")
        assert not orphan.exists()
