"""Concurrent access under advisory locking: racing packs serialize,
readers never see a torn store mid-repack, a SIGKILLed holder's lock
evaporates (stale takeover), and a second `repro serve` on the same
checkpoint is refused."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.livetail import LiveTailDaemon
from repro.core.locks import FileLock
from repro.netsim import LiveLogWriter, ScenarioConfig, TrafficGenerator
from repro.store import ColumnarStoreSource, fsck, pack_archive
from repro.store.source import store_lock
from repro.zeek import IngestOptions
from repro.zeek.files import write_rotated_logs

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

OPTIONS = IngestOptions()


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(seed=31, months=2, connections_per_month=60)
    ).generate()


@pytest.fixture(scope="module")
def archive(simulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    write_rotated_logs(simulation.logs, directory)
    return directory


def _pack_worker(archive, store, barrier):
    barrier.wait()  # maximize overlap: both packs start together
    pack_archive(archive, store)


def _lock_holder(lock_path, acquired, release):
    lock = FileLock(lock_path)
    lock.acquire(exclusive=True, op="pack")
    acquired.set()
    release.wait(30)  # parent SIGKILLs us instead


class TestRacingPacks:
    def test_two_packs_serialize_to_a_clean_store(self, archive, tmp_path):
        store = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_pack_worker, args=(archive, store, barrier))
            for _ in range(2)
        ]
        try:
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=120)
            assert all(w.exitcode == 0 for w in workers)
        finally:
            # A worker that outlives its join deadline must not survive
            # to interpreter exit (multiprocessing joins non-daemon
            # children there, without a timeout — a hang, not a failure).
            for w in workers:
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=10)
        # Serialized, not interleaved: the survivor is a fully clean
        # store, byte-for-byte what a lone pack produces.
        assert fsck(store).ok
        lone = tmp_path / "lone"
        pack_archive(archive, lone)
        for path in sorted(lone.glob("*.col")) + [lone / "manifest.json"]:
            assert (store / path.name).read_bytes() == path.read_bytes()


class TestReaderDuringRepack:
    def test_mapped_tables_survive_a_repack(self, archive, tmp_path):
        store = tmp_path / "store"
        pack_archive(archive, store)
        source = ColumnarStoreSource(store)
        month = source.months()[0]
        table = source.ssl_table(month)  # mmap pins the inode now
        expected = source.read_month(month, OPTIONS).ssl
        # A repack replaces every file under the reader...
        pack_archive(archive, store)
        # ...and the open mapping still serves the complete old bytes —
        # no torn read, no error.
        assert table.verify() == []
        assert table.records() == expected
        # A fresh open sees the (identical) new store.
        fresh = ColumnarStoreSource(store)
        assert fresh.read_month(month, OPTIONS).ssl == expected

    def test_reader_shared_lock_blocks_packer(self, archive, tmp_path):
        from repro.core.locks import LockTimeout

        store = tmp_path / "store"
        pack_archive(archive, store)
        with store_lock(store).shared(op="map"):
            writer = store_lock(store)
            with pytest.raises(LockTimeout):
                writer.acquire(exclusive=True, timeout=0.2, op="pack")


class TestStaleLockTakeover:
    def test_killed_holder_releases_immediately(self, tmp_path):
        lock_path = tmp_path / ".lock"
        ctx = multiprocessing.get_context("fork")
        acquired, release = ctx.Event(), ctx.Event()
        holder = ctx.Process(
            target=_lock_holder, args=(lock_path, acquired, release)
        )
        holder.start()
        try:
            assert acquired.wait(30)
            lock = FileLock(lock_path)
            # The child genuinely holds it...
            with pytest.raises(Exception):
                lock.acquire(timeout=0)
            # ...until SIGKILL: flock dies with the holder, no unlock
            # code runs, and the next acquirer takes over at once.
            os.kill(holder.pid, signal.SIGKILL)
            holder.join(timeout=30)
            deadline = time.monotonic() + 10
            while not lock.is_stale() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert lock.is_stale()  # metadata names a dead pid
            lock.acquire(timeout=5, op="takeover")
            try:
                assert json.loads(lock_path.read_text())["pid"] == os.getpid()
            finally:
                lock.release()
        finally:
            release.set()
            if holder.is_alive():
                holder.terminate()
                holder.join(timeout=10)


class TestServeSingleOwner:
    def test_second_daemon_refused_first_released_on_close(
        self, simulation, tmp_path
    ):
        logdir = tmp_path / "logs"
        ckpt = tmp_path / "state" / "ckpt.json"
        writer = LiveLogWriter(simulation.logs, logdir)
        writer.write_next(10)
        daemon = LiveTailDaemon(
            logdir, simulation.trust_bundle, checkpoint_path=ckpt
        )
        try:
            with pytest.raises(RuntimeError, match="refusing to serve"):
                LiveTailDaemon(
                    logdir, simulation.trust_bundle, checkpoint_path=ckpt
                )
        finally:
            daemon.close()
        # Lock released with the daemon: a successor starts fine.
        successor = LiveTailDaemon(
            logdir, simulation.trust_bundle, checkpoint_path=ckpt
        )
        successor.close()

    def test_startup_sweep_is_scoped_to_own_checkpoint(
        self, simulation, tmp_path
    ):
        from repro.core.durable import TMP_SUFFIX

        logdir = tmp_path / "logs"
        LiveLogWriter(simulation.logs, logdir).write_next(5)
        ckpt = logdir / "ckpt.json"  # checkpoint sharing the log dir
        mine = logdir / f"ckpt.json.dead{TMP_SUFFIX}"
        theirs = logdir / f"ssl.log.inflight{TMP_SUFFIX}"
        mine.write_bytes(b"half")
        theirs.write_bytes(b"half")
        daemon = LiveTailDaemon(
            logdir, simulation.trust_bundle, checkpoint_path=ckpt
        )
        daemon.close()
        # Only the daemon's own dead temp was swept — a live log
        # writer's in-flight temp in the shared directory is not ours.
        assert not mine.exists()
        assert theirs.exists()
