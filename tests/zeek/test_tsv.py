"""Tests for the Zeek TSV reader/writer."""

import datetime as dt
import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.zeek import (
    SslRecord,
    TsvFormatError,
    X509Record,
    read_ssl_log,
    read_x509_log,
    write_ssl_log,
    write_x509_log,
)

UTC = dt.timezone.utc


def _ssl_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        uid="CABCDEF",
        id_orig_h="10.0.0.1",
        id_orig_p=51515,
        id_resp_h="192.0.2.1",
        id_resp_p=443,
        version="TLSv12",
        cipher="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
        server_name="example.com",
        established=True,
        cert_chain_fuids=("F1", "F2"),
        client_cert_chain_fuids=("F3",),
        validation_status="ok",
    )
    base.update(overrides)
    return SslRecord(**base)


def _x509_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        fuid="F1",
        fingerprint="ab" * 32,
        version=3,
        serial="0A1B",
        subject="CN=example.com,O=Example",
        issuer="CN=Issuing CA,O=Example Trust",
        not_valid_before=dt.datetime(2022, 6, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2023, 6, 1, tzinfo=UTC),
        key_alg="rsaEncryption",
        sig_alg="sha256WithRSAEncryption",
        key_length=2048,
        san_dns=("example.com", "www.example.com"),
        san_uri=(),
        san_email=(),
        san_ip=("192.0.2.5",),
        basic_constraints_ca=False,
    )
    base.update(overrides)
    return X509Record(**base)


def _round_trip_ssl(records):
    buffer = io.StringIO()
    write_ssl_log(records, buffer)
    buffer.seek(0)
    return read_ssl_log(buffer)


def _round_trip_x509(records):
    buffer = io.StringIO()
    write_x509_log(records, buffer)
    buffer.seek(0)
    return read_x509_log(buffer)


class TestSslRoundTrip:
    def test_basic(self):
        record = _ssl_record()
        assert _round_trip_ssl([record]) == [record]

    def test_unset_sni(self):
        record = _ssl_record(server_name=None)
        assert _round_trip_ssl([record])[0].server_name is None

    def test_empty_chains(self):
        record = _ssl_record(cert_chain_fuids=(), client_cert_chain_fuids=())
        decoded = _round_trip_ssl([record])[0]
        assert decoded.cert_chain_fuids == ()
        assert not decoded.is_mutual

    def test_many_records(self):
        records = [_ssl_record(uid=f"C{i}") for i in range(50)]
        assert _round_trip_ssl(records) == records

    def test_tab_in_sni_survives(self):
        record = _ssl_record(server_name="weird\tname")
        assert _round_trip_ssl([record])[0].server_name == "weird\tname"


class TestX509RoundTrip:
    def test_basic(self):
        record = _x509_record()
        assert _round_trip_x509([record]) == [record]

    def test_comma_in_subject_survives(self):
        record = _x509_record(subject="CN=Smith\\, John,O=Acme")
        assert _round_trip_x509([record])[0].subject == record.subject

    def test_comma_in_san_element_survives(self):
        record = _x509_record(san_dns=("a,b", "c"))
        assert _round_trip_x509([record])[0].san_dns == ("a,b", "c")

    def test_unset_basic_constraints(self):
        record = _x509_record(basic_constraints_ca=None)
        assert _round_trip_x509([record])[0].basic_constraints_ca is None

    def test_inverted_dates_survive(self):
        record = _x509_record(
            not_valid_before=dt.datetime(2019, 8, 2, tzinfo=UTC),
            not_valid_after=dt.datetime(1849, 10, 24, tzinfo=UTC),
        )
        decoded = _round_trip_x509([record])[0]
        assert decoded.has_inverted_validity
        assert decoded.not_valid_after.year == 1849


class TestHeadersAndErrors:
    def test_header_lines_present(self):
        buffer = io.StringIO()
        write_ssl_log([_ssl_record()], buffer)
        text = buffer.getvalue()
        assert text.startswith("#separator")
        assert "#path\tssl" in text
        assert "#fields\tts\tuid" in text
        assert text.rstrip().endswith("#close")

    def test_wrong_path_rejected(self):
        buffer = io.StringIO()
        write_ssl_log([_ssl_record()], buffer)
        buffer.seek(0)
        with pytest.raises(TsvFormatError):
            read_x509_log(buffer)

    def test_wrong_cell_count_rejected(self):
        buffer = io.StringIO()
        write_ssl_log([_ssl_record()], buffer)
        lines = buffer.getvalue().splitlines()
        lines[-2] += "\textra"
        with pytest.raises(TsvFormatError):
            read_ssl_log(io.StringIO("\n".join(lines)))

    def test_data_before_fields_rejected(self):
        with pytest.raises(TsvFormatError):
            read_ssl_log(io.StringIO("#path\tssl\n1\t2\n"))

    def test_bad_bool_rejected(self):
        buffer = io.StringIO()
        write_ssl_log([_ssl_record()], buffer)
        text = buffer.getvalue().replace("\tT\t", "\tmaybe\t")
        with pytest.raises(TsvFormatError):
            read_ssl_log(io.StringIO(text))


sni_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1,
    max_size=30,
)


@given(
    sni=st.one_of(st.none(), sni_text),
    fuids=st.lists(st.text(alphabet="ABCdef123", min_size=1, max_size=8), max_size=4),
    established=st.booleans(),
)
def test_ssl_round_trip_property(sni, fuids, established):
    record = _ssl_record(
        server_name=sni if sni != "" else None,
        cert_chain_fuids=tuple(fuids),
        established=established,
    )
    assert _round_trip_ssl([record]) == [record]


@given(
    subject=sni_text,
    san=st.lists(sni_text, max_size=4),
    serial=st.integers(0, 2**64).map(lambda n: f"{n:X}"),
)
def test_x509_round_trip_property(subject, san, serial):
    record = _x509_record(subject=subject, san_dns=tuple(san), serial=serial)
    assert _round_trip_x509([record]) == [record]


# Characters the TSV layer must escape: the cell separator, record
# separators, the escape character itself, and the vector separator.
_NASTY = "\t\n\r\\,"

nasty_text = st.text(
    alphabet=st.sampled_from(_NASTY + "aé中🔒 .="),
    min_size=1,
    max_size=20,
).filter(lambda s: any(c in _NASTY for c in s))


@given(
    fuids=st.lists(nasty_text, min_size=1, max_size=4),
    sni=nasty_text,
)
def test_ssl_vector_escaping_property(fuids, sni):
    """Separator characters inside vector elements and the SNI survive."""
    record = _ssl_record(
        server_name=sni,
        cert_chain_fuids=tuple(fuids),
        client_cert_chain_fuids=tuple(reversed(fuids)),
    )
    assert _round_trip_ssl([record]) == [record]


@given(
    subject=nasty_text,
    issuer=nasty_text,
    san=st.lists(nasty_text, min_size=1, max_size=4),
)
def test_x509_nasty_subject_escaping_property(subject, issuer, san):
    """Tabs, newlines, backslashes, and commas in DN/SAN text survive,
    mixed with non-ASCII (internationalized subjects are real)."""
    record = _x509_record(
        subject=subject,
        issuer=issuer,
        san_dns=tuple(san),
        san_email=tuple(san),
    )
    assert _round_trip_x509([record]) == [record]
