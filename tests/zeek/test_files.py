"""Tests for rotated/gzipped log archives."""

import gzip

import pytest

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import TsvFormatError
from repro.zeek.files import read_logs_directory, write_rotated_logs


@pytest.fixture(scope="module")
def logs():
    result = TrafficGenerator(
        ScenarioConfig(months=3, connections_per_month=250, seed=51)
    ).generate()
    return result.logs


class TestRotation:
    def test_one_file_per_month_per_stream(self, logs, tmp_path):
        written = write_rotated_logs(logs, tmp_path, compress=False)
        names = sorted(p.name for p in written)
        ssl_files = [n for n in names if n.startswith("ssl.")]
        x509_files = [n for n in names if n.startswith("x509.")]
        assert len(ssl_files) == 3
        assert 1 <= len(x509_files) <= 3
        assert "ssl.2022-05.log" in names
        assert "ssl.2022-07.log" in names

    def test_round_trip_plain(self, logs, tmp_path):
        write_rotated_logs(logs, tmp_path, compress=False)
        loaded = read_logs_directory(tmp_path)
        assert len(loaded.ssl) == len(logs.ssl)
        assert len(loaded.x509) == len(logs.x509)
        assert {r.uid for r in loaded.ssl} == {r.uid for r in logs.ssl}
        assert {r.fingerprint for r in loaded.x509} == {
            r.fingerprint for r in logs.x509
        }

    def test_round_trip_gzip(self, logs, tmp_path):
        written = write_rotated_logs(logs, tmp_path, compress=True)
        assert all(p.suffix == ".gz" for p in written)
        # Files are genuinely gzipped.
        with gzip.open(written[0], "rt") as f:
            assert f.readline().startswith("#separator")
        loaded = read_logs_directory(tmp_path)
        assert len(loaded.ssl) == len(logs.ssl)

    def test_mixed_plain_and_gzip(self, logs, tmp_path):
        # First month gzipped (archived), later months plain (live).
        write_rotated_logs(logs, tmp_path, compress=True)
        plain_dir = tmp_path / "plain"
        write_rotated_logs(logs, plain_dir, compress=False)
        (plain_dir / "ssl.2022-05.log").rename(tmp_path / "extra-ignored.log")
        loaded = read_logs_directory(tmp_path)
        assert len(loaded.ssl) == len(logs.ssl)

    def test_records_sorted_by_timestamp(self, logs, tmp_path):
        write_rotated_logs(logs, tmp_path)
        loaded = read_logs_directory(tmp_path)
        timestamps = [r.ts for r in loaded.ssl]
        assert timestamps == sorted(timestamps)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(TsvFormatError):
            read_logs_directory(tmp_path)

    def test_analysis_on_reloaded_archive(self, logs, tmp_path):
        from repro.core.dataset import MtlsDataset

        write_rotated_logs(logs, tmp_path)
        loaded = read_logs_directory(tmp_path)
        dataset = MtlsDataset.from_logs(loaded)
        direct = MtlsDataset.from_logs(logs)
        assert len(dataset) == len(direct)
        assert set(dataset.certificate_profiles()) == set(
            direct.certificate_profiles()
        )
