"""Tests for the log builder (connection → ssl/x509 records)."""

import datetime as dt

import pytest

from repro.tls import (
    ClientProfile,
    ConnectionRecord,
    ServerProfile,
    TlsVersion,
    make_connection_uid,
    perform_handshake,
)
from repro.x509 import CertificateAuthority, KeyFactory, Name
from repro.zeek import ZeekLogBuilder

UTC = dt.timezone.utc
NOW = dt.datetime(2023, 1, 15, tzinfo=UTC)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create_root(
        Name.build(common_name="Log CA", organization="Log Org"),
        KeyFactory(mode="sim", seed=13),
    )


def _connection(ca, uid_counter, mutual=True, version=TlsVersion.TLS_1_2, sni="svc.example"):
    server_cert, _ = ca.issue(Name.build(common_name="svc.example"), now=NOW)
    client_cert, _ = ca.issue(Name.build(common_name="device-7"), now=NOW)
    handshake = perform_handshake(
        ClientProfile(
            certificate_chain=(client_cert,) if mutual else (),
            supported_versions=(version,),
        ),
        ServerProfile(
            certificate_chain=(server_cert,),
            requests_client_certificate=mutual,
            supported_versions=(version,),
        ),
        sni=sni,
    )
    return ConnectionRecord(
        uid=make_connection_uid(uid_counter),
        timestamp=NOW,
        client_ip="10.1.2.3",
        client_port=50000 + uid_counter,
        server_ip="192.0.2.10",
        server_port=443,
        handshake=handshake,
    )


class TestZeekLogBuilder:
    def test_mutual_connection_links_both_chains(self, ca):
        builder = ZeekLogBuilder()
        record = builder.observe(_connection(ca, 1))
        assert record.is_mutual
        assert len(record.cert_chain_fuids) == 1
        assert len(record.client_cert_chain_fuids) == 1
        fuids = builder.logs.x509_by_fuid()
        assert record.server_leaf_fuid in fuids
        assert record.client_leaf_fuid in fuids

    def test_non_mutual_has_no_client_chain(self, ca):
        builder = ZeekLogBuilder()
        record = builder.observe(_connection(ca, 1, mutual=False))
        assert not record.is_mutual
        assert record.client_leaf_fuid is None

    def test_tls13_chains_hidden(self, ca):
        builder = ZeekLogBuilder()
        record = builder.observe(_connection(ca, 1, version=TlsVersion.TLS_1_3))
        assert record.version == "TLSv13"
        assert record.cert_chain_fuids == ()
        assert record.client_cert_chain_fuids == ()
        assert builder.logs.x509 == []

    def test_certificate_deduplicated_across_connections(self, ca):
        builder = ZeekLogBuilder()
        server_cert, _ = ca.issue(Name.build(common_name="same.example"), now=NOW)
        for counter in range(3):
            handshake = perform_handshake(
                ClientProfile(supported_versions=(TlsVersion.TLS_1_2,)),
                ServerProfile(
                    certificate_chain=(server_cert,),
                    supported_versions=(TlsVersion.TLS_1_2,),
                ),
            )
            builder.observe(
                ConnectionRecord(
                    uid=make_connection_uid(counter),
                    timestamp=NOW,
                    client_ip="10.0.0.1",
                    client_port=40000 + counter,
                    server_ip="192.0.2.2",
                    server_port=443,
                    handshake=handshake,
                )
            )
        assert len(builder.logs.ssl) == 3
        assert len(builder.logs.x509) == 1  # one unique certificate
        assert builder.fuid_for(server_cert) == builder.logs.x509[0].fuid

    def test_x509_record_fields(self, ca):
        builder = ZeekLogBuilder()
        record = builder.observe(_connection(ca, 1))
        x509 = builder.logs.x509_by_fuid()[record.server_leaf_fuid]
        assert x509.subject_cn == "svc.example"
        assert x509.issuer_org == "Log Org"
        assert x509.version == 3
        assert int(x509.serial, 16) > 0
        assert x509.key_length == 2048
        assert not x509.has_inverted_validity

    def test_unobserved_certificate_has_no_fuid(self, ca):
        builder = ZeekLogBuilder()
        cert, _ = ca.issue(Name.build(common_name="never-seen"), now=NOW)
        assert builder.fuid_for(cert) is None
