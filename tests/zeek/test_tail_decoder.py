"""Incremental TSV decoding for live tailing (`TailDecoder`).

The contract under test: feeding a serialized log in arbitrary chunk
sizes — including chunks that end mid-line, i.e. a reader racing the
writer — yields exactly the records and IngestReport of a batch read,
and an unterminated trailing line is *buffered*, never dropped or
counted, until its newline (or `finish()`) arrives.
"""

import io

import pytest

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    ErrorPolicy,
    IngestReport,
    TailDecoder,
    format_ssl_row,
    log_header_text,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(months=2, connections_per_month=120, seed=19)
    ).generate()


@pytest.fixture(scope="module")
def ssl_text(simulation):
    return ssl_log_to_string(simulation.logs.ssl)


@pytest.fixture(scope="module")
def x509_text(simulation):
    return x509_log_to_string(simulation.logs.x509)


def _batch(kind, text, on_error=ErrorPolicy.STRICT):
    report = IngestReport()
    reader = read_ssl_log if kind == "ssl" else read_x509_log
    records = reader(
        io.StringIO(text), report=report, path=f"{kind}.log", on_error=on_error
    )
    return records, report


def _chunked(kind, text, size, **kwargs):
    decoder = TailDecoder(kind, path=f"{kind}.log", **kwargs)
    records = []
    for start in range(0, len(text), size):
        records.extend(decoder.feed(text[start:start + size]))
    records.extend(decoder.finish())
    return records, decoder.report


def _report_key(report):
    d = report.to_dict()
    d.pop("issues", None)
    return d


class TestChunkedParity:
    @pytest.mark.parametrize("size", [1, 7, 80, 4096])
    @pytest.mark.parametrize("kind", ["ssl", "x509"])
    def test_any_chunking_matches_batch(
        self, kind, size, ssl_text, x509_text
    ):
        text = ssl_text if kind == "ssl" else x509_text
        expect_records, expect_report = _batch(kind, text)
        records, report = _chunked(kind, text, size)
        assert records == expect_records
        assert _report_key(report) == _report_key(expect_report)

    @pytest.mark.parametrize("fast_path", ["auto", "off"])
    def test_fast_and_slow_paths_agree(self, ssl_text, fast_path):
        expect_records, _ = _batch("ssl", ssl_text)
        records, _ = _chunked("ssl", ssl_text, 100, fast_path=fast_path)
        assert records == expect_records

    def test_malformed_line_skipped_like_batch(self, simulation):
        text = log_header_text("ssl")
        text += format_ssl_row(simulation.logs.ssl[0]) + "\n"
        text += "garbage\twith\ttoo\tfew\tfields\n"
        text += format_ssl_row(simulation.logs.ssl[1]) + "\n"
        records, report = _chunked(
            "ssl", text, 9, on_error=ErrorPolicy.SKIP
        )
        assert records == [simulation.logs.ssl[0], simulation.logs.ssl[1]]
        assert report.rows_dropped == 1


class TestMidWriteRead:
    """Satellite: a read that lands mid-write must defer the partial
    trailing line, not drop or miscount it."""

    def test_unterminated_row_is_buffered_not_counted(self, simulation):
        row = format_ssl_row(simulation.logs.ssl[0])
        decoder = TailDecoder("ssl", path="ssl.log")
        assert decoder.feed(log_header_text("ssl")) == []
        half = row[: len(row) // 2]
        assert decoder.feed(half) == []
        assert decoder.pending == half
        assert decoder.report.rows_ok == 0
        assert decoder.report.rows_dropped == 0

    def test_completion_yields_the_full_record(self, simulation):
        row = format_ssl_row(simulation.logs.ssl[0])
        decoder = TailDecoder("ssl", path="ssl.log")
        decoder.feed(log_header_text("ssl"))
        decoder.feed(row[:10])
        records = decoder.feed(row[10:] + "\n")
        assert records == [simulation.logs.ssl[0]]
        assert decoder.pending == ""
        assert decoder.report.rows_ok == 1

    def test_finish_flushes_truncated_final_line(self, simulation):
        """EOF with a pending partial row == the batch reader's
        truncated-final-line semantics: dropped *and accounted*."""
        row = format_ssl_row(simulation.logs.ssl[0])
        decoder = TailDecoder("ssl", path="ssl.log", on_error=ErrorPolicy.SKIP)
        decoder.feed(log_header_text("ssl"))
        decoder.feed(row[: len(row) // 2])  # writer died mid-row
        records = decoder.finish()
        assert records == []
        expect_records, expect_report = _batch(
            "ssl", log_header_text("ssl") + row[: len(row) // 2],
            on_error=ErrorPolicy.SKIP,
        )
        assert expect_records == []
        assert _report_key(decoder.report) == _report_key(expect_report)

    def test_feed_after_finish_rejected(self):
        decoder = TailDecoder("ssl")
        decoder.finish()
        with pytest.raises(ValueError):
            decoder.feed("x")


class TestStateRoundTrip:
    def test_mid_stream_state_resumes_exactly(self, ssl_text):
        expect_records, expect_report = _batch("ssl", ssl_text)
        cut = len(ssl_text) * 2 // 3
        first = TailDecoder("ssl", path="ssl.log")
        records = first.feed(ssl_text[:cut])
        state = first.state_dict()

        second = TailDecoder("ssl", path="ssl.log", count_file=False)
        second.load_state(state)
        second.report.files_read = first.report.files_read
        second.report.rows_ok = first.report.rows_ok
        records += second.feed(ssl_text[cut:])
        records += second.finish()
        assert records == expect_records
        assert second.report.rows_ok == expect_report.rows_ok

    def test_kind_mismatch_rejected(self):
        state = TailDecoder("ssl").state_dict()
        with pytest.raises(ValueError, match="kind"):
            TailDecoder("x509").load_state(state)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TailDecoder("dns")
