"""Tests for the error-policy reader: strict context, skip, quarantine."""

import datetime as dt
import io

import pytest

from repro.zeek import (
    ErrorPolicy,
    IngestReport,
    SslRecord,
    TsvFormatError,
    X509Record,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    write_ssl_log,
    write_x509_log,
)

UTC = dt.timezone.utc

#: Serialized logs carry 7 header lines (#separator … #types), so the
#: first data row is line 8.
FIRST_DATA_LINE = 8


def _ssl_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        uid="CABCDEF",
        id_orig_h="10.0.0.1",
        id_orig_p=51515,
        id_resp_h="192.0.2.1",
        id_resp_p=443,
        version="TLSv12",
        cipher="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
        server_name="example.com",
        established=True,
        cert_chain_fuids=("F1",),
        client_cert_chain_fuids=(),
        validation_status="ok",
    )
    base.update(overrides)
    return SslRecord(**base)


def _x509_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        fuid="F1",
        fingerprint="ab" * 32,
        version=3,
        serial="0A1B",
        subject="CN=example.com,O=Example",
        issuer="CN=Issuing CA,O=Example Trust",
        not_valid_before=dt.datetime(2022, 6, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2023, 6, 1, tzinfo=UTC),
        key_alg="rsaEncryption",
        sig_alg="sha256WithRSAEncryption",
        key_length=2048,
        san_dns=("example.com",),
        san_uri=(),
        san_email=(),
        san_ip=(),
    )
    base.update(overrides)
    return X509Record(**base)


def _ssl_text(records=None):
    out = io.StringIO()
    write_ssl_log(records if records is not None else [_ssl_record()], out)
    return out.getvalue()


def _x509_text(records=None):
    out = io.StringIO()
    write_x509_log(records if records is not None else [_x509_record()], out)
    return out.getvalue()


def _mutate_line(text: str, line_number: int, mutate) -> str:
    """Apply `mutate` to one 1-indexed line of serialized log text."""
    lines = text.split("\n")
    lines[line_number - 1] = mutate(lines[line_number - 1])
    return "\n".join(lines)


def _read_ssl(text, policy, report=None, path="ssl.log"):
    return read_ssl_log(
        io.StringIO(text), on_error=policy, report=report, path=path
    )


class TestErrorPolicyEnum:
    def test_coerce_accepts_strings_and_members(self):
        assert ErrorPolicy.coerce("skip") is ErrorPolicy.SKIP
        assert ErrorPolicy.coerce(ErrorPolicy.STRICT) is ErrorPolicy.STRICT

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown error policy"):
            ErrorPolicy.coerce("lenient")

    def test_leniency_and_capture_flags(self):
        assert not ErrorPolicy.STRICT.lenient
        assert ErrorPolicy.SKIP.lenient and not ErrorPolicy.SKIP.captures_raw
        assert ErrorPolicy.QUARANTINE.captures_raw


class TestStrictContext:
    """Strict stays fail-fast, but every error names path/line/field."""

    def test_bad_field_carries_full_context(self):
        text = _mutate_line(
            _ssl_text(), FIRST_DATA_LINE,
            lambda line: line.replace("51515", "51x15"),
        )
        with pytest.raises(TsvFormatError) as excinfo:
            _read_ssl(text, ErrorPolicy.STRICT, path="/logs/ssl.log")
        err = excinfo.value
        assert err.path == "/logs/ssl.log"
        assert err.line_number == FIRST_DATA_LINE
        assert err.field == "id.orig_p"
        assert "/logs/ssl.log" in str(err)
        assert f"line {FIRST_DATA_LINE}" in str(err)
        assert "id.orig_p" in str(err)

    def test_bad_time_is_wrapped_not_raw_valueerror(self):
        text = _mutate_line(
            _ssl_text(), FIRST_DATA_LINE,
            lambda line: "\t".join(["abc"] + line.split("\t")[1:]),
        )
        with pytest.raises(TsvFormatError, match="bad time value 'abc'") as excinfo:
            _read_ssl(text, ErrorPolicy.STRICT)
        assert excinfo.value.field == "ts"

    def test_overflowing_time_is_wrapped(self):
        text = _mutate_line(
            _ssl_text(), FIRST_DATA_LINE,
            lambda line: "\t".join(["1e400"] + line.split("\t")[1:]),
        )
        with pytest.raises(TsvFormatError, match="bad time value '1e400'"):
            _read_ssl(text, ErrorPolicy.STRICT)

    def test_short_row_names_first_missing_field(self):
        text = _mutate_line(
            _ssl_text(), FIRST_DATA_LINE,
            lambda line: "\t".join(line.split("\t")[:5]),
        )
        with pytest.raises(TsvFormatError) as excinfo:
            _read_ssl(text, ErrorPolicy.STRICT)
        assert excinfo.value.field == "id.resp_p"

    def test_truncated_final_line_raises_with_context(self):
        lines = _ssl_text().rstrip("\n").split("\n")
        assert lines.pop() == "#close"  # the crash loses the footer too
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        with pytest.raises(TsvFormatError, match="truncated") as excinfo:
            _read_ssl("\n".join(lines), ErrorPolicy.STRICT)
        assert excinfo.value.line_number == FIRST_DATA_LINE
        assert excinfo.value.path == "ssl.log"

    def test_path_header_mismatch_names_path_field(self):
        text = _ssl_text().replace("#path\tssl", "#path\tconn")
        with pytest.raises(TsvFormatError) as excinfo:
            _read_ssl(text, ErrorPolicy.STRICT)
        assert excinfo.value.field == "#path"

    def test_reordered_fields_still_raise_under_strict(self):
        corrupted = _swap_first_two_columns(_ssl_text())
        with pytest.raises(TsvFormatError) as excinfo:
            _read_ssl(corrupted, ErrorPolicy.STRICT)
        assert excinfo.value.field == "#fields"


def _swap_first_two_columns(text: str) -> str:
    lines = text.split("\n")
    out = []
    for line in lines:
        if line.startswith(("#fields\t", "#types\t")):
            tag, first, second, *rest = line.split("\t")
            out.append("\t".join([tag, second, first] + rest))
        elif line and not line.startswith("#"):
            first, second, *rest = line.split("\t")
            out.append("\t".join([second, first] + rest))
        else:
            out.append(line)
    return "\n".join(out)


class TestSkipPolicy:
    def test_bad_rows_are_dropped_and_counted(self):
        records = [
            _ssl_record(uid=f"C{i}", ts=dt.datetime(2023, 1, 1 + i, tzinfo=UTC))
            for i in range(4)
        ]
        text = _mutate_line(
            _ssl_text(records), FIRST_DATA_LINE + 1,
            lambda line: line.replace("51515", "5x515"),
        )
        report = IngestReport()
        kept = _read_ssl(text, ErrorPolicy.SKIP, report)
        assert [r.uid for r in kept] == ["C0", "C2", "C3"]
        assert report.rows_ok == 3
        assert report.rows_dropped == 1
        assert report.rows_total == 4
        assert report.dropped_by_category == {"bad-field": 1}
        assert report.dropped_by_path == {"ssl.log": 1}
        assert report.drop_rate == pytest.approx(0.25)

    def test_skip_does_not_capture_raw(self):
        text = _mutate_line(
            _ssl_text(), FIRST_DATA_LINE,
            lambda line: line.replace("51515", "5x515"),
        )
        report = IngestReport()
        _read_ssl(text, ErrorPolicy.SKIP, report)
        (issue,) = report.issues
        assert issue.raw is None
        assert issue.field == "id.orig_p"
        assert report.quarantined == []

    def test_garbage_line_dropped_as_cell_count(self):
        text = _ssl_text()
        lines = text.split("\n")
        lines.insert(FIRST_DATA_LINE - 1, "�GARBLE�NO�TABS")
        report = IngestReport()
        kept = _read_ssl("\n".join(lines), ErrorPolicy.SKIP, report)
        assert len(kept) == 1
        assert report.dropped_by_category == {"cell-count": 1}

    def test_truncated_final_line_dropped_and_flagged(self):
        records = [_ssl_record(uid="C0"), _ssl_record(uid="C1")]
        text = ssl_log_to_string(records)
        lines = text.rstrip("\n").split("\n")
        assert lines[-1] == "#close"
        lines.pop()  # the crash also loses #close
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        report = IngestReport()
        kept = _read_ssl("\n".join(lines), ErrorPolicy.SKIP, report)
        assert [r.uid for r in kept] == ["C0"]
        assert report.truncated_final_lines == 1
        assert report.files_missing_close == 1
        assert report.dropped_by_category == {"truncated-final-line": 1}

    def test_missing_close_alone_is_not_an_error(self):
        text = _ssl_text().replace("#close\n", "")
        report = IngestReport()
        kept = _read_ssl(text, ErrorPolicy.SKIP, report)
        assert len(kept) == 1
        assert report.rows_dropped == 0
        assert report.files_missing_close == 1
        # Strict tolerates it too: a missing footer loses no data.
        assert len(_read_ssl(text, ErrorPolicy.STRICT)) == 1

    def test_reordered_fields_recovered_losslessly(self):
        records = [_ssl_record(uid="C0"), _ssl_record(uid="C1", established=False)]
        corrupted = _swap_first_two_columns(ssl_log_to_string(records))
        report = IngestReport()
        kept = _read_ssl(corrupted, ErrorPolicy.SKIP, report)
        assert kept == records
        assert report.rows_dropped == 0
        assert report.header_recoveries == 1
        assert any(i.category == "reordered-fields" for i in report.issues)

    def test_path_mismatch_rejects_whole_file(self):
        text = _ssl_text().replace("#path\tssl", "#path\tconn")
        report = IngestReport()
        kept = _read_ssl(text, ErrorPolicy.SKIP, report)
        assert kept == []
        assert report.rows_dropped == 1
        assert any(i.category == "path-mismatch" for i in report.issues)


class TestQuarantinePolicy:
    def test_raw_lines_are_captured(self):
        bad = None

        def flip(line):
            nonlocal bad
            bad = line.replace("51515", "5x515")
            return bad

        text = _mutate_line(_ssl_text(), FIRST_DATA_LINE, flip)
        report = IngestReport()
        _read_ssl(text, ErrorPolicy.QUARANTINE, report, path="a/ssl.log")
        (issue,) = report.quarantined
        assert issue.raw == bad
        assert issue.path == "a/ssl.log"
        assert issue.line_number == FIRST_DATA_LINE
        assert issue.category == "bad-field"
        assert issue.to_dict()["raw"] == bad

    def test_issue_cap_keeps_counters_exact(self):
        report = IngestReport(max_recorded_issues=2)
        for n in range(5):
            report.record_drop(
                path="ssl.log", line_number=n + 8, category="bad-field",
                reason="x", raw="line",
            )
        assert report.rows_dropped == 5
        assert len(report.issues) == 2
        assert report.issues_truncated


class TestValidationStatusRoundTrip:
    """'-' (unset) vs '(empty)' (observed empty) must survive the cycle."""

    @pytest.mark.parametrize("status", [None, "", "ok", "self signed certificate"])
    def test_round_trip(self, status):
        record = _ssl_record(validation_status=status)
        (back,) = _read_ssl(_ssl_text([record]), ErrorPolicy.STRICT)
        assert back.validation_status == status
        assert back == record


class TestX509Reader:
    def test_bad_key_length_context(self):
        text = _x509_text().replace("\t2048\t", "\t2O48\t")
        report = IngestReport()
        kept = read_x509_log(
            io.StringIO(text), on_error=ErrorPolicy.QUARANTINE,
            report=report, path="x509.log",
        )
        assert kept == []
        (issue,) = report.issues
        assert issue.field == "certificate.key_length"
        with pytest.raises(TsvFormatError) as excinfo:
            read_x509_log(io.StringIO(text), path="x509.log")
        assert excinfo.value.field == "certificate.key_length"

    def test_report_merges_across_files(self):
        report = IngestReport()
        _read_ssl(_ssl_text(), ErrorPolicy.SKIP, report, path="ssl.log")
        read_x509_log(
            io.StringIO(_x509_text()), on_error=ErrorPolicy.SKIP,
            report=report, path="x509.log",
        )
        assert report.files_read == 2
        assert report.rows_ok == 2
        assert report.clean


class TestReportMerge:
    def test_merge_folds_counters_and_issues(self):
        a, b = IngestReport(), IngestReport()
        a.record_row()
        b.record_drop(
            path="x509.log", line_number=9, category="bad-field", reason="r"
        )
        b.files_read = 1
        b.truncated_final_lines = 1
        a.merge(b)
        assert a.rows_total == 2
        assert a.rows_dropped == 1
        assert a.truncated_final_lines == 1
        assert a.dropped_by_path == {"x509.log": 1}
        assert len(a.issues) == 1
