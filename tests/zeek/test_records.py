"""Direct tests for SslRecord / X509Record derived properties."""

import datetime as dt

import pytest

from repro.zeek import SslRecord, X509Record, make_file_uid

UTC = dt.timezone.utc
TS = dt.datetime(2023, 6, 1, tzinfo=UTC)


def _x509(**overrides):
    base = dict(
        ts=TS, fuid="F1", fingerprint="ff", version=3, serial="0A",
        subject="CN=subject", issuer="CN=Issuer CA,O=Issuer Org",
        not_valid_before=dt.datetime(2023, 1, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2024, 1, 1, tzinfo=UTC),
        key_alg="rsaEncryption", sig_alg="sha256WithRSAEncryption",
        key_length=2048,
    )
    base.update(overrides)
    return X509Record(**base)


class TestFileUid:
    def test_prefix_and_length(self):
        assert make_file_uid(0) == "F" + "0" * 16
        assert make_file_uid(61).endswith("z")

    def test_unique(self):
        assert len({make_file_uid(i) for i in range(500)}) == 500

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_file_uid(-5)


class TestSslRecordProperties:
    def test_leaf_fuids(self):
        record = SslRecord(
            ts=TS, uid="C1", id_orig_h="10.0.0.1", id_orig_p=1, id_resp_h="2.2.2.2",
            id_resp_p=443, version="TLSv12", cipher="x", server_name=None,
            established=True, cert_chain_fuids=("Fa", "Fb"),
            client_cert_chain_fuids=("Fc",),
        )
        assert record.server_leaf_fuid == "Fa"
        assert record.client_leaf_fuid == "Fc"
        assert record.is_mutual

    def test_empty_chains(self):
        record = SslRecord(
            ts=TS, uid="C1", id_orig_h="10.0.0.1", id_orig_p=1, id_resp_h="2.2.2.2",
            id_resp_p=443, version="TLSv12", cipher="x", server_name=None,
            established=True,
        )
        assert record.server_leaf_fuid is None
        assert not record.is_mutual


class TestX509RecordProperties:
    def test_dn_accessors(self):
        record = _x509(subject="CN=dev-1,O=Acme,UID=ab1cd")
        assert record.subject_cn == "dev-1"
        assert record.subject_org == "Acme"
        assert record.subject_uid == "ab1cd"
        assert record.issuer_cn == "Issuer CA"
        assert record.issuer_org == "Issuer Org"

    def test_missing_dn_components(self):
        record = _x509(subject="", issuer="CN=only-cn")
        assert record.subject_cn is None
        assert record.issuer_org is None

    def test_validity_days(self):
        record = _x509()
        assert record.validity_days == pytest.approx(365.0)

    def test_inverted(self):
        record = _x509(
            not_valid_before=dt.datetime(2024, 1, 1, tzinfo=UTC),
            not_valid_after=dt.datetime(2023, 1, 1, tzinfo=UTC),
        )
        assert record.has_inverted_validity
        assert record.validity_days < 0

    def test_expiry_helpers(self):
        record = _x509()
        after = dt.datetime(2024, 2, 1, tzinfo=UTC)
        before = dt.datetime(2023, 6, 1, tzinfo=UTC)
        assert record.expired_at(after)
        assert not record.expired_at(before)
        assert record.days_expired(after) == pytest.approx(31.0)
        # Naive datetimes are treated as UTC.
        assert record.expired_at(dt.datetime(2024, 2, 1))

    def test_eku_helpers(self):
        absent = _x509()
        assert absent.allows_server_auth and absent.allows_client_auth
        server_only = _x509(eku=("serverAuth",))
        assert server_only.allows_server_auth
        assert not server_only.allows_client_auth
        both = _x509(eku=("serverAuth", "clientAuth"))
        assert both.allows_server_auth and both.allows_client_auth
