"""Property tests for the batch engine's buffer splitter.

The vectorized reader consumes whole read buffers and re-derives record
boundaries itself — chunk-spanning rows, headers and ``#close`` footers
mid-buffer, CRLF endings, a missing final newline, escape sequences cut
in half by a chunk seam. These properties pin that splitting to the
line-at-a-time reference reader: for *any* chunk size the record
sequence, IngestReport, and strict-mode error context are identical.

Also home to the memo-bound property (ISSUE satellite 5): per-column
interning memos were sized for per-line filling, and the bulk decoder
must respect the same cap even when a single batch holds more distinct
values than the memo may ever store.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.zeek.tsv as tsv
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    IngestOptions,
    IngestReport,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)
from tests.differential import KINDS, POLICIES, _error_context, read_one

_LOGS = TrafficGenerator(
    ScenarioConfig(seed=23, months=2, connections_per_month=80)
).generate().logs
TEXTS = {
    "ssl": ssl_log_to_string(_LOGS.ssl),
    "x509": x509_log_to_string(_LOGS.x509),
}
#: Two rotations concatenated: the second header block and the first
#: ``#close`` footer land mid-buffer at almost every chunk size.
ROTATED = {kind: text + text for kind, text in TEXTS.items()}

#: A string column per schema whose cells we can salt with escapes.
_ESCAPE_COLUMN = {"ssl": 8, "x509": 5}  # server_name / certificate.subject


def _with_escapes(text: str, column: int) -> str:
    """Every data row gets a cell full of ``\\xNN`` escapes — including
    ``\\x09`` (an escaped *tab*, which must never split a cell) and a
    trailing lone backslash a chunk seam could cut in half."""
    out = []
    for i, line in enumerate(text.split("\n")):
        if line and not line.startswith("#"):
            cells = line.split("\t")
            cells[column] = f"esc\\x09tab\\x2c\\x5c{i}.example\\x0a\\\\"
            line = "\t".join(cells)
        out.append(line)
    return "\n".join(out)


ESCAPED = {
    kind: _with_escapes(TEXTS[kind], _ESCAPE_COLUMN[kind]) for kind in KINDS
}


def _assert_matches_reference(kind, text, policy, chunk):
    slow_records, slow_report, slow_error = read_one(kind, text, policy, "off")
    records, report, error = read_one(
        kind, text, policy, "batch", chunk_chars=chunk
    )
    assert _error_context(error) == _error_context(slow_error), chunk
    assert [repr(r) for r in records] == [repr(r) for r in slow_records], chunk
    assert report.to_dict() == slow_report.to_dict(), chunk


@pytest.mark.parametrize("kind", KINDS)
@given(
    chunk=st.integers(1, 400),
    final_newline=st.booleans(),
    keep_close=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_chunk_size_invariance(kind, chunk, final_newline, keep_close):
    """Arbitrary chunk sizes slice records anywhere — mid-cell, mid-row,
    mid-header — and must reassemble to the reference result, with and
    without the ``#close`` footer and the final newline."""
    text = TEXTS[kind]
    if not keep_close:
        text = "".join(
            line
            for line in text.splitlines(keepends=True)
            if not line.startswith("#close")
        )
    if not final_newline:
        text = text.rstrip("\n")
    for policy in POLICIES:
        _assert_matches_reference(kind, text, policy, chunk)


@pytest.mark.parametrize("kind", KINDS)
@given(chunk=st.integers(16, 1 << 14))
@settings(max_examples=20, deadline=None)
def test_close_footer_mid_buffer(kind, chunk):
    """Concatenated rotations: a ``#close`` footer followed by a fresh
    header block appears in the middle of a read buffer, exactly as at
    an archive rotation point."""
    for policy in POLICIES:
        _assert_matches_reference(kind, ROTATED[kind], policy, chunk)


@pytest.mark.parametrize("kind", KINDS)
@given(chunk=st.integers(1, 300))
@settings(max_examples=15, deadline=None)
def test_embedded_escapes_survive_any_split(kind, chunk):
    """Cells stuffed with ``\\xNN`` escapes (including escaped tabs and
    a trailing lone backslash) decode identically no matter where the
    chunk seam cuts them."""
    for policy in POLICIES:
        _assert_matches_reference(kind, ESCAPED[kind], policy, chunk)


@pytest.mark.parametrize("kind", KINDS)
@given(chunk=st.integers(1, 300))
@settings(max_examples=10, deadline=None)
def test_crlf_stream_equivalent(kind, chunk):
    """A raw CRLF stream (no newline translation, ``\\r`` reaches the
    decoder) is handled identically by both tiers at any chunk size."""
    text = TEXTS[kind].replace("\n", "\r\n")
    for policy in POLICIES:
        _assert_matches_reference(kind, text, policy, chunk)


@pytest.mark.parametrize("kind", KINDS)
def test_crlf_file_round_trip(tmp_path, kind):
    """A CRLF file read through the normal text-mode entry point (where
    universal newlines translate ``\\r\\n``) batch-decodes to exactly
    the reference records of the LF original."""
    text = TEXTS[kind]
    path = tmp_path / f"{kind}.log"
    path.write_bytes(text.replace("\n", "\r\n").encode("utf-8"))
    reader = {"ssl": read_ssl_log, "x509": read_x509_log}[kind]
    with path.open("r", encoding="utf-8") as source:
        records = reader(
            source,
            IngestOptions(fast_path="batch", batch_chunk_chars=777),
        )
    reference = read_one(kind, text, "strict", "off")[0]
    assert [repr(r) for r in records] == [repr(r) for r in reference]


class TestMemoBounds:
    """Satellite 5: the bulk decoder honours the per-line memo cap."""

    def _batch_read(self, kind, text, cap, monkeypatch):
        monkeypatch.setattr(tsv, "_MEMO_MAX_ENTRIES", cap)
        opts = IngestOptions(
            on_error="strict",
            fast_path="batch",
            report=IngestReport(),
            path=f"{kind}.log",
        )
        source = io.StringIO(text)
        reader = tsv._batch_reader(kind, source, opts)
        return reader, reader.read(source)

    @pytest.mark.parametrize("kind", KINDS)
    def test_mid_batch_eviction_keeps_cache_bounded(self, kind, monkeypatch):
        """A single batch holding far more distinct values than the cap
        must not grow any memo cache past it — and must still decode
        byte-identically to the reference."""
        cap = 8
        text = TEXTS[kind]
        reference = read_one(kind, text, "strict", "off")[0]
        reader, records = self._batch_read(kind, text, cap, monkeypatch)
        assert [repr(r) for r in records] == [repr(r) for r in reference]
        # The cap genuinely bites mid-batch: a memoized column carries
        # more distinct texts than the memo may ever hold.
        if kind == "ssl":
            distinct = {r.server_name for r in reference}
        else:
            distinct = {r.subject for r in reference}
        assert len(distinct) > cap
        memos = [
            memo
            for per_permutation in reader._batch_memos.values()
            for memo in per_permutation
        ]
        assert memos, "batch decode should have compiled column memos"
        for memo in memos:
            assert len(memo.cache) <= cap

    @pytest.mark.parametrize("kind", KINDS)
    def test_bounded_cache_still_deduplicates(self, kind, monkeypatch):
        """With a roomy cap the same corpus fills the caches normally —
        the bound changes memory behaviour only, never output."""
        reader, records = self._batch_read(
            kind, TEXTS[kind], 1 << 16, monkeypatch
        )
        reference = read_one(kind, TEXTS[kind], "strict", "off")[0]
        assert [repr(r) for r in records] == [repr(r) for r in reference]
        caches = [
            memo.cache
            for per_permutation in reader._batch_memos.values()
            for memo in per_permutation
        ]
        assert any(cache for cache in caches)
