"""Tests for DN string formatting/parsing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.zeek.dn import dn_common_name, dn_get, dn_organization, format_dn, parse_dn


class TestFormatParse:
    def test_simple(self):
        dn = format_dn([("CN", "leaf"), ("O", "Acme"), ("C", "US")])
        assert dn == "CN=leaf,O=Acme,C=US"
        assert parse_dn(dn) == [("CN", "leaf"), ("O", "Acme"), ("C", "US")]

    def test_escaped_comma(self):
        dn = format_dn([("O", "Acme, Inc.")])
        assert dn == "O=Acme\\, Inc."
        assert parse_dn(dn) == [("O", "Acme, Inc.")]

    def test_escaped_plus_and_quotes(self):
        pairs = [("CN", 'a+b"c')]
        assert parse_dn(format_dn(pairs)) == pairs

    def test_leading_space_escaped(self):
        pairs = [("CN", " padded")]
        assert parse_dn(format_dn(pairs)) == pairs

    def test_empty_dn(self):
        assert parse_dn("") == []
        assert format_dn([]) == ""

    def test_component_without_equals(self):
        assert parse_dn("garbage") == [("", "garbage")]

    def test_accessors(self):
        dn = "CN=leaf,O=Acme,OU=Eng"
        assert dn_common_name(dn) == "leaf"
        assert dn_organization(dn) == "Acme"
        assert dn_get(dn, "OU") == "Eng"
        assert dn_get(dn, "C") is None

    def test_first_value_wins(self):
        assert dn_common_name("CN=a,CN=b") == "a"


dn_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1,
    max_size=30,
)


@given(st.lists(st.tuples(st.sampled_from(["CN", "O", "OU", "C", "UID"]), dn_values),
                min_size=1, max_size=5))
def test_round_trip_property(pairs):
    assert parse_dn(format_dn(pairs)) == pairs


def test_interop_with_x509_names():
    """Names rendered by the x509 layer parse back with the zeek parser."""
    from repro.x509 import Name

    name = Name.build(common_name="web, site+x", organization="Acme; <Inc>")
    parsed = dict(parse_dn(name.rfc4514()))
    assert parsed["CN"] == "web, site+x"
    assert parsed["O"] == "Acme; <Inc>"
