"""Filesystem hygiene for the zeek suite.

Every test in this package runs with its working directory inside
pytest's managed ``tmp_path`` tree, so anything that writes a relative
path — a quarantine spill, a rotated-log scratch dir, a stray debug
dump — lands in a per-test directory that pytest garbage-collects,
never in the invoking checkout.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
