"""Tests for dynamic protocol detection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tls import TlsVersion
from repro.zeek import encode_client_hello_preamble, looks_like_tls
from repro.zeek.dpd import extract_sni


class TestLooksLikeTls:
    def test_client_hello_detected(self):
        data = encode_client_hello_preamble()
        assert looks_like_tls(data)

    @pytest.mark.parametrize("version", list(TlsVersion))
    def test_all_versions_detected(self, version):
        assert looks_like_tls(encode_client_hello_preamble(version=version))

    def test_http_not_detected(self):
        assert not looks_like_tls(b"GET / HTTP/1.1\r\nHost: example.com\r\n")

    def test_ssh_not_detected(self):
        assert not looks_like_tls(b"SSH-2.0-OpenSSH_9.0\r\n")

    def test_smtp_banner_not_detected(self):
        assert not looks_like_tls(b"220 mail.example.com ESMTP\r\n")

    def test_short_data_not_detected(self):
        assert not looks_like_tls(b"\x16\x03\x01")

    def test_wrong_handshake_type_not_detected(self):
        data = bytearray(encode_client_hello_preamble())
        data[5] = 0x02  # ServerHello instead of ClientHello
        assert not looks_like_tls(bytes(data))

    def test_implausible_record_length_rejected(self):
        assert not looks_like_tls(b"\x16\x03\x01\xff\xff\x01")

    def test_detection_is_port_independent(self):
        """DPD looks at bytes only; there is no port anywhere in the API."""
        data = encode_client_hello_preamble(sni="filewave.campus.example")
        assert looks_like_tls(data)  # would be seen on port 20017 just as well

    @given(st.binary(max_size=64))
    def test_never_crashes(self, data):
        looks_like_tls(data)


class TestExtractSni:
    def test_sni_round_trip(self):
        data = encode_client_hello_preamble(sni="vpn.university.edu")
        assert extract_sni(data) == "vpn.university.edu"

    def test_no_sni(self):
        data = encode_client_hello_preamble(sni=None)
        assert extract_sni(data) is None

    def test_non_tls_returns_none(self):
        assert extract_sni(b"GET / HTTP/1.1\r\n") is None

    def test_bad_random_length_rejected(self):
        with pytest.raises(ValueError):
            encode_client_hello_preamble(random_bytes=b"\x00" * 16)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=40))
    def test_sni_round_trip_property(self, sni):
        data = encode_client_hello_preamble(sni=sni)
        assert extract_sni(data) == sni
