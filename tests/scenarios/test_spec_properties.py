"""Property-based tests for the scenario layer contracts.

Three contracts the rest of the suite leans on:

* serialization is lossless — a ScenarioSpec survives TOML and JSON
  round-trips unchanged (including through the 3.10 fallback parser);
* generation is deterministic — the same spec and seed produce
  byte-identical logs and identical ground truth;
* timeline composition is associative, and events always apply in
  month order regardless of how timelines were concatenated.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import spec_io
from repro.netsim.compose import ScenarioGenerator
from repro.netsim.layers import (
    EVENT_KINDS,
    DummyIssuerCohort,
    EventTimeline,
    GuardicoreSpec,
    MalignantSpec,
    ScenarioSpec,
    SharedCertCohort,
    SiteSpec,
    TimelineEvent,
    Topology,
    TrustEcosystem,
    WorkloadMix,
)
from repro.zeek import write_ssl_log, write_x509_log

fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
site_names = st.sampled_from(
    ("campus", "enterprise", "iot-fleet", "branch office", "lab-42")
)
org_names = st.sampled_from(
    ("Internet Widgits Pty Ltd", "Acme Co", "Example Inc", "Unspecified")
)


@st.composite
def workloads(draw):
    ports = draw(st.sampled_from(
        ({443: 1.0}, {443: 0.8, 8883: 0.2}, {(50000, 51000): 0.1, 443: 0.9})
    ))
    return WorkloadMix(
        tls13_share=draw(fractions),
        mutual_share_start=draw(fractions),
        mutual_share_end=draw(fractions),
        mutual_inbound_fraction=draw(fractions),
        outbound_mutual_ports=dict(ports),
        inbound_associations={
            "Unknown": (1.0, "Private - MissingIssuer", draw(fractions),
                        "Public", draw(fractions)),
        },
        outbound_slds={"amazonaws.com": 0.6, "rapid7.com": 0.4},
    )


@st.composite
def trusts(draw):
    cohorts = ()
    if draw(st.booleans()):
        cohorts = (DummyIssuerCohort(
            direction=draw(st.sampled_from(("in", "out"))),
            side=draw(st.sampled_from(("client", "server"))),
            issuer_org=draw(org_names),
            server_group="com",
            involved_servers=draw(st.integers(1, 50)),
            involved_clients=draw(st.integers(1, 500)),
            v1_fraction=draw(fractions),
        ),)
    shared = ()
    if draw(st.booleans()):
        shared = (SharedCertCohort(
            direction="in",
            sld=draw(st.one_of(st.none(), st.just("tablodash.com"))),
            issuer_org=draw(org_names),
            issuer_public=False,
            clients=draw(st.integers(1, 300)),
            activity_days=draw(st.integers(1, 700)),
        ),)
    return TrustEcosystem(
        interception_fraction=draw(fractions) * 0.05,
        interception_issuer_count=draw(st.integers(0, 4)),
        outbound_sld_cas={
            "amazonaws.com": ("public", "amazon-m01"),
            "rapid7.com": ("public", "digicert-geotrust"),
        },
        dummy_cohorts=cohorts,
        shared_cohorts=shared,
        guardicore=draw(st.one_of(
            st.none(), st.builds(GuardicoreSpec)
        )),
        malignant=draw(st.one_of(
            st.none(),
            st.builds(
                MalignantSpec,
                servers=st.integers(1, 8),
                connections=st.integers(1, 100),
            ),
        )),
    )


@st.composite
def timelines(draw, months=12, site_pool=("campus",)):
    events = draw(st.lists(
        st.builds(
            TimelineEvent,
            month=st.integers(1, months - 1),
            kind=st.sampled_from(EVENT_KINDS),
            site=st.one_of(st.none(), st.sampled_from(site_pool)),
            params=st.just({}),
        ),
        max_size=4,
    ))
    return EventTimeline(tuple(events))


@st.composite
def scenario_specs(draw):
    names = draw(st.lists(site_names, min_size=1, max_size=3, unique=True))
    months = draw(st.integers(2, 12))
    sites = tuple(
        SiteSpec(
            name=name,
            connections_per_month=draw(st.integers(20, 200)),
            cohort_scale=draw(st.sampled_from((0.01, 0.05, 1.0))),
            workload="w",
            trust="t",
            cert_volume_per_1k=draw(st.one_of(
                st.none(), st.just((1.0, 900.0))
            )),
        )
        for name in names
    )
    return ScenarioSpec(
        name=draw(st.sampled_from(("alpha", "beta riot", "g-17"))),
        title="property spec",
        seed=draw(st.integers(0, 2**20)),
        months=months,
        topology=Topology(sites),
        workloads={"w": draw(workloads())},
        trusts={"t": draw(trusts())},
        timeline=draw(timelines(months=months, site_pool=tuple(names))),
    )


@given(scenario_specs())
def test_toml_round_trip_lossless(spec):
    text = spec.to_toml()
    assert ScenarioSpec.from_toml(text) == spec


@given(scenario_specs())
def test_subset_parser_agrees_with_tomllib(spec):
    """The 3.10 fallback parser reads exactly what ``dumps`` writes,
    byte-for-byte equal to the stdlib parser's interpretation."""
    text = spec.to_toml()
    assert spec_io.subset_loads(text) == spec_io.loads(text)
    assert ScenarioSpec.from_dict(spec_io.subset_loads(text)) == spec


@given(scenario_specs())
def test_json_round_trip_lossless(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def _serialize(logs) -> str:
    buffer = io.StringIO()
    write_ssl_log(logs.ssl, buffer)
    write_x509_log(logs.x509, buffer)
    return buffer.getvalue()


@settings(max_examples=6, deadline=None)
@given(scenario_specs())
def test_generation_deterministic_under_fixed_seed(spec):
    tiny = spec.scaled(months=min(spec.months, 3), connections_per_month=25)
    first = ScenarioGenerator(tiny).generate()
    second = ScenarioGenerator(tiny).generate()
    assert _serialize(first.logs) == _serialize(second.logs)
    assert first.ground_truth.to_dict() == second.ground_truth.to_dict()


@given(
    timelines(site_pool=("a", "b")),
    timelines(site_pool=("a", "b")),
    timelines(site_pool=("a", "b")),
)
def test_timeline_composition_associative(first, second, third):
    left = first.combined(second).combined(third)
    right = first.combined(second.combined(third))
    for site in ("a", "b"):
        assert left.for_site(site) == right.for_site(site)


@given(timelines(site_pool=("a", "b")), st.sampled_from(("a", "b")))
def test_for_site_is_month_ordered_and_complete(timeline, site):
    events = timeline.for_site(site)
    months = [event.month for event in events]
    assert months == sorted(months)
    mine = [e for e in timeline.events if e.site in (None, site)]
    assert sorted(months) == sorted(e.month for e in mine)


@given(scenario_specs(), st.integers(2, 30))
def test_scaled_keeps_events_in_range(spec, new_months):
    scaled = spec.scaled(months=new_months)
    assert scaled.months == new_months
    for event in scaled.timeline.events:
        assert 1 <= event.month < new_months
    scaled.validate()
