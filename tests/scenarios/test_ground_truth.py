"""Ground-truth verification of every library scenario.

Each scenario plants machine-readable truth (cohort certificates,
monthly totals, interception expectations, event signatures); the
verifier runs the full pipeline — ingest, §3.2 interception filter, the
complete analysis registry — and checks the recovered statistics
against what was planted. Tier-1 runs every scenario at a small scale;
the authored full sizes run under the ``slow`` marker.
"""

import pytest

from repro.core import protocol
from repro.netsim.compose import ScenarioGenerator
from repro.netsim.scenarios import list_scenarios, load_spec
from repro.netsim.verify import verify_scenario

#: (scenario, tier-1 downscale kwargs). ``None`` = run authored size.
SMALL = {
    "campus": dict(months=4, connections_per_month=300),
    "federation": dict(months=5, connections_per_month=250),
    "events": dict(months=8, connections_per_month=300),
    "adversarial": None,  # already the smallest spec
}


def _generate(name, scale_kwargs):
    spec = load_spec(name)
    if scale_kwargs:
        spec = spec.scaled(**scale_kwargs)
    return ScenarioGenerator(spec).generate()


def test_library_covers_expected_scenarios():
    assert set(SMALL) <= set(list_scenarios())


@pytest.mark.parametrize("name", sorted(SMALL))
def test_scenario_ground_truth_small(name):
    result = _generate(name, SMALL[name])
    report = verify_scenario(result)
    assert report.ok, report.summary()
    assert report.checks, "verifier produced no checks"


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SMALL))
def test_scenario_ground_truth_full(name):
    result = _generate(name, None)
    report = verify_scenario(result)
    assert report.ok, report.summary()


def test_full_analysis_registry_runs_on_every_scenario():
    """Every registered analysis completes on every library scenario
    (the verifier only *checks* a subset; all 24 must at least run)."""
    from repro.core.dataset import MtlsDataset
    from repro.core.enrich import Enricher

    names = set(protocol.analysis_names())
    assert len(names) >= 24
    for name in sorted(SMALL):
        result = _generate(name, SMALL[name])
        dataset = MtlsDataset.from_logs(result.logs)
        enricher = Enricher(
            bundle=result.trust_bundle, ct_log=result.ct_log,
            filter_interception=True,
        )
        enriched = enricher.enrich(dataset)
        partials = protocol.run_analyses(enriched, raw=dataset)
        assert set(partials) == names
        for partial in partials.values():
            partial.result()  # must not raise


def test_ground_truth_json_is_serializable():
    import json

    result = _generate("adversarial", SMALL["adversarial"])
    document = json.loads(result.ground_truth.to_json())
    assert document["scenario"] == "adversarial"
    assert document["months"] == result.ground_truth.months
    assert "malignant" in document["cohorts"]
    assert sum(document["monthly_total"]) == sum(
        result.ground_truth.monthly_total
    )


def test_federation_merges_disjoint_uid_spaces():
    result = _generate("federation", SMALL["federation"])
    uids = [row.uid for row in result.logs.ssl]
    assert len(uids) == len(set(uids)), "uid collision across sites"
    fuids = [row.fuid for row in result.logs.x509]
    assert len(fuids) == len(set(fuids)), "fuid collision across sites"
    # Logs are globally ordered, as a border monitor would emit them.
    ts = [row.ts for row in result.logs.ssl]
    assert ts == sorted(ts)


def test_events_scenario_plants_both_event_kinds():
    result = _generate("events", SMALL["events"])
    kinds = {event["kind"] for event in result.ground_truth.events}
    assert kinds == {"ca_compromise", "mass_expiry"}
