"""The campus spec is the legacy generator, byte for byte.

The calibrated constants moved from code into ``scenarios/campus.toml``;
this differential proves the move lossless: running the campus spec
through the scenario layers produces *byte-identical* serialized logs to
the legacy ``ScenarioConfig`` → ``TrafficGenerator`` path under the same
seed, at several scales and seeds.
"""

import io

import pytest

from repro.netsim.compose import ScenarioGenerator
from repro.netsim.generator import TrafficGenerator
from repro.netsim.scenario import ScenarioConfig
from repro.netsim.scenarios import load_spec
from repro.zeek import write_ssl_log, write_x509_log


def _serialize(logs) -> str:
    buffer = io.StringIO()
    write_ssl_log(logs.ssl, buffer)
    write_x509_log(logs.x509, buffer)
    return buffer.getvalue()


@pytest.mark.parametrize(
    ("months", "cpm", "seed"),
    [(3, 200, 7), (4, 300, 5), (6, 400, 11)],
)
def test_campus_spec_matches_legacy_generator(months, cpm, seed):
    legacy = TrafficGenerator(
        ScenarioConfig(seed=seed, months=months, connections_per_month=cpm)
    ).generate()
    spec = load_spec("campus").scaled(
        months=months, connections_per_month=cpm, seed=seed
    )
    layered = ScenarioGenerator(spec).generate()
    assert _serialize(layered.logs) == _serialize(legacy.logs)
    assert layered.trust_bundle == legacy.trust_bundle


@pytest.mark.slow
def test_campus_spec_matches_legacy_generator_full_scale():
    legacy = TrafficGenerator(ScenarioConfig()).generate()
    layered = ScenarioGenerator(load_spec("campus")).generate()
    assert _serialize(layered.logs) == _serialize(legacy.logs)


def test_campus_spec_round_trips_through_toml():
    """Serializing the loaded campus spec back to TOML and reloading it
    yields the same generator stream (the file is self-describing)."""
    spec = load_spec("campus").scaled(months=3, connections_per_month=150)
    reloaded = type(spec).from_toml(spec.to_toml())
    first = ScenarioGenerator(spec).generate()
    second = ScenarioGenerator(reloaded).generate()
    assert _serialize(first.logs) == _serialize(second.logs)
