"""CLI smoke tests for `repro scenario`."""

import json

from repro.cli import main


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("campus", "federation", "events", "adversarial"):
        assert name in out


def test_scenario_describe(capsys):
    assert main(["scenario", "describe", "events"]) == 0
    out = capsys.readouterr().out
    assert "ca_compromise" in out
    assert "mass_expiry" in out


def test_scenario_generate_writes_artifacts(tmp_path, capsys):
    out_dir = tmp_path / "run"
    assert main([
        "scenario", "generate", "adversarial", "--out", str(out_dir),
        "--months", "3", "--cpm", "100",
    ]) == 0
    assert (out_dir / "ssl.log").exists()
    assert (out_dir / "x509.log").exists()
    assert (out_dir / "trust_bundle.txt").exists()
    truth = json.loads((out_dir / "ground_truth.json").read_text())
    assert truth["scenario"] == "adversarial"
    assert truth["months"] == 3
    assert "malignant" in truth["cohorts"]


def test_scenario_generate_from_spec_file(tmp_path, capsys):
    from repro.netsim.scenarios import load_spec

    spec_file = tmp_path / "custom.toml"
    spec_file.write_text(load_spec("adversarial").to_toml())
    out_dir = tmp_path / "run"
    assert main([
        "scenario", "generate", "--spec", str(spec_file),
        "--out", str(out_dir), "--months", "2", "--cpm", "80",
    ]) == 0
    truth = json.loads((out_dir / "ground_truth.json").read_text())
    assert truth["scenario"] == "adversarial"


def test_scenario_generate_feeds_analyze(tmp_path, capsys):
    """The README flow: scenario generate --rotated, then analyze."""
    out_dir = tmp_path / "run"
    assert main([
        "scenario", "generate", "events", "--out", str(out_dir),
        "--months", "4", "--cpm", "150", "--rotated",
    ]) == 0
    capsys.readouterr()
    assert main([
        "analyze", str(out_dir),
        "--trust-bundle", str(out_dir / "trust_bundle.txt"),
        "--table", "figure1",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
