"""StoreQueryEngine vs StreamingAnalyzer: same answers, no records."""

import datetime as dt

import pytest

from repro.core.streaming import StreamingAnalyzer
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.store import StoreQueryEngine, pack_archive
from repro.zeek import IngestOptions, SslRecord, write_ssl_log, write_x509_log
from repro.zeek.files import TsvDirectorySource, write_rotated_logs

UTC = dt.timezone.utc
OPTIONS = IngestOptions()


def _streaming_over(archive, bundle):
    analyzer = StreamingAnalyzer(bundle)
    tsv = TsvDirectorySource(archive)
    first = True
    for month in tsv.months():
        shard = tsv.read_month(month, OPTIONS)
        if first:
            # x509 is broadcast (identical per shard); feed it once.
            analyzer.add_x509(shard.x509)
            first = False
        analyzer.add_ssl(shard.ssl)
    return analyzer


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    simulation = TrafficGenerator(
        ScenarioConfig(seed=21, months=4, connections_per_month=200)
    ).generate()
    write_rotated_logs(simulation.logs, directory)
    store = pack_archive(directory, tmp_path_factory.mktemp("store"))
    return directory, store, simulation.trust_bundle


class TestAgainstStreaming:
    def test_monthly_mutual_share(self, campaign):
        archive, store, bundle = campaign
        engine = StoreQueryEngine(store)
        assert engine.monthly_mutual_share() == \
            _streaming_over(archive, bundle).monthly_mutual_share()

    def test_tls13_blindspot(self, campaign):
        archive, store, bundle = campaign
        engine = StoreQueryEngine(store)
        assert engine.tls13_blindspot() == \
            _streaming_over(archive, bundle).tls13_blindspot()


def _conn(i, ts, *, established=True, mutual=False, version="TLSv12"):
    return SslRecord(
        ts=ts,
        uid=f"C{i}",
        id_orig_h=f"10.0.0.{i % 7}",
        id_orig_p=50000 + i,
        id_resp_h=f"192.0.2.{i % 5}",
        id_resp_p=443,
        version=version,
        cipher="TLS_AES_128_GCM_SHA256",
        server_name="example.com",
        established=established,
        cert_chain_fuids=("FS",) if mutual else (),
        client_cert_chain_fuids=("FC",) if mutual else (),
        validation_status="ok",
    )


class TestMixedMonthShard:
    """A hand-rotated file carrying out-of-window rows must fall back to
    exact per-row month attribution (and still match streaming)."""

    def test_mixed_months_in_one_file(self, tmp_path):
        rows = [
            _conn(0, dt.datetime(2022, 1, 10, tzinfo=UTC), mutual=True),
            _conn(1, dt.datetime(2022, 1, 20, tzinfo=UTC), version="TLSv13"),
            # Out-of-window: February rows inside the January file.
            _conn(2, dt.datetime(2022, 2, 2, tzinfo=UTC)),
            _conn(3, dt.datetime(2022, 2, 3, tzinfo=UTC), established=False),
        ]
        archive = tmp_path / "archive"
        archive.mkdir()
        with (archive / "ssl.2022-01.log").open("w") as out:
            write_ssl_log(rows, out)
        with (archive / "x509.2022-01.log").open("w") as out:
            write_x509_log([], out)
        store = pack_archive(archive, tmp_path / "store")
        engine = StoreQueryEngine(store)
        shares = {s.label: s for s in engine.monthly_mutual_share()}
        assert shares["2022-01"].total_connections == 2
        assert shares["2022-01"].mutual_connections == 1
        assert shares["2022-02"].total_connections == 1
        assert shares["2022-02"].mutual_connections == 0
        blindspot = engine.tls13_blindspot()
        assert blindspot.total_connections == 3
        assert blindspot.tls13_connections == 1
