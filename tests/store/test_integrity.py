"""Store integrity end to end: checksummed codec v2, verify-as-served
(header at map time, sections on first access), transparent healing,
fsck detect/quarantine/repair (byte-identical), legacy v1 read-compat,
and the fsck CLI exit codes."""

import json
import warnings
import zlib

import pytest

from repro.cli import EXIT_CORRUPT, main
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.netsim.faults import flip_byte
from repro.store import (
    CODEC_VERSION,
    LEGACY_STORE_FORMAT,
    MAGIC,
    MAGIC_V1,
    MANIFEST_NAME,
    STORE_FORMAT,
    ColumnarStoreSource,
    ColumnTable,
    StoreIntegrityError,
    ensure_store,
    fsck,
    pack_archive,
    pack_table,
)
from repro.zeek import IngestOptions
from repro.zeek.files import write_rotated_logs

OPTIONS = IngestOptions()


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    logs = TrafficGenerator(
        ScenarioConfig(seed=17, months=3, connections_per_month=120)
    ).generate().logs
    write_rotated_logs(logs, directory)
    return directory


@pytest.fixture()
def store_dir(archive, tmp_path):
    store = tmp_path / "store"
    pack_archive(archive, store)
    return store


def _shard_file(store_dir):
    manifest = json.loads((store_dir / MANIFEST_NAME).read_text("utf-8"))
    month = manifest["months"][0]
    return manifest["ssl_shards"][month]["file"], month


def _flip_in_section(path, section="cipher"):
    """Flip one byte guaranteed to land inside a named section (a
    seeded flip could hit alignment padding, which only the file-level
    CRC sees — deterministic tests want a section hit)."""
    table = ColumnTable(path.read_bytes(), verify=False)
    _, offset, length = table._sections[section]
    assert length > 0
    flip_byte(path, offset)


def _downgrade_to_v1(store_dir):
    """Convert a packed v2 store into a genuine legacy v1 store:
    re-encode every column file at codec v1 and strip the manifest's
    integrity fields."""
    manifest = json.loads((store_dir / MANIFEST_NAME).read_text("utf-8"))
    entries = list(manifest["ssl_shards"].values()) + manifest["x509"]["files"]
    for entry in entries:
        path = store_dir / entry["file"]
        table = ColumnTable(path.read_bytes())
        path.write_bytes(pack_table(table.kind, table.records(), codec_version=1))
        entry.pop("bytes", None)
        entry.pop("crc32", None)
    manifest["format"] = LEGACY_STORE_FORMAT
    manifest["codec"] = 1
    (store_dir / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )


class TestCodecV2:
    def test_packed_files_carry_v2_magic(self, store_dir):
        filename, _ = _shard_file(store_dir)
        assert (store_dir / filename).read_bytes()[:8] == MAGIC

    def test_manifest_records_bytes_and_crc(self, store_dir):
        manifest = json.loads((store_dir / MANIFEST_NAME).read_text("utf-8"))
        assert manifest["format"] == STORE_FORMAT
        assert manifest["codec"] == CODEC_VERSION
        entries = list(manifest["ssl_shards"].values()) + manifest["x509"]["files"]
        assert entries
        for entry in entries:
            blob = (store_dir / entry["file"]).read_bytes()
            assert entry["bytes"] == len(blob)
            assert entry["crc32"] == zlib.crc32(blob)

    def test_header_crc_detects_header_damage(self, store_dir):
        filename, _ = _shard_file(store_dir)
        path = store_dir / filename
        flip_byte(path, 20)  # inside the JSON header, past the framing
        with pytest.raises(StoreIntegrityError, match="header") as excinfo:
            ColumnTable(path.read_bytes(), name=filename)
        assert excinfo.value.findings == ["header"]

    def test_section_crc_detects_content_damage(self, store_dir):
        filename, _ = _shard_file(store_dir)
        _flip_in_section(store_dir / filename, "cipher")
        # Verification is lazy (first access of each section): opening
        # the damaged file succeeds, serving undamaged columns succeeds,
        # serving the damaged one raises before a value is decoded.
        table = ColumnTable((store_dir / filename).read_bytes(), name=filename)
        assert table.raw("version")
        with pytest.raises(StoreIntegrityError, match="cipher") as excinfo:
            table.raw("cipher")
        assert "cipher" in excinfo.value.findings
        with pytest.raises(StoreIntegrityError, match="cipher"):
            table.records()

    def test_verify_false_defers_to_caller(self, store_dir):
        filename, _ = _shard_file(store_dir)
        _flip_in_section(store_dir / filename, "cipher")
        table = ColumnTable((store_dir / filename).read_bytes(), verify=False)
        assert "cipher" in table.verify()

    def test_clean_file_verifies_empty(self, store_dir):
        filename, _ = _shard_file(store_dir)
        assert ColumnTable((store_dir / filename).read_bytes()).verify() == []


class TestVerifyOnMap:
    def test_bit_flip_detected_before_records(self, archive, store_dir):
        filename, month = _shard_file(store_dir)
        _flip_in_section(store_dir / filename)
        source = ColumnarStoreSource(store_dir, heal=False)
        with pytest.raises(StoreIntegrityError, match="cipher"):
            source.read_month(month, OPTIONS)

    def test_truncation_detected_by_size(self, store_dir):
        filename, month = _shard_file(store_dir)
        path = store_dir / filename
        path.write_bytes(path.read_bytes()[:-16])
        source = ColumnarStoreSource(store_dir, heal=False)
        with pytest.raises(StoreIntegrityError, match="size") as excinfo:
            source.ssl_table(month)
        assert excinfo.value.findings == ["size"]

    def test_missing_file_detected(self, store_dir):
        filename, month = _shard_file(store_dir)
        (store_dir / filename).unlink()
        source = ColumnarStoreSource(store_dir, heal=False)
        with pytest.raises(StoreIntegrityError, match="missing"):
            source.ssl_table(month)


class TestHealing:
    def test_damaged_shard_healed_transparently(self, archive, store_dir):
        filename, month = _shard_file(store_dir)
        clean = (store_dir / filename).read_bytes()
        _flip_in_section(store_dir / filename)
        source = ColumnarStoreSource(store_dir)  # heal=True default
        expected = ColumnarStoreSource(store_dir, verify=False, heal=False)
        shard = source.read_month(month, OPTIONS)
        assert source.healed == [filename]
        # The rebuild is byte-identical to the pre-damage file (packing
        # is deterministic) and the records round-trip.
        assert (store_dir / filename).read_bytes() == clean
        assert shard.ssl == expected.read_month(month, OPTIONS).ssl
        # The damaged original is evidence, parked not deleted.
        assert (store_dir / "quarantine" / filename).exists()

    def test_missing_file_healed(self, store_dir):
        filename, month = _shard_file(store_dir)
        clean = (store_dir / filename).read_bytes()
        (store_dir / filename).unlink()
        source = ColumnarStoreSource(store_dir)
        source.ssl_table(month)
        assert source.healed == [filename]
        assert (store_dir / filename).read_bytes() == clean
        # Nothing to quarantine: the file was simply gone.
        assert not (store_dir / "quarantine" / filename).exists()

    def test_query_engine_heals_mid_query(self, store_dir):
        from repro.store import StoreQueryEngine

        filename, _ = _shard_file(store_dir)
        clean = (store_dir / filename).read_bytes()
        _flip_in_section(store_dir / filename, "__flags__")
        source = ColumnarStoreSource(store_dir)
        # Section damage surfaces lazily, inside the engine's column
        # fetch; serve() quarantines, rebuilds, and refetches without
        # the query observing a damaged byte.
        shares = StoreQueryEngine(source).monthly_mutual_share()
        assert source.healed == [filename]
        assert (store_dir / filename).read_bytes() == clean
        pristine = ColumnarStoreSource(store_dir)
        assert StoreQueryEngine(pristine).monthly_mutual_share() == shares
        assert pristine.healed == []

    def test_heal_fails_when_source_drifted(self, archive, store_dir):
        filename, month = _shard_file(store_dir)
        _flip_in_section(store_dir / filename)
        manifest_path = store_dir / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text("utf-8"))
        manifest["source"]["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        source = ColumnarStoreSource(store_dir)
        with pytest.raises(StoreIntegrityError):
            source.read_month(month, OPTIONS)


class TestFsck:
    def test_clean_store_is_ok(self, store_dir):
        result = fsck(store_dir)
        assert result.ok
        assert not result.unverifiable
        assert all(f.status == "ok" for f in result.findings)

    def test_detects_and_names_damaged_section(self, store_dir):
        filename, _ = _shard_file(store_dir)
        _flip_in_section(store_dir / filename, "cipher")
        result = fsck(store_dir)
        assert not result.ok
        (damaged,) = result.damaged
        assert damaged.file == filename
        assert "cipher" in damaged.detail

    def test_detects_truncation(self, store_dir):
        filename, _ = _shard_file(store_dir)
        path = store_dir / filename
        path.write_bytes(path.read_bytes()[:-8])
        (damaged,) = fsck(store_dir).damaged
        assert "truncated/torn" in damaged.detail

    def test_detects_missing(self, store_dir):
        filename, _ = _shard_file(store_dir)
        (store_dir / filename).unlink()
        (damaged,) = fsck(store_dir).damaged
        assert damaged.status == "missing"

    def test_repair_round_trip_byte_identical(self, store_dir):
        filename, _ = _shard_file(store_dir)
        clean = (store_dir / filename).read_bytes()
        _flip_in_section(store_dir / filename)
        result = fsck(store_dir, repair=True)
        assert result.ok
        assert result.repaired == [filename]
        assert result.quarantined == [filename]
        assert (store_dir / filename).read_bytes() == clean
        # A second pass finds nothing.
        again = fsck(store_dir)
        assert again.ok and all(f.status == "ok" for f in again.findings)

    def test_repair_without_source_reports_unrepaired(self, store_dir, tmp_path):
        filename, _ = _shard_file(store_dir)
        _flip_in_section(store_dir / filename)
        result = fsck(store_dir, source=tmp_path / "gone", repair=True)
        assert not result.ok
        assert result.unrepaired == [filename]

    def test_missing_manifest_raises(self, tmp_path):
        from repro.store import StoreFormatError

        (tmp_path / "empty").mkdir()
        with pytest.raises(StoreFormatError, match="manifest"):
            fsck(tmp_path / "empty")

    def test_corrupt_manifest_raises(self, store_dir):
        from repro.store import StoreFormatError

        (store_dir / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        with pytest.raises(StoreFormatError, match="root of trust"):
            fsck(store_dir)


class TestLegacyV1:
    def test_v1_files_read_without_checksums(self, store_dir):
        filename, _ = _shard_file(store_dir)
        before = ColumnTable((store_dir / filename).read_bytes()).records()
        _downgrade_to_v1(store_dir)
        blob = (store_dir / filename).read_bytes()
        assert blob[:8] == MAGIC_V1
        table = ColumnTable(blob)
        assert not table.integrity
        assert table.verify() == []  # nothing to check
        assert table.records() == before

    def test_source_warns_on_legacy_store(self, store_dir):
        _, month = _shard_file(store_dir)
        _downgrade_to_v1(store_dir)
        with pytest.warns(RuntimeWarning, match="no integrity checksums"):
            source = ColumnarStoreSource(store_dir)
        assert not source.integrity
        assert source.read_month(month, OPTIONS).ssl

    def test_fsck_reports_unverifiable(self, store_dir):
        _downgrade_to_v1(store_dir)
        result = fsck(store_dir)
        assert result.ok  # no *detected* damage ...
        assert result.unverifiable  # ... but nothing was checkable

    def test_ensure_store_upgrades_legacy(self, archive, store_dir):
        _downgrade_to_v1(store_dir)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            source = ensure_store(archive, store_dir)
        assert source.integrity
        manifest = json.loads((store_dir / MANIFEST_NAME).read_text("utf-8"))
        assert manifest["format"] == STORE_FORMAT


class TestFsckCli:
    def test_clean_store_exits_zero(self, store_dir, capsys):
        assert main(["fsck", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "Store integrity" in out
        assert "store verified" in out

    def test_damage_exits_corrupt(self, store_dir, capsys):
        filename, _ = _shard_file(store_dir)
        _flip_in_section(store_dir / filename)
        assert main(["fsck", str(store_dir)]) == EXIT_CORRUPT
        captured = capsys.readouterr()
        assert "damaged" in captured.out
        assert "--repair" in captured.err

    def test_repair_exits_zero_and_heals(self, store_dir, capsys):
        filename, _ = _shard_file(store_dir)
        clean = (store_dir / filename).read_bytes()
        _flip_in_section(store_dir / filename)
        assert main(["fsck", str(store_dir), "--repair"]) == 0
        assert "repaired" in capsys.readouterr().out
        assert (store_dir / filename).read_bytes() == clean

    def test_not_a_store_exits_one(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path)]) == 1
        assert "manifest" in capsys.readouterr().err
