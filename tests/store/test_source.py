"""ColumnarStoreSource: equivalence with the TSV source, manifest
fingerprint invalidation, policy mismatch rejection, worker pickling."""

import gzip
import json
import pickle

import pytest

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.store import (
    MANIFEST_NAME,
    ColumnarStoreSource,
    StoreFormatError,
    ensure_store,
    pack_archive,
)
from repro.zeek import IngestOptions
from repro.zeek.files import TsvDirectorySource, write_rotated_logs


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    logs = TrafficGenerator(
        ScenarioConfig(seed=13, months=3, connections_per_month=150)
    ).generate().logs
    write_rotated_logs(logs, directory)
    return directory


@pytest.fixture()
def store(archive, tmp_path):
    return pack_archive(archive, tmp_path / "store")


OPTIONS = IngestOptions()


class TestEquivalence:
    def test_months_match(self, archive, store):
        assert store.months() == TsvDirectorySource(archive).months()

    def test_read_month_identical(self, archive, store):
        tsv = TsvDirectorySource(archive)
        for month in tsv.months():
            expected = tsv.read_month(month, OPTIONS)
            got = store.read_month(month, OPTIONS)
            assert got.ssl == expected.ssl
            assert got.x509 == expected.x509
            assert got.ssl_report.to_dict() == expected.ssl_report.to_dict()
            assert got.x509_report.to_dict() == expected.x509_report.to_dict()

    def test_read_all_identical(self, archive, store):
        tsv = TsvDirectorySource(archive)
        ssl_a, x509_a, report_a = tsv.read_all(OPTIONS)
        ssl_b, x509_b, report_b = store.read_all(OPTIONS)
        assert ssl_b == ssl_a
        assert x509_b == x509_a
        assert report_b.to_dict() == report_a.to_dict()

    def test_unknown_month(self, store):
        with pytest.raises(KeyError, match="1999-01"):
            store.read_month("1999-01", OPTIONS)

    def test_pickle_round_trip(self, store):
        clone = pickle.loads(pickle.dumps(store))
        month = store.months()[0]
        assert clone.read_month(month, OPTIONS).ssl == \
            store.read_month(month, OPTIONS).ssl


class TestEnsureStore:
    def test_reuses_matching_store(self, archive, tmp_path):
        store_dir = tmp_path / "store"
        pack_archive(archive, store_dir)
        manifest = store_dir / MANIFEST_NAME
        before = manifest.stat().st_mtime_ns
        ensure_store(archive, store_dir)
        assert manifest.stat().st_mtime_ns == before

    def test_repacks_on_archive_change(self, archive, tmp_path):
        store_dir = tmp_path / "store"
        pack_archive(archive, store_dir)
        fingerprint = ColumnarStoreSource(store_dir).manifest["source"][
            "fingerprint"
        ]
        # Any byte-level change to any log file must invalidate — here a
        # recompression that leaves the *content* identical but not the
        # bytes (the fingerprint is over the stored bytes).
        victim = sorted(archive.glob("ssl.*.log.gz"))[0]
        original = victim.read_bytes()
        recompressed = gzip.compress(gzip.decompress(original), compresslevel=1)
        assert recompressed != original
        victim.write_bytes(recompressed)
        try:
            ensure_store(archive, store_dir)
            refreshed = ColumnarStoreSource(store_dir).manifest["source"][
                "fingerprint"
            ]
            assert refreshed != fingerprint
        finally:
            victim.write_bytes(original)

    def test_repacks_on_policy_change(self, archive, tmp_path):
        store_dir = tmp_path / "store"
        pack_archive(archive, store_dir, IngestOptions())
        skip = IngestOptions(on_error="skip")
        source = ensure_store(archive, store_dir, skip)
        assert source.manifest["options"] == {"on_error": "skip"}

    def test_repacks_corrupt_manifest(self, archive, tmp_path):
        store_dir = tmp_path / "store"
        pack_archive(archive, store_dir)
        (store_dir / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        source = ensure_store(archive, store_dir)
        assert source.months() == TsvDirectorySource(archive).months()


class TestRejection:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreFormatError, match="manifest"):
            ColumnarStoreSource(tmp_path)

    def test_format_mismatch(self, store):
        store_dir = store.directory
        path = f"{store_dir}/{MANIFEST_NAME}"
        manifest = json.loads(open(path, encoding="utf-8").read())
        manifest["format"] = "columnar-store/v0"
        with open(path, "w", encoding="utf-8") as out:
            json.dump(manifest, out)
        with pytest.raises(StoreFormatError, match="store format"):
            ColumnarStoreSource(store_dir)

    def test_codec_mismatch(self, store):
        path = f"{store.directory}/{MANIFEST_NAME}"
        manifest = json.loads(open(path, encoding="utf-8").read())
        manifest["codec"] = 999
        with open(path, "w", encoding="utf-8") as out:
            json.dump(manifest, out)
        with pytest.raises(StoreFormatError, match="codec"):
            ColumnarStoreSource(store.directory)

    def test_policy_mismatch_on_read(self, store):
        with pytest.raises(StoreFormatError, match="packed under"):
            store.read_month(store.months()[0], IngestOptions(on_error="skip"))

    def test_identity_differs_by_policy(self, archive, tmp_path):
        a = pack_archive(archive, tmp_path / "a", IngestOptions())
        b = pack_archive(archive, tmp_path / "b", IngestOptions(on_error="skip"))
        assert a.identity() != b.identity()
