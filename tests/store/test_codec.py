"""Columnar codec round-trip: pack → read → records equal originals.

The property tests drive records through the *TSV writer and reader
first* — the codec's contract is equality with TSV-parsed originals,
escapes and all — then pack those and compare the materialized result
field for field (and repr for repr).
"""

import datetime as dt
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    FLAG_CLIENT_CHAIN,
    FLAG_ESTABLISHED,
    FLAG_SERVER_CHAIN,
    FLAG_TLS13,
    FLAG_RESUMED,
    ColumnTable,
    StoreFormatError,
    pack_table,
)
from repro.store import codec as codec_module
from repro.zeek import (
    SslRecord,
    X509Record,
    read_ssl_log,
    read_x509_log,
    write_ssl_log,
    write_x509_log,
)

UTC = dt.timezone.utc

#: Every escape-relevant character the TSV layer handles, plus
#: multi-byte UTF-8.
_NASTY = "\t\n\\,-() aé中🔒=."
nasty_text = st.text(alphabet=st.sampled_from(_NASTY), min_size=1, max_size=12)
timestamps = st.integers(
    min_value=0, max_value=4_102_444_800_000_000  # 1970..2100, microseconds
).map(lambda n: dt.datetime(1970, 1, 1, tzinfo=UTC) + dt.timedelta(microseconds=n))


def _ssl_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        uid="CABCDEF",
        id_orig_h="10.0.0.1",
        id_orig_p=51515,
        id_resp_h="192.0.2.1",
        id_resp_p=443,
        version="TLSv12",
        cipher="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
        server_name="example.com",
        established=True,
        cert_chain_fuids=("F1", "F2"),
        client_cert_chain_fuids=("F3",),
        validation_status="ok",
    )
    base.update(overrides)
    return SslRecord(**base)


def _x509_record(**overrides):
    base = dict(
        ts=dt.datetime(2023, 1, 1, 12, 0, 0, tzinfo=UTC),
        fuid="F1",
        fingerprint="ab" * 32,
        version=3,
        serial="0A1B",
        subject="CN=example.com,O=Example",
        issuer="CN=Issuing CA,O=Example Trust",
        not_valid_before=dt.datetime(2022, 6, 1, tzinfo=UTC),
        not_valid_after=dt.datetime(2023, 6, 1, tzinfo=UTC),
        key_alg="rsaEncryption",
        sig_alg="sha256WithRSAEncryption",
        key_length=2048,
        san_dns=("example.com", "www.example.com"),
        san_uri=(),
        san_email=(),
        san_ip=("192.0.2.5",),
        basic_constraints_ca=False,
    )
    base.update(overrides)
    return X509Record(**base)


def _tsv_round_trip(kind, records):
    buffer = io.StringIO()
    writer, reader = {
        "ssl": (write_ssl_log, read_ssl_log),
        "x509": (write_x509_log, read_x509_log),
    }[kind]
    writer(records, buffer)
    buffer.seek(0)
    return reader(buffer)


def _pack_round_trip(kind, records):
    return ColumnTable(pack_table(kind, records)).records()


def assert_codec_equals_tsv(kind, records):
    originals = _tsv_round_trip(kind, records)
    decoded = _pack_round_trip(kind, originals)
    assert decoded == originals
    assert [repr(r) for r in decoded] == [repr(r) for r in originals]


class TestSslRoundTrip:
    def test_empty_table(self):
        assert _pack_round_trip("ssl", []) == []

    def test_basic(self):
        assert_codec_equals_tsv("ssl", [_ssl_record()])

    def test_nullable_columns(self):
        # server_name None vs set; validation_status distinguishes the
        # empty string from unset — the codec must preserve all three.
        records = [
            _ssl_record(uid="C1", server_name=None, validation_status=None),
            _ssl_record(uid="C2", server_name="", validation_status=""),
            _ssl_record(uid="C3", server_name="x", validation_status="ok"),
        ]
        decoded = _pack_round_trip("ssl", records)
        assert decoded == records
        assert decoded[0].server_name is None
        assert decoded[0].validation_status is None
        assert decoded[1].server_name == ""
        assert decoded[1].validation_status == ""

    def test_escaped_fields(self):
        assert_codec_equals_tsv("ssl", [
            _ssl_record(server_name="weird\tname"),
            _ssl_record(server_name="multi\nline"),
            _ssl_record(cipher="back\\slash"),
        ])

    def test_empty_vs_missing_vectors(self):
        records = [
            _ssl_record(cert_chain_fuids=(), client_cert_chain_fuids=()),
            _ssl_record(cert_chain_fuids=("F",), client_cert_chain_fuids=()),
        ]
        decoded = _pack_round_trip("ssl", records)
        assert decoded[0].cert_chain_fuids == ()
        assert not decoded[0].is_mutual
        assert decoded[1].cert_chain_fuids == ("F",)

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                timestamps,
                st.one_of(st.none(), nasty_text),
                st.lists(nasty_text, max_size=3),
                st.lists(nasty_text, max_size=2),
                st.booleans(),
                st.booleans(),
                st.sampled_from(["TLSv12", "TLSv13", "TLSv10"]),
            ),
            max_size=12,
        )
    )
    def test_property_round_trip(self, rows):
        records = [
            _ssl_record(
                uid=f"C{i}", ts=ts, server_name=sni,
                cert_chain_fuids=tuple(chain),
                client_cert_chain_fuids=tuple(client_chain),
                established=established, resumed=resumed, version=version,
            )
            for i, (ts, sni, chain, client_chain, established, resumed,
                    version) in enumerate(rows)
        ]
        assert_codec_equals_tsv("ssl", records)


class TestX509RoundTrip:
    def test_basic(self):
        assert_codec_equals_tsv("x509", [_x509_record()])

    def test_nullable_bool(self):
        records = [
            _x509_record(fuid="F1", basic_constraints_ca=None),
            _x509_record(fuid="F2", basic_constraints_ca=True),
            _x509_record(fuid="F3", basic_constraints_ca=False),
        ]
        decoded = _pack_round_trip("x509", records)
        assert [r.basic_constraints_ca for r in decoded] == [None, True, False]

    def test_escaped_dn_and_san(self):
        assert_codec_equals_tsv("x509", [
            _x509_record(subject="CN=Smith\\, John,O=Acme"),
            _x509_record(san_dns=("a,b", "c"), eku=("serverAuth",)),
        ])

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                timestamps,
                nasty_text,
                st.lists(nasty_text, max_size=3),
                st.one_of(st.none(), st.booleans()),
                st.integers(-2**40, 2**40),
            ),
            max_size=10,
        )
    )
    def test_property_round_trip(self, rows):
        records = [
            _x509_record(
                fuid=f"F{i}", ts=ts, subject=subject,
                san_dns=tuple(san), basic_constraints_ca=ca,
                key_length=key_length,
            )
            for i, (ts, subject, san, ca, key_length) in enumerate(rows)
        ]
        assert_codec_equals_tsv("x509", records)


class TestDerivedColumns:
    def test_flags_bits(self):
        records = [
            _ssl_record(established=True, cert_chain_fuids=("F",),
                        client_cert_chain_fuids=("G",), version="TLSv13",
                        resumed=True),
            _ssl_record(established=False, cert_chain_fuids=(),
                        client_cert_chain_fuids=(), version="TLSv12",
                        resumed=False),
        ]
        table = ColumnTable(pack_table("ssl", records))
        flags = table.raw("__flags__")
        assert flags[0] == (FLAG_ESTABLISHED | FLAG_SERVER_CHAIN
                            | FLAG_CLIENT_CHAIN | FLAG_TLS13 | FLAG_RESUMED)
        assert flags[1] == 0

    def test_month_labels(self):
        records = [
            _ssl_record(uid="C1", ts=dt.datetime(2022, 3, 31, 23, 59, tzinfo=UTC)),
            _ssl_record(uid="C2", ts=dt.datetime(2022, 4, 1, 0, 0, tzinfo=UTC)),
        ]
        table = ColumnTable(pack_table("ssl", records))
        strings = table.pool()
        labels = [strings[i] for i in table.typed("__month__")]
        assert labels == ["2022-03", "2022-04"]


class TestRejection:
    def test_bad_magic(self):
        with pytest.raises(StoreFormatError, match="magic"):
            ColumnTable(b"NOTSTORE" + b"\x00" * 64)

    def test_truncated_header(self):
        image = pack_table("ssl", [_ssl_record()])
        with pytest.raises(StoreFormatError, match="truncated|corrupt"):
            ColumnTable(image[: len(image) // 2])

    def test_truncated_sections(self):
        image = pack_table("ssl", [_ssl_record()])
        with pytest.raises(StoreFormatError, match="truncated"):
            ColumnTable(image[:-16])

    def test_codec_version_mismatch(self, monkeypatch):
        image = pack_table("ssl", [_ssl_record()])
        monkeypatch.setattr(codec_module, "CODEC_VERSION", 999)
        with pytest.raises(StoreFormatError, match="codec version"):
            ColumnTable(image)

    def test_unknown_kind(self):
        with pytest.raises(StoreFormatError, match="unknown table kind"):
            pack_table("dns", [])

    def test_naive_datetime_rejected(self):
        record = _ssl_record(ts=dt.datetime(2023, 1, 1, 12, 0, 0))
        with pytest.raises(StoreFormatError, match="naive"):
            pack_table("ssl", [record])
