"""Differential suite over corpora: clean, corrupted, and end-to-end.

Every test runs the same input through the fast path and the reference
path and asserts total equivalence — the acceptance contract of the
fast ingest/enrich engine.
"""

import pytest

from repro.core.parallel import analyze_directory
from repro.core.streaming import StreamingAnalyzer
from repro.core.study import CampusStudy
from repro.netsim import FaultPlan, LogCorruptor, ScenarioConfig, TrafficGenerator
from repro.zeek.files import write_rotated_logs

from tests.differential import KINDS, POLICIES, assert_equivalent, corpus_texts

STUDY_CONFIG = ScenarioConfig(seed=11, months=3, connections_per_month=120)


@pytest.fixture(scope="module")
def texts():
    return corpus_texts()


@pytest.fixture(scope="module")
def corrupt_texts(texts):
    ssl_text, x509_text = texts
    corruptor = LogCorruptor(FaultPlan.uniform(0.05, seed=13))
    ssl_bad, x509_bad, _ = corruptor.corrupt_logs(ssl_text, x509_text)
    return ssl_bad, x509_bad


@pytest.fixture(scope="module")
def reordered_texts(texts):
    ssl_text, x509_text = texts
    corruptor = LogCorruptor(FaultPlan(seed=3, reorder_columns=True))
    ssl_bad, x509_bad, _ = corruptor.corrupt_logs(ssl_text, x509_text)
    return ssl_bad, x509_bad


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("kind", KINDS)
def test_clean_corpus(texts, kind, policy):
    assert_equivalent(kind, texts[KINDS.index(kind)], policy)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("kind", KINDS)
def test_corrupt_corpus(corrupt_texts, kind, policy):
    """Fault-injected logs: same drops, same quarantine captures, and —
    under strict — the same first error with identical context."""
    assert_equivalent(kind, corrupt_texts[KINDS.index(kind)], policy)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("kind", KINDS)
def test_reordered_columns(reordered_texts, kind, policy):
    """Permuted #fields headers compile a remapping decoder; strict
    rejects them identically on both paths."""
    assert_equivalent(kind, reordered_texts[KINDS.index(kind)], policy)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("kind", KINDS)
def test_headerless_tail(texts, kind, policy):
    """Rows with no #fields header at all, plus a truncated final line."""
    text = texts[KINDS.index(kind)]
    body = "\n".join(
        line for line in text.split("\n") if line and not line.startswith("#")
    )
    assert_equivalent(kind, body, policy)  # no trailing newline: truncated


# ---------------------------------------------------------------------------
# End-to-end: whole-pipeline equivalence (tables, reports, snapshots)
# ---------------------------------------------------------------------------


def _study(fast_path: str) -> CampusStudy:
    return CampusStudy(
        config=STUDY_CONFIG, on_error="skip", fast_path=fast_path
    )


@pytest.fixture(scope="module")
def study_pair():
    on, off = _study("on"), _study("off")
    on.run(), off.run()
    return on, off


def test_study_tables_identical(study_pair):
    on, off = study_pair
    on_tables = {t.title: t.render() for t in on.all_tables()}
    off_tables = {t.title: t.render() for t in off.all_tables()}
    assert on_tables == off_tables


def test_study_ingest_reports_identical(study_pair):
    on, off = study_pair
    assert (
        on.run().ingest_report.to_dict() == off.run().ingest_report.to_dict()
    )


def test_study_cache_metrics_present(study_pair):
    on, off = study_pair
    on.partials(), off.partials()
    counters = on.metrics.counters
    assert counters.get("certfacts.enrich.hits", 0) > 0
    assert counters.get("certfacts.enrich.misses", 0) > 0
    assert "certfacts.enrich.hits" not in off.metrics.counters


def test_sharded_campaign_identical(tmp_path):
    simulation = TrafficGenerator(STUDY_CONFIG).generate()
    archive = tmp_path / "archive"
    write_rotated_logs(simulation.logs, archive)

    def run(mode):
        campaign = analyze_directory(
            archive, simulation.trust_bundle, simulation.ct_log,
            on_error="skip", jobs=1, fast_path=mode,
        )
        return (
            {t.title: t.render() for t in campaign.tables()},
            campaign.ingest.to_dict(),
            campaign.dangling_fuid_refs,
        )

    on_tables, on_ingest, on_dangling = run("on")
    off_tables, off_ingest, off_dangling = run("off")
    assert on_tables == off_tables
    assert on_ingest == off_ingest
    assert on_dangling == off_dangling


def _streaming_views(analyzer: StreamingAnalyzer):
    return (
        analyzer.monthly_mutual_share(),
        analyzer.certificate_statistics(),
        analyzer.tls13_blindspot(),
        analyzer.connections_seen,
        analyzer.dropped_dangling_fuid,
    )


def test_streaming_identical_and_resumable():
    simulation = TrafficGenerator(STUDY_CONFIG).generate()
    logs, bundle = simulation.logs, simulation.trust_bundle
    half = len(logs.x509) // 2

    on = StreamingAnalyzer(bundle, fast_path="on")
    off = StreamingAnalyzer(bundle, fast_path="off")
    for analyzer in (on, off):
        analyzer.add_month(logs.ssl, logs.x509)
    assert _streaming_views(on) == _streaming_views(off)

    # Snapshot mid-stream with a warm cache, resume, finish: identical
    # to the uninterrupted run — including the cache counters.
    interrupted = StreamingAnalyzer(bundle, fast_path="on")
    interrupted.add_x509(logs.x509[:half])
    resumed = StreamingAnalyzer.from_snapshot(
        bundle, interrupted.to_snapshot()
    )
    resumed.add_x509(logs.x509[half:])
    resumed.add_ssl(logs.ssl)
    assert _streaming_views(resumed) == _streaming_views(on)
    resumed._sync_cache_metrics()
    on._sync_cache_metrics()
    assert {
        name: value
        for name, value in resumed.metrics.counters.items()
        if name.startswith("streaming.certfacts.")
    } == {
        name: value
        for name, value in on.metrics.counters.items()
        if name.startswith("streaming.certfacts.")
    }


def test_streaming_snapshot_preserves_fast_path_off():
    bundle = TrafficGenerator(STUDY_CONFIG).generate().trust_bundle
    off = StreamingAnalyzer(bundle, fast_path="off")
    snapshot = off.to_snapshot()
    assert snapshot["certfacts"] is None
    restored = StreamingAnalyzer.from_snapshot(bundle, snapshot)
    assert restored._fact_cache is None
    # Older snapshots never recorded the cache: restore to a cold one.
    snapshot.pop("certfacts")
    legacy = StreamingAnalyzer.from_snapshot(bundle, snapshot)
    assert legacy._fact_cache is not None and len(legacy._fact_cache) == 0
