"""Store-backed vs TSV-backed campaigns: byte-identical, end to end.

The columnar store promises that analyzing from packed columns gives
*exactly* what re-parsing the TSV archive gives: every registry table,
the merged ingest report, the dangling-fuid accounting, and the
deterministic metrics (counters and histograms — timers and gauges
measure the wall clock and are outside the equivalence contract, per
the metrics module docstring).
"""

import gzip

import pytest

from repro.core.parallel import analyze_directory
from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import IngestOptions
from repro.zeek.files import write_rotated_logs


@pytest.fixture(scope="module")
def simulation():
    return TrafficGenerator(
        ScenarioConfig(seed=29, months=4, connections_per_month=180)
    ).generate()


@pytest.fixture(scope="module")
def archive(simulation, tmp_path_factory):
    directory = tmp_path_factory.mktemp("archive")
    write_rotated_logs(simulation.logs, directory)
    return directory


def _run(simulation, directory, *, store=None, options=None, jobs=2):
    return analyze_directory(
        directory,
        bundle=simulation.trust_bundle,
        ct_log=simulation.ct_log,
        options=options or IngestOptions(),
        store=store,
        jobs=jobs,
    )


def _data_counters(registry):
    return {
        name: value
        for name, value in registry.counters.items()
        if not name.startswith("pipeline.")
    }


def _assert_campaigns_identical(baseline, stored):
    # All 24 registry analyses, rendered — the byte-identical claim.
    base_tables = {name: str(p.finalize()) for name, p in baseline.partials.items()}
    store_tables = {name: str(p.finalize()) for name, p in stored.partials.items()}
    assert store_tables.keys() == base_tables.keys()
    assert len(base_tables) >= 24
    for name in base_tables:
        assert store_tables[name] == base_tables[name], name
    # Ingest accounting: merged report and the dangling-fuid counter.
    assert stored.ingest.to_dict() == baseline.ingest.to_dict()
    assert stored.dangling_fuid_refs == baseline.dangling_fuid_refs
    assert stored.months == baseline.months
    # Deterministic metrics: data-derived counters and histograms merge
    # to the same values regardless of how records reached the workers.
    # The pipeline.* namespace is exempt by design — it measures exactly
    # *how* records reached the workers (a TSV source streams batches,
    # the mapped store loads whole shards), not what they contained.
    assert _data_counters(stored.metrics) == _data_counters(baseline.metrics)
    assert {
        name: h.state_dict() for name, h in stored.metrics.histograms.items()
    } == {
        name: h.state_dict() for name, h in baseline.metrics.histograms.items()
    }


class TestStrictCampaign:
    def test_store_backed_equals_tsv_backed(
        self, simulation, archive, tmp_path_factory
    ):
        store_dir = tmp_path_factory.mktemp("store")
        baseline = _run(simulation, archive)
        stored = _run(simulation, archive, store=store_dir)
        _assert_campaigns_identical(baseline, stored)

    def test_second_store_run_identical(
        self, simulation, archive, tmp_path_factory
    ):
        store_dir = tmp_path_factory.mktemp("store")
        first = _run(simulation, archive, store=store_dir)
        again = _run(simulation, archive, store=store_dir)  # reuses the pack
        _assert_campaigns_identical(first, again)


class TestLenientCampaign:
    """Under ``skip``, drops recorded at pack time must replay verbatim."""

    def test_corrupted_archive(self, simulation, tmp_path_factory):
        directory = tmp_path_factory.mktemp("corrupt-archive")
        write_rotated_logs(simulation.logs, directory)
        victim = sorted(directory.glob("ssl.*.log.gz"))[0]
        text = gzip.decompress(victim.read_bytes()).decode("utf-8")
        lines = text.splitlines(keepends=True)
        # Mangle a data row mid-file: wrong column count → dropped row.
        for i, line in enumerate(lines):
            if not line.startswith("#"):
                lines[i + 2] = "mangled\trow\n"
                break
        victim.write_bytes(gzip.compress("".join(lines).encode("utf-8")))

        options = IngestOptions(on_error="skip")
        store_dir = tmp_path_factory.mktemp("store")
        baseline = _run(simulation, directory, options=options)
        stored = _run(simulation, directory, store=store_dir, options=options)
        assert baseline.ingest.rows_dropped >= 1  # the mangle was exercised
        _assert_campaigns_identical(baseline, stored)
