"""Satellite 2: the cert-fact cache never changes results.

Hypothesis drives random certificate streams through a deliberately
tiny cache (forced evictions) and checks every lookup against the
uncached derivation; CacheStats merging is associative and commutative;
snapshots round-trip with their LRU order intact.
"""

import datetime as dt
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enrich import derive_cert_facts, new_fact_cache
from repro.trust import TrustBundle
from repro.x509.facts import CacheStats, CertFactCache, CertFacts
from repro.zeek import X509Record

UTC = dt.timezone.utc

BUNDLE = TrustBundle(
    frozenset({"CN=Public Root,O=Public Trust"}),
    frozenset({"Public Trust"}),
)

#: A fixed population of distinct certificates: half public-CA issued,
#: some with dummy issuers, inverted validity, odd validity lengths —
#: every branch of the derivation is represented.
_ISSUERS = [
    "CN=Public Root,O=Public Trust",
    "CN=Campus CA,O=Example University",
    "CN=Dummy,O=Internet Widgits Pty Ltd",
    "CN=Gateway,O=Some-Company",
]


def _record(index: int) -> X509Record:
    issuer = _ISSUERS[index % len(_ISSUERS)]
    start = dt.datetime(2023, 1, 1, tzinfo=UTC)
    end = start + dt.timedelta(days=30 * (index + 1))
    if index % 5 == 4:
        start, end = end, start  # inverted validity
    return X509Record(
        ts=dt.datetime(2023, 1, 1, tzinfo=UTC),
        fuid=f"F{index}",
        fingerprint=f"fp{index:02d}" * 8,
        version=3,
        serial=f"{index:04X}",
        subject=f"CN=host{index}.example.edu,O=Example University",
        issuer=issuer,
        not_valid_before=start,
        not_valid_after=end,
        key_alg="rsaEncryption",
        sig_alg="sha256WithRSAEncryption",
        key_length=2048,
        san_dns=(f"host{index}.example.edu",),
        san_uri=(),
        san_email=(),
        san_ip=(),
    )


POPULATION = [_record(i) for i in range(10)]


@given(stream=st.lists(st.integers(0, len(POPULATION) - 1), max_size=80))
@settings(max_examples=120, deadline=None)
def test_cached_equals_uncached_under_eviction(stream):
    cache = CertFactCache(
        lambda record: derive_cert_facts(record, BUNDLE), max_entries=4
    )
    for index in stream:
        record = POPULATION[index]
        cached = cache.get(record.fingerprint, record)
        assert cached == derive_cert_facts(record, BUNDLE)
    assert len(cache) <= 4
    assert cache.stats.hits + cache.stats.misses == len(stream)
    assert cache.stats.evictions <= cache.stats.misses


@given(stream=st.lists(st.integers(0, len(POPULATION) - 1), max_size=60))
@settings(max_examples=60, deadline=None)
def test_snapshot_resume_equals_uninterrupted(stream):
    """Splitting a stream across state_dict/load_state changes nothing:
    same facts, same stats, same eviction order."""
    straight = CertFactCache(
        lambda record: derive_cert_facts(record, BUNDLE), max_entries=4
    )
    for index in stream:
        straight.get(POPULATION[index].fingerprint, POPULATION[index])

    half = len(stream) // 2
    first = CertFactCache(
        lambda record: derive_cert_facts(record, BUNDLE), max_entries=4
    )
    for index in stream[:half]:
        first.get(POPULATION[index].fingerprint, POPULATION[index])
    second = CertFactCache(
        lambda record: derive_cert_facts(record, BUNDLE), max_entries=4
    )
    second.load_state(first.state_dict())
    for index in stream[half:]:
        second.get(POPULATION[index].fingerprint, POPULATION[index])

    assert second.state_dict() == straight.state_dict()


_stats = st.builds(
    CacheStats,
    hits=st.integers(0, 1000),
    misses=st.integers(0, 1000),
    evictions=st.integers(0, 1000),
)


def _merged(*parts: CacheStats) -> CacheStats:
    total = CacheStats()
    for part in parts:
        total.merge(part)
    return total


@given(a=_stats, b=_stats, c=_stats)
@settings(max_examples=60, deadline=None)
def test_stats_merge_associative_commutative(a, b, c):
    assert (
        _merged(_merged(a, b), c).to_dict()
        == _merged(a, _merged(b, c)).to_dict()
    )
    assert _merged(a, b).to_dict() == _merged(b, a).to_dict()


def test_cert_facts_round_trips():
    facts = derive_cert_facts(POPULATION[0], BUNDLE)
    assert CertFacts.from_dict(facts.to_dict()) == facts
    assert pickle.loads(pickle.dumps(facts)) == facts


def test_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        CertFactCache(lambda record: record, max_entries=0)


def test_new_fact_cache_matches_direct_derivation():
    cache = new_fact_cache(BUNDLE, max_entries=2)
    for record in POPULATION:
        assert cache.get(record.fingerprint, record) == derive_cert_facts(
            record, BUNDLE
        )
    assert len(cache) == 2
    assert cache.stats.evictions == len(POPULATION) - 2
