"""Differential harness: fast path vs the reference path.

The fast ingest decoders (:mod:`repro.zeek.tsv`) and the per-certificate
fact cache (:mod:`repro.x509.facts`) promise *byte-identical* results to
the slow reference implementations. These helpers run the same input
through both paths and assert total equivalence: records, ingest
reports, and — under the strict policy — the raised error's full
context.
"""

from __future__ import annotations

import io

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    ErrorPolicy,
    IngestOptions,
    IngestReport,
    TsvFormatError,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)

POLICIES = ("strict", "skip", "quarantine")
KINDS = ("ssl", "x509")

_READERS = {"ssl": read_ssl_log, "x509": read_x509_log}


def corpus_texts(
    seed: int = 11, months: int = 3, connections_per_month: int = 120
) -> tuple[str, str]:
    """A seeded netsim campaign serialized to (ssl_text, x509_text)."""
    config = ScenarioConfig(
        seed=seed, months=months, connections_per_month=connections_per_month
    )
    logs = TrafficGenerator(config).generate().logs
    return ssl_log_to_string(logs.ssl), x509_log_to_string(logs.x509)


def read_one(
    kind: str, text: str, policy: ErrorPolicy | str, fast: bool
) -> tuple[list, IngestReport, TsvFormatError | None]:
    """Run one (kind, policy, path) combination to completion.

    A strict-mode failure is captured, not propagated: the error object
    is part of the equivalence contract and must be compared too. The
    report returned on failure is the partial report at raise time.
    """
    report = IngestReport()
    reader = _READERS[kind]
    options = IngestOptions(
        on_error=policy,
        fast_path="on" if fast else "off",
        report=report,
        path=f"{kind}.log",
    )
    try:
        records = reader(io.StringIO(text), options)
    except TsvFormatError as exc:
        return [], report, exc
    return records, report, None


def _error_context(error: TsvFormatError | None):
    if error is None:
        return None
    return (
        type(error).__name__,
        str(error),
        error.reason,
        error.path,
        error.line_number,
        error.field,
    )


def assert_equivalent(kind: str, text: str, policy: ErrorPolicy | str) -> None:
    """Fast and slow must agree on records, report, and error context."""
    slow_records, slow_report, slow_error = read_one(kind, text, policy, False)
    fast_records, fast_report, fast_error = read_one(kind, text, policy, True)
    assert _error_context(fast_error) == _error_context(slow_error)
    assert len(fast_records) == len(slow_records)
    assert fast_records == slow_records
    # Hash/eq agreement is not enough for a *byte*-identical claim:
    # repr exposes every field verbatim.
    assert [repr(r) for r in fast_records] == [repr(r) for r in slow_records]
    assert fast_report.to_dict() == slow_report.to_dict()
