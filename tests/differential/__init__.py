"""Differential harness: fast and batch paths vs the reference path.

The fast ingest decoders (:mod:`repro.zeek.tsv`) and the per-certificate
fact cache (:mod:`repro.x509.facts`) promise *byte-identical* results to
the slow reference implementations. These helpers run the same input
through all three decoder tiers — ``off`` (reference per-field), ``on``
(compiled per-row), ``batch`` (vectorized whole-buffer) — and assert
total equivalence: records, ingest reports, and — under the strict
policy — the raised error's full context.
"""

from __future__ import annotations

import io

from repro.netsim import ScenarioConfig, TrafficGenerator
from repro.zeek import (
    ErrorPolicy,
    IngestOptions,
    IngestReport,
    TsvFormatError,
    read_ssl_log,
    read_x509_log,
    ssl_log_to_string,
    x509_log_to_string,
)

POLICIES = ("strict", "skip", "quarantine")
KINDS = ("ssl", "x509")

_READERS = {"ssl": read_ssl_log, "x509": read_x509_log}


def corpus_texts(
    seed: int = 11, months: int = 3, connections_per_month: int = 120
) -> tuple[str, str]:
    """A seeded netsim campaign serialized to (ssl_text, x509_text)."""
    config = ScenarioConfig(
        seed=seed, months=months, connections_per_month=connections_per_month
    )
    logs = TrafficGenerator(config).generate().logs
    return ssl_log_to_string(logs.ssl), x509_log_to_string(logs.x509)


#: Decoder tiers under differential test. A bool still selects the
#: historical pair (True → "on").
MODES = ("off", "on", "batch")

#: Chunk size used for the batch leg: small enough that every corpus
#: spans many read buffers, so chunk-boundary record splitting is
#: exercised by default (output is chunk-size-invariant by contract).
BATCH_TEST_CHUNK = 4096


def read_one(
    kind: str,
    text: str,
    policy: ErrorPolicy | str,
    mode: bool | str,
    chunk_chars: int | None = None,
) -> tuple[list, IngestReport, TsvFormatError | None]:
    """Run one (kind, policy, mode) combination to completion.

    ``mode`` is a decoder tier (``"off"``/``"on"``/``"batch"``); a bool
    keeps the historical two-way signature (True → ``"on"``). A
    strict-mode failure is captured, not propagated: the error object
    is part of the equivalence contract and must be compared too. The
    report returned on failure is the partial report at raise time.
    """
    if isinstance(mode, bool):
        mode = "on" if mode else "off"
    report = IngestReport()
    reader = _READERS[kind]
    options = IngestOptions(
        on_error=policy,
        fast_path=mode,
        report=report,
        path=f"{kind}.log",
        batch_chunk_chars=(
            chunk_chars if chunk_chars is not None
            else (BATCH_TEST_CHUNK if mode == "batch" else None)
        ),
    )
    try:
        records = reader(io.StringIO(text), options)
    except TsvFormatError as exc:
        return [], report, exc
    return records, report, None


def _error_context(error: TsvFormatError | None):
    if error is None:
        return None
    return (
        type(error).__name__,
        str(error),
        error.reason,
        error.path,
        error.line_number,
        error.field,
    )


def assert_equivalent(kind: str, text: str, policy: ErrorPolicy | str) -> None:
    """All three decoder tiers must agree on records, report, and error
    context — the reference (``off``) leg is the ground truth."""
    slow_records, slow_report, slow_error = read_one(kind, text, policy, "off")
    for mode in ("on", "batch"):
        records, report, error = read_one(kind, text, policy, mode)
        assert _error_context(error) == _error_context(slow_error), mode
        assert len(records) == len(slow_records), mode
        assert records == slow_records, mode
        # Hash/eq agreement is not enough for a *byte*-identical claim:
        # repr exposes every field verbatim.
        assert [repr(r) for r in records] == [
            repr(r) for r in slow_records
        ], mode
        assert report.to_dict() == slow_report.to_dict(), mode
