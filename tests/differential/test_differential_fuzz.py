"""Satellite 1: adversarial row fuzzing of the fast vs slow decoders.

Hypothesis generates pathological TSV rows — unset/empty markers in
arbitrary columns, ``\\xNN`` escape sequences, truncated or overlong
rows, non-ASCII DNs, numeric garbage — splices them under a genuine
log header, and asserts the two decoders produce identical records or
an identical :class:`~repro.zeek.tsv.TsvFormatError` context under
every error policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.differential import (
    BATCH_TEST_CHUNK,
    KINDS,
    POLICIES,
    assert_equivalent,
    corpus_texts,
)


def _split_corpus(text: str) -> tuple[str, list[str]]:
    """(header block, data rows) of a serialized log."""
    lines = text.split("\n")
    header = [line for line in lines if line.startswith("#") and line != "#close"]
    rows = [line for line in lines if line and not line.startswith("#")]
    return "\n".join(header) + "\n", rows


_SSL_TEXT, _X509_TEXT = corpus_texts(seed=5, months=1, connections_per_month=40)
HEADERS, VALID_ROWS = {}, {}
HEADERS["ssl"], VALID_ROWS["ssl"] = _split_corpus(_SSL_TEXT)
HEADERS["x509"], VALID_ROWS["x509"] = _split_corpus(_X509_TEXT)

#: Values that target the decoders' special cases: unset/empty markers,
#: escape sequences, set separators, booleans, malformed and extreme
#: numerics, and non-ASCII DN content.
_weird_cells = st.sampled_from(
    [
        "-", "(empty)", "", ",", "a,b,c", ",,",
        "\\x09", "\\x0a", "\\\\", "\\", "\\xZZ",
        "T", "F", "true", "0", "1", "-1", "2048",
        "1700000000.5", "1e309", "nan", "inf", "-0.0", "0x10",
        "CN=Ä,O=Öst", "CN=café,O=☃ Corp", "ＣＮ=wide",
        "CN=University of Mordor,OU=Orcs",
    ]
)
_text_cells = st.text(
    alphabet=st.characters(
        blacklist_characters="\t\n\r", blacklist_categories=("Cs",)
    ),
    max_size=12,
)
_cells = st.one_of(_weird_cells, _text_cells)
#: Row widths deliberately stray from the schema width in both
#: directions — short rows exercise the cell-count fault and the
#: "which field did it stop at" attribution.
_rows = st.lists(_cells, min_size=0, max_size=22).map("\t".join)


@pytest.mark.parametrize("kind", KINDS)
@given(rows=st.lists(_rows, min_size=1, max_size=5), truncate=st.booleans())
@settings(max_examples=60, deadline=None)
def test_pathological_rows(kind, rows, truncate):
    text = HEADERS[kind] + "".join(row + "\n" for row in rows)
    if truncate:
        text = text.rstrip("\n")
    for policy in POLICIES:
        assert_equivalent(kind, text, policy)


@pytest.mark.parametrize("kind", KINDS)
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_mutated_valid_rows(kind, data):
    """A single poisoned cell inside an otherwise-valid corpus: the
    fast path must fall back on exactly that row and nowhere else."""
    rows = list(VALID_ROWS[kind])
    target = data.draw(st.integers(0, len(rows) - 1), label="row")
    cells = rows[target].split("\t")
    column = data.draw(st.integers(0, len(cells) - 1), label="column")
    cells[column] = data.draw(_cells, label="replacement")
    rows[target] = "\t".join(cells)
    text = HEADERS[kind] + "".join(row + "\n" for row in rows) + "#close\n"
    for policy in POLICIES:
        assert_equivalent(kind, text, policy)


#: Characters that target the batch reader's structural assumptions:
#: separators, newlines, header/unset markers, escape introducers.
_flip_chars = st.sampled_from(["\t", "\n", "#", "-", "\\", "\x00", " "])

_FULL_TEXT = {"ssl": _SSL_TEXT, "x509": _X509_TEXT}


@pytest.mark.parametrize("kind", KINDS)
@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_byte_flips_at_batch_boundaries(kind, data):
    """Single-character corruption aimed exactly at the batch reader's
    chunk seams: a flip at ``k * chunk ± 3`` lands where the vectorized
    reader splices ``pending + chunk`` back together, so a splicing bug
    would surface as a divergent record, error, or drop count. The
    result must match the line-at-a-time reference byte for byte."""
    base = _FULL_TEXT[kind]
    boundaries = len(base) // BATCH_TEST_CHUNK
    assert boundaries >= 2  # the corpus must actually span several chunks
    k = data.draw(st.integers(1, boundaries), label="boundary")
    delta = data.draw(st.integers(-3, 3), label="delta")
    offset = min(len(base) - 1, k * BATCH_TEST_CHUNK + delta)
    flip = data.draw(_flip_chars, label="flip")
    text = base[:offset] + flip + base[offset + 1 :]
    for policy in POLICIES:
        assert_equivalent(kind, text, policy)
