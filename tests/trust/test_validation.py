"""Tests for chain validation."""

import datetime as dt

import pytest

from repro.trust import ChainValidator, TrustStoreSet, ValidationStatus
from repro.x509 import CertificateAuthority, KeyFactory, Name

UTC = dt.timezone.utc
NOW = dt.datetime(2023, 6, 1, tzinfo=UTC)


@pytest.fixture()
def factory():
    return KeyFactory(mode="sim", seed=33)


@pytest.fixture()
def root(factory):
    return CertificateAuthority.create_root(
        Name.build(common_name="Trusted Root", organization="Trusted Org"),
        factory,
        not_before=dt.datetime(2015, 1, 1, tzinfo=UTC),
    )


@pytest.fixture()
def validator(root):
    stores = TrustStoreSet.with_standard_stores()
    stores.store("mozilla-nss").add(root.certificate)
    return ChainValidator(stores)


class TestValidate:
    def test_full_chain_ok(self, root, validator):
        inter = root.create_intermediate(Name.build(common_name="Sub CA"))
        cert, _ = inter.issue(Name.build(common_name="leaf"), now=NOW)
        result = validator.validate([cert, inter.certificate, root.certificate], at=NOW)
        assert result.ok

    def test_chain_missing_root_is_completed_from_store(self, root, validator):
        inter = root.create_intermediate(Name.build(common_name="Sub CA"))
        cert, _ = inter.issue(Name.build(common_name="leaf"), now=NOW)
        result = validator.validate([cert, inter.certificate], at=NOW)
        assert result.ok
        # The anchor was appended to the evaluated chain.
        assert result.chain[-1] == root.certificate

    def test_untrusted_chain(self, factory, validator):
        other = CertificateAuthority.create_root(Name.build(common_name="Rogue"), factory)
        cert, _ = other.issue(Name.build(common_name="leaf"), now=NOW)
        result = validator.validate([cert], at=NOW)
        assert result.status is ValidationStatus.UNTRUSTED_ROOT

    def test_self_signed_leaf(self, factory, validator):
        selfie = CertificateAuthority.create_root(Name.build(common_name="selfie"), factory)
        result = validator.validate([selfie.certificate], at=NOW)
        assert result.status is ValidationStatus.SELF_SIGNED

    def test_expired_leaf(self, root, validator):
        cert, _ = root.issue(
            Name.build(common_name="old"),
            now=NOW,
            not_before=dt.datetime(2020, 1, 1, tzinfo=UTC),
            not_after=dt.datetime(2021, 1, 1, tzinfo=UTC),
        )
        result = validator.validate([cert, root.certificate], at=NOW)
        assert result.status is ValidationStatus.EXPIRED
        assert "old" in result.detail

    def test_not_yet_valid_leaf(self, root, validator):
        cert, _ = root.issue(
            Name.build(common_name="future"),
            now=NOW,
            not_before=dt.datetime(2030, 1, 1, tzinfo=UTC),
            not_after=dt.datetime(2031, 1, 1, tzinfo=UTC),
        )
        result = validator.validate([cert, root.certificate], at=NOW)
        assert result.status is ValidationStatus.NOT_YET_VALID

    def test_inverted_validity(self, root, validator):
        cert, _ = root.issue(
            Name.build(common_name="inverted"),
            now=NOW,
            not_before=dt.datetime(2019, 8, 2, tzinfo=UTC),
            not_after=dt.datetime(1849, 10, 24, tzinfo=UTC),
        )
        result = validator.validate([cert, root.certificate], at=NOW)
        assert result.status is ValidationStatus.INVERTED_VALIDITY

    def test_bad_signature(self, root, factory, validator):
        other = CertificateAuthority.create_root(Name.build(common_name="Other"), factory)
        cert, _ = other.issue(Name.build(common_name="leaf"), now=NOW)
        # Present the leaf with a parent that did not sign it.
        result = validator.validate([cert, root.certificate], at=NOW)
        assert result.status is ValidationStatus.BAD_SIGNATURE

    def test_empty_chain(self, validator):
        result = validator.validate([], at=NOW)
        assert result.status is ValidationStatus.EMPTY_CHAIN

    def test_window_checks_can_be_disabled(self, root):
        stores = TrustStoreSet.with_standard_stores()
        stores.store("apple").add(root.certificate)
        lax = ChainValidator(stores, check_validity_window=False)
        cert, _ = root.issue(
            Name.build(common_name="expired"),
            now=NOW,
            not_before=dt.datetime(2020, 1, 1, tzinfo=UTC),
            not_after=dt.datetime(2021, 1, 1, tzinfo=UTC),
        )
        assert lax.validate([cert, root.certificate], at=NOW).ok

    def test_signature_checks_can_be_disabled(self, root, factory):
        stores = TrustStoreSet.with_standard_stores()
        stores.store("apple").add(root.certificate)
        lax = ChainValidator(stores, check_signatures=False)
        other = CertificateAuthority.create_root(Name.build(common_name="Other"), factory)
        cert, _ = other.issue(Name.build(common_name="leaf"), now=NOW)
        assert lax.validate([cert, root.certificate], at=NOW).ok
