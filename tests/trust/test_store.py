"""Tests for trust stores and the public/private classification."""

import datetime as dt

import pytest

from repro.trust import TrustStore, TrustStoreSet
from repro.x509 import CertificateAuthority, KeyFactory, Name

UTC = dt.timezone.utc
NOW = dt.datetime(2023, 1, 1, tzinfo=UTC)


@pytest.fixture()
def factory():
    return KeyFactory(mode="sim", seed=21)


@pytest.fixture()
def public_root(factory):
    return CertificateAuthority.create_root(
        Name.build(common_name="DigiCert Global Root", organization="DigiCert Inc"),
        factory,
    )


@pytest.fixture()
def private_root(factory):
    return CertificateAuthority.create_root(
        Name.build(common_name="Campus Device CA", organization="State University"),
        factory,
    )


@pytest.fixture()
def stores(public_root):
    store_set = TrustStoreSet.with_standard_stores()
    store_set.store("mozilla-nss").add(public_root.certificate)
    return store_set


class TestTrustStore:
    def test_add_and_contains(self, public_root):
        store = TrustStore("test", [public_root.certificate])
        assert store.contains_certificate(public_root.certificate)
        assert len(store) == 1

    def test_add_idempotent(self, public_root):
        store = TrustStore("test")
        store.add(public_root.certificate)
        store.add(public_root.certificate)
        assert len(store) == 1

    def test_knows_issuer(self, public_root, private_root):
        store = TrustStore("test", [public_root.certificate])
        assert store.knows_issuer(public_root.name)
        assert not store.knows_issuer(private_root.name)

    def test_knows_organization_case_insensitive(self, public_root):
        store = TrustStore("test", [public_root.certificate])
        assert store.knows_organization("digicert inc")
        assert store.knows_organization("DIGICERT  INC")
        assert not store.knows_organization("Other Org")
        assert not store.knows_organization(None)

    def test_find_issuer_certificates(self, public_root, private_root):
        store = TrustStore("test", [public_root.certificate])
        assert store.find_issuer_certificates(public_root.name) == [
            public_root.certificate
        ]
        assert store.find_issuer_certificates(private_root.name) == []


class TestTrustStoreSet:
    def test_standard_store_names(self):
        store_set = TrustStoreSet.with_standard_stores()
        assert {s.name for s in store_set.stores} == {
            "mozilla-nss", "apple", "microsoft", "ccadb",
        }

    def test_store_lookup(self):
        store_set = TrustStoreSet.with_standard_stores()
        assert store_set.store("apple").name == "apple"
        with pytest.raises(KeyError):
            store_set.store("unknown")

    def test_membership_in_any_store_counts(self, stores, public_root):
        assert stores.contains_certificate(public_root.certificate)
        assert stores.knows_issuer(public_root.name)

    def test_add_to_all(self, private_root):
        store_set = TrustStoreSet.with_standard_stores()
        store_set.add_to_all(private_root.certificate)
        assert all(s.contains_certificate(private_root.certificate) for s in store_set.stores)

    def test_dedup_in_find(self, public_root):
        store_set = TrustStoreSet.with_standard_stores()
        store_set.add_to_all(public_root.certificate)
        assert len(store_set.find_issuer_certificates(public_root.name)) == 1


class TestPublicPrivateClassification:
    def test_leaf_of_public_ca_is_public(self, stores, public_root):
        cert, _ = public_root.issue(Name.build(common_name="site.example"), now=NOW)
        assert stores.is_public_chain([cert])
        assert stores.is_public_certificate(cert)

    def test_leaf_of_private_ca_is_private(self, stores, private_root):
        cert, _ = private_root.issue(Name.build(common_name="device-1"), now=NOW)
        assert not stores.is_public_chain([cert])

    def test_chain_with_trusted_intermediate_is_public(self, stores, public_root):
        inter = public_root.create_intermediate(Name.build(common_name="Issuing CA 1"))
        cert, _ = inter.issue(Name.build(common_name="leaf"), now=NOW)
        # Present the full chain: leaf, intermediate (intermediate's issuer
        # — the root — is in the store).
        assert stores.is_public_chain([cert, inter.certificate])

    def test_leaf_only_chain_with_unknown_intermediate_issuer_is_private(
        self, stores, private_root
    ):
        inter = private_root.create_intermediate(Name.build(common_name="Private Sub"))
        cert, _ = inter.issue(Name.build(common_name="leaf"), now=NOW)
        assert not stores.is_public_chain([cert, inter.certificate])

    def test_issuer_org_listed_in_ccadb_is_public(self, factory):
        # CCADB lists issuer organizations; a leaf whose issuer org matches
        # is public even without the issuing cert present.
        listed_root = CertificateAuthority.create_root(
            Name.build(common_name="Sectigo Root R46", organization="Sectigo Limited"),
            factory,
        )
        other_ca_same_org = CertificateAuthority.create_root(
            Name.build(common_name="Sectigo Issuing CA X", organization="Sectigo Limited"),
            factory,
        )
        store_set = TrustStoreSet.with_standard_stores()
        store_set.store("ccadb").add(listed_root.certificate)
        cert, _ = other_ca_same_org.issue(Name.build(common_name="leaf"), now=NOW)
        assert store_set.is_public_chain([cert])

    def test_empty_chain_is_private(self, stores):
        assert not stores.is_public_chain([])

    def test_self_signed_is_private(self, stores, factory):
        selfsigned = CertificateAuthority.create_root(
            Name.build(common_name="selfie"), factory
        )
        assert not stores.is_public_chain([selfsigned.certificate])
