"""Tests for the DN-level trust bundle."""

import pytest

from repro.trust import TrustBundle, TrustStoreSet
from repro.x509 import CertificateAuthority, KeyFactory, Name


@pytest.fixture(scope="module")
def store_set():
    factory = KeyFactory(mode="sim", seed=44)
    stores = TrustStoreSet.with_standard_stores()
    root_a = CertificateAuthority.create_root(
        Name.build(common_name="Bundle Root A", organization="Org Alpha"), factory
    )
    root_b = CertificateAuthority.create_root(
        Name.build(common_name="Bundle Root B", organization="Org Beta"), factory
    )
    stores.store("mozilla-nss").add(root_a.certificate)
    stores.store("apple").add(root_b.certificate)
    return stores, root_a, root_b


class TestDnBundle:
    def test_collects_all_stores(self, store_set):
        stores, root_a, root_b = store_set
        bundle = stores.dn_bundle()
        assert root_a.name.rfc4514() in bundle.subject_dns
        assert root_b.name.rfc4514() in bundle.subject_dns
        assert bundle.organizations == frozenset({"org alpha", "org beta"})

    def test_knows_issuer_dn(self, store_set):
        stores, root_a, _ = store_set
        bundle = stores.dn_bundle()
        assert bundle.knows_issuer_dn(root_a.name.rfc4514())
        assert not bundle.knows_issuer_dn("CN=Unknown CA")

    def test_knows_organization_normalized(self, store_set):
        stores, *_ = store_set
        bundle = stores.dn_bundle()
        assert bundle.knows_organization("ORG  ALPHA")
        assert bundle.knows_organization("org beta")
        assert not bundle.knows_organization("org gamma")
        assert not bundle.knows_organization(None)
        assert not bundle.knows_organization("")

    def test_bundle_is_frozen_value(self, store_set):
        stores, *_ = store_set
        first = stores.dn_bundle()
        second = stores.dn_bundle()
        assert first == second
        assert hash(first) == hash(second)

    def test_empty_store_set(self):
        bundle = TrustStoreSet([]).dn_bundle()
        assert bundle == TrustBundle(frozenset(), frozenset())
        assert not bundle.knows_issuer_dn("anything")
